"""Setuptools shim.

The execution environment is offline and ships setuptools without the
``wheel`` package, so PEP 660 editable installs (which build a wheel) are not
available.  Keeping a ``setup.py`` alongside ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` code path,
which works offline.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
