"""Runtime scaling of Fuzzy FD vs regular FD on the IMDB benchmark (Figure 3).

Generates IMDB-schema integration sets of growing size, integrates each with
regular Full Disjunction (ALITE) and with Fuzzy Full Disjunction, and prints
the two runtime series plus the overhead ratio — a laptop-scale version of the
paper's Figure 3.  Increase the sizes (e.g. ``python examples/imdb_scaling.py
5000 10000``) to approach the paper's 5K–30K sweep.

Run with::

    python examples/imdb_scaling.py [size ...]
"""

from __future__ import annotations

import sys

from repro.core import FuzzyFDConfig
from repro.datasets import ImdbBenchmark
from repro.evaluation.reporting import format_runtime_series
from repro.evaluation.runtime import overhead_ratio, runtime_sweep


def main(sizes: list[int]) -> None:
    benchmark = ImdbBenchmark(seed=13)
    print(f"Sweeping input sizes {sizes} over the 6-table IMDB schema...\n")
    points = runtime_sweep(benchmark.tables, sizes=sizes, config=FuzzyFDConfig())
    print(format_runtime_series(points))
    print("\nOverhead of Fuzzy FD over regular FD:")
    for size, ratio in overhead_ratio(points).items():
        print(f"  {size:>7d} input tuples: {ratio:.3f}x")
    print(
        "\nThe paper's Figure 3 shows the two curves almost overlapping for 5K-30K "
        "input tuples: the Match Values step is cheap relative to Full Disjunction."
    )


if __name__ == "__main__":
    requested = [int(argument) for argument in sys.argv[1:]] or [500, 1000, 1500]
    main(requested)
