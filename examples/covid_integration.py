"""The paper's running example (Figures 1 and 2): COVID-19 tables.

Reproduces, step by step, what Section 1 and Section 2 of the paper describe:

* the three input tables T1, T2, T3 about COVID-19 cases in different cities,
* the regular Full Disjunction FD(T1, T2, T3) with its nine partial tuples,
* the Match Values walk-through over the three City columns (Figure 2),
* the Fuzzy Full Disjunction with its five fully integrated tuples.

Run with::

    python examples/covid_integration.py
"""

from __future__ import annotations

from repro import Table
from repro.core import FuzzyFullDisjunction, RegularFullDisjunction, ValueMatcher
from repro.core.value_matching import ColumnValues
from repro.embeddings import MistralEmbedder


def build_tables() -> list[Table]:
    """The three tables of Figure 1 (column headers per the paper)."""
    t1 = Table(
        "T1",
        ["City", "Country"],
        [
            ("Berlinn", "Germany"),
            ("Toronto", "Canada"),
            ("Barcelona", "Spain"),
            ("New Delhi", "India"),
        ],
    )
    t2 = Table(
        "T2",
        ["Country", "City", "Vac. Rate (1+ dose)"],
        [
            ("CA", "Toronto", "83%"),
            ("US", "Boston", "62%"),
            ("DE", "Berlin", "63%"),
            ("ES", "Barcelona", "82%"),
        ],
    )
    t3 = Table(
        "T3",
        ["City", "Total Cases", "Death Rate (per 100k)"],
        [
            ("Berlin", "1.4M", "147"),
            ("barcelona", "2.68M", "275"),
            ("Boston", "263K", "335"),
        ],
    )
    return [t1, t2, t3]


def show_result(title: str, result) -> None:
    print(f"\n=== {title} ===")
    print(result.table.to_pretty_string())
    print("TID sets per output tuple:")
    for index, sources in enumerate(result.table.provenance):
        print(f"  f{index + 1}: {sorted(sources)}")


def main() -> None:
    tables = build_tables()
    print("=== Input tables (Figure 1) ===")
    for table in tables:
        print(f"\n{table.name}:")
        print(table.to_pretty_string())

    # Regular Full Disjunction: 9 tuples, Berlin/Berlinn and Spain/ES stay apart.
    regular = RegularFullDisjunction().integrate(tables)
    show_result("FD(T1, T2, T3) — regular Full Disjunction (9 tuples)", regular)

    # Figure 2: the Match Values component over the three City columns.
    matcher = ValueMatcher(MistralEmbedder(), threshold=0.7)
    city_columns = [
        ColumnValues(("T1", "City"), tables[0].distinct_values("City")),
        ColumnValues(("T2", "City"), tables[1].distinct_values("City")),
        ColumnValues(("T3", "City"), tables[2].distinct_values("City")),
    ]
    matching = matcher.match_columns(city_columns)
    print("\n=== Match Values over the City columns (Figure 2) ===")
    for match_set in matching.sets:
        members = ", ".join(f"{column[0]}:{value!r}" for column, value in match_set.members)
        print(f"  ({members})  ->  representative {match_set.representative!r}")

    # Fuzzy Full Disjunction: 5 tuples, all variants consolidated.
    fuzzy = FuzzyFullDisjunction().integrate(tables)
    show_result("Fuzzy FD(T1, T2, T3) — 5 fully integrated tuples", fuzzy)


if __name__ == "__main__":
    main()
