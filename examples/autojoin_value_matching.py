"""Fuzzy value matching on the Auto-Join-style benchmark (Table 1 workload).

Generates a few Auto-Join integration sets, runs the Match Values component
with each of the paper's embedding models, and prints per-model
precision/recall/F1 plus a few concrete matches so the behaviour differences
between surface-only (FastText) and semantic (Mistral) matching are visible.

Run with::

    python examples/autojoin_value_matching.py
"""

from __future__ import annotations

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings.registry import TABLE1_MODELS, get_embedder
from repro.evaluation import format_scores_table, macro_average, score_integration_set


def main(n_sets: int = 10, values_per_column: int = 60) -> None:
    benchmark = AutoJoinBenchmark(n_sets=n_sets, values_per_column=values_per_column, seed=42)
    integration_sets = benchmark.generate()
    print(f"Generated {len(integration_sets)} integration sets "
          f"({sum(s.total_values for s in integration_sets)} values in total)\n")
    for integration_set in integration_sets[:5]:
        print(f"  {integration_set.name:38s} topic={integration_set.topic:22s} "
              f"profile={integration_set.profile}")

    scores = {}
    for model in TABLE1_MODELS:
        matcher = ValueMatcher(get_embedder(model), threshold=0.7)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        scores[model] = macro_average(per_set)

    print("\nValue matching effectiveness (macro-averaged):\n")
    print(format_scores_table(scores))

    # Show a few concrete decisions of the best model on one abbreviation set.
    semantic_sets = [s for s in integration_sets if s.profile in ("abbreviations", "synonyms")]
    if semantic_sets:
        example = semantic_sets[0]
        matcher = ValueMatcher(get_embedder("mistral"), threshold=0.7)
        result = matcher.match_columns(example.column_values())
        print(f"\nExample matches of Mistral on {example.name} ({example.topic}):")
        shown = 0
        for match_set in result.sets:
            if len(match_set) >= 2 and len(set(match_set.values())) > 1:
                members = ", ".join(repr(value) for value in match_set.values())
                print(f"  {{{members}}} -> {match_set.representative!r}")
                shown += 1
            if shown >= 8:
                break


if __name__ == "__main__":
    main()
