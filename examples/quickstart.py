"""Quickstart: integrate a handful of data-lake CSV tables with Fuzzy FD.

The script builds three small CSV files in a temporary directory (the way
tables live in a data lake), loads them back, runs both the regular and the
fuzzy Full Disjunction, and prints the integrated tables side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Table, integrate, read_csv, write_csv


def build_lake(directory: Path) -> list[Path]:
    """Write three inconsistent tables about cities to CSV files."""
    population = Table(
        "city_population",
        ["City", "Country", "Population"],
        [
            ("Berlin", "Germany", "3.7M"),
            ("Toronto", "Canada", "2.9M"),
            ("Barcelona", "Spain", "1.6M"),
            ("Lisbon", "Portugal", "0.5M"),
        ],
    )
    transit = Table(
        "transit_stats",
        ["City", "Country", "Metro Lines"],
        [
            ("berlin", "DE", "9"),
            ("Torontoo", "CA", "3"),
            ("Madrid", "ES", "12"),
        ],
    )
    climate = Table(
        "climate",
        ["City", "Avg Temp"],
        [
            ("Berlin", "10.5C"),
            ("Barcelona", "18.2C"),
            ("Toronto", "9.4C"),
        ],
    )
    paths = []
    for table in (population, transit, climate):
        paths.append(write_csv(table, directory / f"{table.name}.csv"))
    return paths


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        paths = build_lake(directory)
        tables = [read_csv(path) for path in paths]

        print("=== Input tables ===")
        for table in tables:
            print(f"\n{table.name}:")
            print(table.to_pretty_string())

        regular = integrate(tables, fuzzy=False)
        print("\n=== Regular Full Disjunction (equi-join, ALITE) ===")
        print(regular.table.to_pretty_string())
        print(f"{regular.table.num_rows} tuples")

        fuzzy = integrate(tables, fuzzy=True)
        print("\n=== Fuzzy Full Disjunction (this paper) ===")
        print(fuzzy.table.to_pretty_string())
        print(f"{fuzzy.table.num_rows} tuples")

        print("\nValue rewrites applied by the Match Values component:")
        for group_name, matching in fuzzy.value_matching.items():
            for column_id in matching.column_order:
                for original, representative in matching.rewrite_map(column_id).items():
                    print(f"  {column_id}: {original!r} -> {representative!r}")

        print("\nTiming breakdown (seconds):")
        for phase, seconds in fuzzy.timings.items():
            print(f"  {phase:28s} {seconds:.3f}")


if __name__ == "__main__":
    main()
