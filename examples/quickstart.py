"""Quickstart: integrate a handful of data-lake CSV tables with Fuzzy FD.

The script builds three small CSV files in a temporary directory (the way
tables live in a data lake), loads them back, and shows the two ways into the
library:

1. the one-call :func:`repro.integrate` convenience (regular vs fuzzy), and
2. the long-lived :class:`repro.IntegrationEngine` — the serve-many-requests
   API: the embedder and its cache stay warm across calls, so the θ-sweep at
   the end re-scores cached embeddings instead of re-embedding every value,
   and the pipeline stages (align → match → integrate) are inspectable.

Run with::

    python examples/quickstart.py

The CI workflow executes this script as an executable smoke test of the
public API surface.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import FuzzyFDConfig, IntegrationEngine, Table, integrate, read_csv, write_csv


def build_lake(directory: Path) -> list[Path]:
    """Write three inconsistent tables about cities to CSV files."""
    population = Table(
        "city_population",
        ["City", "Country", "Population"],
        [
            ("Berlin", "Germany", "3.7M"),
            ("Toronto", "Canada", "2.9M"),
            ("Barcelona", "Spain", "1.6M"),
            ("Lisbon", "Portugal", "0.5M"),
        ],
    )
    transit = Table(
        "transit_stats",
        ["City", "Country", "Metro Lines"],
        [
            ("berlin", "DE", "9"),
            ("Torontoo", "CA", "3"),
            ("Madrid", "ES", "12"),
        ],
    )
    climate = Table(
        "climate",
        ["City", "Avg Temp"],
        [
            ("Berlin", "10.5C"),
            ("Barcelona", "18.2C"),
            ("Toronto", "9.4C"),
        ],
    )
    paths = []
    for table in (population, transit, climate):
        paths.append(write_csv(table, directory / f"{table.name}.csv"))
    return paths


def one_call_api(tables: list[Table]) -> None:
    """The simplest entry point: one function, fuzzy or regular."""
    regular = integrate(tables, fuzzy=False)
    print("\n=== Regular Full Disjunction (equi-join, ALITE) ===")
    print(regular.table.to_pretty_string())
    print(f"{regular.table.num_rows} tuples")

    fuzzy = integrate(tables, fuzzy=True)
    print("\n=== Fuzzy Full Disjunction (this paper) ===")
    print(fuzzy.table.to_pretty_string())
    print(f"{fuzzy.table.num_rows} tuples")


def engine_api(tables: list[Table]) -> None:
    """The long-lived engine: staged pipeline + cheap repeated requests."""
    engine = IntegrationEngine(FuzzyFDConfig.preset("paper"))

    # -- inspectable stages ----------------------------------------------------
    aligned = engine.align(tables)
    print("\n=== Engine stage 1: column alignment ===")
    for name, members in sorted(aligned.alignment.as_dict().items()):
        print(f"  {name:12s} <- {', '.join(members)}")

    matched = engine.match(aligned)
    print("\n=== Engine stage 2: fuzzy value matching ===")
    print(f"{matched.rewrites_applied()} value rewrites:")
    for group_name, matching in matched.value_matching.items():
        for column_id in matching.column_order:
            for original, representative in matching.rewrite_map(column_id).items():
                print(f"  [{group_name}] {column_id}: {original!r} -> {representative!r}")

    result = engine.integrate(matched)
    print("\n=== Engine stage 3: full disjunction ===")
    print(result.table.to_pretty_string())

    print("\nTiming breakdown (seconds):")
    for phase, seconds in result.timings.items():
        print(f"  {phase:28s} {seconds:.3f}")

    # -- a θ-sweep over the warm engine ---------------------------------------
    # The embedder cache persists across requests: after the first request the
    # sweep performs zero new embeddings (watch the cache misses stay flat).
    print("\n=== θ-sweep on the warm engine (cached embeddings) ===")
    for theta in (0.3, 0.5, 0.7, 0.9):
        swept = engine.integrate(tables, threshold=theta)
        cache = engine.embedding_cache.stats()
        print(
            f"  θ={theta:.1f}: {swept.table.num_rows} tuples, "
            f"{swept.rewrites_applied()} rewrites "
            f"(cache: {cache['hits']} hits / {cache['misses']} misses)"
        )
    print(f"\n{engine!r}")


def concurrency_api(tables: list[Table]) -> None:
    """The parallel execution layer: one knob set, three layers.

    ``max_workers`` / ``parallel_backend`` (or the ``scale`` preset, or the
    CLI's ``--workers``) parallelise component solving and the partitioned
    FD inside one request; ``integrate_many`` serves whole requests from a
    bounded thread pool.  Every parallel path is deterministic — the results
    below are asserted identical to the serial ones.
    """
    serial_engine = IntegrationEngine(FuzzyFDConfig(blocking="auto"))
    parallel_engine = IntegrationEngine(
        FuzzyFDConfig(blocking="auto", max_workers=4, parallel_backend="thread")
    )

    print("\n=== Concurrency: parallel request serving (integrate_many) ===")
    requests = [tables, tables[:2], tables[1:]]
    serial_results = serial_engine.integrate_many(requests, max_workers=1)
    pooled_results = parallel_engine.integrate_many(requests)  # 4 workers
    for index, (serial, pooled) in enumerate(zip(serial_results, pooled_results)):
        assert serial.table.same_rows(pooled.table)  # deterministic by contract
        print(
            f"  request {index}: {pooled.table.num_rows} tuples "
            f"(identical to the serial run: True)"
        )
    print(f"  engine served {parallel_engine.requests_served} requests "
          f"on a warm, thread-safe cache")

    # The ``scale`` preset bundles the data-lake settings: blocking=auto,
    # partitioned FD, 4 thread workers.
    scaled = IntegrationEngine("scale").integrate(tables)
    print(f"  'scale' preset: {scaled.table.num_rows} tuples "
          f"(same rows: {scaled.table.same_rows(serial_results[0].table)})")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        paths = build_lake(directory)
        tables = [read_csv(path) for path in paths]

        print("=== Input tables ===")
        for table in tables:
            print(f"\n{table.name}:")
            print(table.to_pretty_string())

        one_call_api(tables)
        engine_api(tables)
        concurrency_api(tables)


if __name__ == "__main__":
    main()
