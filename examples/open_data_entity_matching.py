"""Downstream entity matching over integrated open-data tables.

Generates one ALITE-style entity-matching integration set (organisations
described inconsistently across three tables), integrates it with regular and
with Fuzzy Full Disjunction, runs the entity-matching pipeline over both
integrated tables, and reports the pairwise precision/recall/F1 against the
gold entity clusters — the paper's "Downstreaming Task Effectiveness"
experiment in miniature.

Run with::

    python examples/open_data_entity_matching.py
"""

from __future__ import annotations

from repro.core import integrate
from repro.datasets import AliteEmBenchmark
from repro.em import EntityMatchingPipeline


def main() -> None:
    benchmark = AliteEmBenchmark(n_sets=1, entities_per_set=40, seed=7)
    integration_set = benchmark.generate()[0]

    print(f"Integration set {integration_set.name}: "
          f"{len(integration_set.tables)} tables, {integration_set.total_tuples} tuples, "
          f"{len(integration_set.gold_clusters)} gold entities "
          f"({integration_set.multi_table_entities()} spanning several tables)\n")
    for table in integration_set.tables:
        print(f"{table.name} ({table.num_rows} rows): columns {list(table.columns)}")
        print(table.head(3).to_pretty_string())
        print()

    pipeline = EntityMatchingPipeline()
    for label, fuzzy in (("Regular FD (ALITE)", False), ("Fuzzy FD", True)):
        integrated = integrate(integration_set.tables, fuzzy=fuzzy)
        result = pipeline.run(integrated.table, gold_clusters=integration_set.gold_clusters)
        scores = result.scores
        print(
            f"{label:20s} integrated tuples={integrated.table.num_rows:4d}  "
            f"P={scores.precision:.2f} R={scores.recall:.2f} F1={scores.f1:.2f}"
        )

    print("\n(The paper reports P/R/F1 of 79/83/81 for regular FD and 86/85/85 for Fuzzy FD.)")


if __name__ == "__main__":
    main()
