"""Experiment ``table1`` — Table 1 of the paper.

Value-matching effectiveness (precision / recall / F1) of the five embedding
models (FastText, BERT, RoBERTa, Llama3, Mistral) over the Auto-Join-style
benchmark, with the paper's matching threshold θ = 0.7, macro-averaged over
the integration sets.

Run with ``pytest benchmarks/bench_table1_value_matching.py --benchmark-only -s``
or directly with ``python benchmarks/bench_table1_value_matching.py``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings.registry import TABLE1_MODELS, get_embedder
from repro.evaluation import MatchingScores, format_scores_table, macro_average, score_integration_set

#: The numbers reported in the paper's Table 1 (Precision, Recall, F1).
PAPER_TABLE1: Dict[str, Tuple[float, float, float]] = {
    "fasttext": (0.70, 0.67, 0.66),
    "bert": (0.72, 0.76, 0.73),
    "roberta": (0.73, 0.77, 0.74),
    "llama3": (0.81, 0.85, 0.81),
    "mistral": (0.81, 0.86, 0.82),
}


def run_table1(
    n_sets: int = 31,
    values_per_column: int = 100,
    threshold: float = 0.7,
    models: Sequence[str] = tuple(TABLE1_MODELS),
    seed: int = 42,
) -> Dict[str, MatchingScores]:
    """Compute Table 1: macro-averaged value-matching scores per embedding model."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    scores: Dict[str, MatchingScores] = {}
    for model in models:
        matcher = ValueMatcher(get_embedder(model), threshold=threshold)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        scores[model] = macro_average(per_set)
    return scores


def report(scores: Dict[str, MatchingScores]) -> str:
    """Render the measured table next to the paper's numbers."""
    lines = ["", "Table 1 — Value matching effectiveness (Auto-Join benchmark)", ""]
    lines.append(format_scores_table(scores))
    lines.append("")
    lines.append("Paper reference:")
    for model, (precision, recall, f1) in PAPER_TABLE1.items():
        lines.append(f"  {model:9s} P={precision:.2f} R={recall:.2f} F1={f1:.2f}")
    return "\n".join(lines)


def test_table1_value_matching(benchmark, paper_scale):
    """pytest-benchmark entry point for Table 1."""
    values_per_column = 150 if paper_scale else 100
    scores = benchmark.pedantic(
        run_table1,
        kwargs={"values_per_column": values_per_column},
        rounds=1,
        iterations=1,
    )
    print(report(scores))
    f1_by_model = {model: score.f1 for model, score in scores.items()}
    # The paper's headline ordering: LLM embeddings beat PLM embeddings beat
    # FastText, and Mistral is the best model overall.
    assert f1_by_model["mistral"] >= f1_by_model["llama3"]
    assert f1_by_model["llama3"] > f1_by_model["roberta"]
    assert f1_by_model["roberta"] >= f1_by_model["bert"]
    assert f1_by_model["bert"] > f1_by_model["fasttext"]


if __name__ == "__main__":
    print(report(run_table1()))
