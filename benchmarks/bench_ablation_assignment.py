"""Ablation ``abl-assignment`` — choice of bipartite assignment solver.

The paper uses scipy's linear sum assignment.  This ablation compares it with
the from-scratch Hungarian solver (must match exactly) and with the greedy
heuristic (cheaper, possibly less effective) on the Auto-Join benchmark.

Run with ``pytest benchmarks/bench_ablation_assignment.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_assignment.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import format_markdown_table, macro_average, score_integration_set
from repro.matching.assignment import get_assignment_solver

DEFAULT_SOLVERS = ("scipy", "hungarian", "greedy")


def run_assignment_ablation(
    solvers: Sequence[str] = DEFAULT_SOLVERS,
    n_sets: int = 12,
    values_per_column: int = 60,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Effectiveness and matching runtime per assignment solver."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    embedder = MistralEmbedder()
    results: Dict[str, Dict[str, float]] = {}
    for solver_name in solvers:
        matcher = ValueMatcher(embedder, threshold=0.7, solver=get_assignment_solver(solver_name))
        start = time.perf_counter()
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        elapsed = time.perf_counter() - start
        average = macro_average(per_set)
        results[solver_name] = {
            "precision": average.precision,
            "recall": average.recall,
            "f1": average.f1,
            "seconds": elapsed,
        }
    return results


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [name, f"{s['precision']:.3f}", f"{s['recall']:.3f}", f"{s['f1']:.3f}", f"{s['seconds']:.2f}"]
        for name, s in results.items()
    ]
    return "\n".join(
        [
            "",
            "Ablation — bipartite assignment solver (Mistral, Auto-Join benchmark)",
            "",
            format_markdown_table(["Solver", "Precision", "Recall", "F1", "Seconds"], rows),
        ]
    )


def test_assignment_ablation(benchmark):
    results = benchmark.pedantic(run_assignment_ablation, rounds=1, iterations=1)
    print(report(results))
    # The two optimal solvers must agree in effectiveness.  Greedy minimises a
    # different objective (cheapest-pair-first rather than total cost), so its
    # effectiveness can land slightly above or below optimal assignment — it
    # only needs to stay in the same band.
    assert abs(results["scipy"]["f1"] - results["hungarian"]["f1"]) < 1e-9
    assert abs(results["greedy"]["f1"] - results["scipy"]["f1"]) < 0.05


if __name__ == "__main__":
    print(report(run_assignment_ablation()))
