"""Ablation ``abl-fd`` — choice of Full Disjunction substrate.

The paper builds on ALITE's FD implementation.  This ablation compares the
registered FD algorithms (ALITE-style indexed complementation, the
component-decomposed incremental variant, and the partition-parallel variant)
on the IMDB benchmark: all must produce the same result; the interest is in
runtime and in the complementation statistics.

Run with ``pytest benchmarks/bench_ablation_fd_algorithms.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_fd_algorithms.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

from repro.datasets import ImdbBenchmark
from repro.evaluation.reporting import format_markdown_table
from repro.fd import get_algorithm

DEFAULT_ALGORITHMS = ("alite", "incremental", "partitioned")


def run_fd_ablation(
    total_tuples: int = 1_200,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int = 13,
) -> Dict[str, Dict[str, float]]:
    """Runtime and output statistics per FD algorithm on one IMDB sample."""
    tables = ImdbBenchmark(seed=seed).tables(total_tuples)
    results: Dict[str, Dict[str, float]] = {}
    for name in algorithms:
        algorithm = get_algorithm(name)
        start = time.perf_counter()
        result = algorithm.integrate(tables)
        elapsed = time.perf_counter() - start
        results[name] = {
            "seconds": elapsed,
            "output_tuples": float(result.table.num_rows),
            "components": result.statistics.get("components", float("nan")),
            "comparisons": result.statistics.get("complementation_comparisons", float("nan")),
        }
    return results


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [
            name,
            f"{stats['seconds']:.2f}",
            int(stats["output_tuples"]),
            "-" if stats["components"] != stats["components"] else int(stats["components"]),
            "-" if stats["comparisons"] != stats["comparisons"] else int(stats["comparisons"]),
        ]
        for name, stats in results.items()
    ]
    return "\n".join(
        [
            "",
            "Ablation — Full Disjunction algorithm substrate (IMDB benchmark)",
            "",
            format_markdown_table(
                ["Algorithm", "Seconds", "Output tuples", "Components", "Pair comparisons"], rows
            ),
        ]
    )


def test_fd_algorithm_ablation(benchmark):
    results = benchmark.pedantic(run_fd_ablation, rounds=1, iterations=1)
    print(report(results))
    sizes = {stats["output_tuples"] for stats in results.values()}
    assert len(sizes) == 1  # every algorithm computes the same Full Disjunction


if __name__ == "__main__":
    print(report(run_fd_ablation()))
