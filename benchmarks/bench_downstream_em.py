"""Experiment ``text-em`` — the paper's "Downstreaming Task Effectiveness".

Entity matching is run over the table produced by regular Full Disjunction
(ALITE) and over the table produced by Fuzzy Full Disjunction, and both are
scored (pairwise precision / recall / F1) against the benchmark's gold entity
clusters.  The paper reports P/R/F1 of 79/83/81 for regular FD and 86/85/85
for Fuzzy FD — Fuzzy FD's consolidation of fuzzy values improves the
downstream task.

Run with ``pytest benchmarks/bench_downstream_em.py --benchmark-only -s`` or
``python benchmarks/bench_downstream_em.py``.
"""

from __future__ import annotations

from typing import Dict

from repro.core import integrate
from repro.datasets import AliteEmBenchmark
from repro.em import EntityMatchingPipeline
from repro.em.metrics import EntityMatchingScores
from repro.evaluation.reporting import format_markdown_table

#: The numbers reported in the paper's text (Sec. 3.2).
PAPER_RESULTS = {
    "regular_fd": (0.79, 0.83, 0.81),
    "fuzzy_fd": (0.86, 0.85, 0.85),
}


def run_downstream_em(
    n_sets: int = 4,
    entities_per_set: int = 50,
    match_threshold: float = 0.65,
    seed: int = 7,
) -> Dict[str, EntityMatchingScores]:
    """Average EM scores over the benchmark, for regular and fuzzy integration."""
    integration_sets = AliteEmBenchmark(
        n_sets=n_sets, entities_per_set=entities_per_set, seed=seed
    ).generate()
    pipeline = EntityMatchingPipeline(match_threshold=match_threshold)
    totals: Dict[str, list] = {"regular_fd": [], "fuzzy_fd": []}
    for integration_set in integration_sets:
        for method, fuzzy in (("regular_fd", False), ("fuzzy_fd", True)):
            integrated = integrate(integration_set.tables, fuzzy=fuzzy)
            result = pipeline.run(integrated.table, gold_clusters=integration_set.gold_clusters)
            totals[method].append(result.scores)
    averaged: Dict[str, EntityMatchingScores] = {}
    for method, scores in totals.items():
        count = len(scores)
        averaged[method] = EntityMatchingScores(
            precision=sum(score.precision for score in scores) / count,
            recall=sum(score.recall for score in scores) / count,
            f1=sum(score.f1 for score in scores) / count,
            true_positives=sum(score.true_positives for score in scores),
            false_positives=sum(score.false_positives for score in scores),
            false_negatives=sum(score.false_negatives for score in scores),
        )
    return averaged


def report(scores: Dict[str, EntityMatchingScores]) -> str:
    """Render measured vs paper numbers."""
    rows = []
    for method, measured in scores.items():
        paper = PAPER_RESULTS[method]
        rows.append(
            [
                method,
                f"{measured.precision:.2f}",
                f"{measured.recall:.2f}",
                f"{measured.f1:.2f}",
                f"{paper[0]:.2f}/{paper[1]:.2f}/{paper[2]:.2f}",
            ]
        )
    return "\n".join(
        [
            "",
            "Downstream entity matching over integrated tables (ALITE EM benchmark)",
            "",
            format_markdown_table(
                ["Method", "Precision", "Recall", "F1", "Paper P/R/F1"], rows
            ),
        ]
    )


def test_downstream_entity_matching(benchmark, paper_scale):
    """pytest-benchmark entry point for the downstream EM experiment."""
    n_sets = 5 if paper_scale else 3
    scores = benchmark.pedantic(
        run_downstream_em, kwargs={"n_sets": n_sets}, rounds=1, iterations=1
    )
    print(report(scores))
    # The paper's claim: integration with Fuzzy FD improves the downstream task.
    assert scores["fuzzy_fd"].f1 >= scores["regular_fd"].f1
    assert scores["fuzzy_fd"].recall >= scores["regular_fd"].recall


if __name__ == "__main__":
    print(report(run_downstream_em()))
