"""Ablation ``abl-ann`` — the semantic ANN blocking channel, measured.

Surface blocking keys (n-grams, token prefixes) cannot propose a candidate
pair whose two strings share no characters — the out-of-lexicon synonym and
abbreviation joins that embedding-distance matching exists to resolve.  The
:class:`~repro.matching.ann.SemanticBlocker` adds an LSH candidate channel
over the value embeddings; this benchmark records what that channel buys and
what it costs, in three sections:

1. **Synonym recall**: a planted vocabulary of surface-*disjoint* synonym
   pairs (left forms drawn from one alphabet half, right forms from the
   other, anchored to shared concepts in a custom lexicon).  Surface-only
   blocking finds zero candidates by construction; the semantic channel must
   recover the planted pairs while scoring far fewer cells than the dense
   cross product.
2. **top-k sweep**: the recall-vs-pairs-scored trade-off as ``ann_top_k``
   grows — the curve that guides tuning.
3. **Mixed corruption**: half typo pairs (surface-blockable), half synonym
   pairs (surface-invisible), built with :class:`~repro.datasets.corruptions.
   Corruptor`.  Shows the *union* at work: the surface channel carries the
   typos, the ANN channel adds the synonyms, and the duplicate counter shows
   their overlap.  ``off`` / ``auto`` / ``on`` modes are compared.
4. **Probe speedup**: the vectorised LSH probe
   (:meth:`~repro.matching.ann.SemanticBlocker._probe_direction`) against the
   retired per-query Python loop (kept as
   :func:`~repro.matching.ann._probe_direction_reference`), on seeded random
   unit vectors so the measurement isolates the probe phase from embedding
   and matching.  Candidate pairs are asserted identical, and at full scale
   (10k x 10k values) the speedup is asserted >= 5x.  The section also
   records ``floor_seconds`` — the committed perf floor that
   ``--check-floor PATH`` compares a fresh run against (exit 1 when the
   vectorised probe regresses more than 2x), which CI runs before
   regenerating the JSON.

Results land in ``BENCH_ann.json`` (CI uploads it as an artifact next to
``BENCH_parallel.json``).  Run with ``python benchmarks/bench_ablation_ann.py``
(``--smoke`` for a small CI run, ``--output PATH`` for the JSON location,
``--check-floor PATH`` for the CI regression guard).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.datasets.corruptions import Corruptor
from repro.embeddings.lexicon import SemanticLexicon
from repro.embeddings.transformer import SimulatedTransformerEmbedder
from repro.evaluation import format_markdown_table
from repro.matching.ann import (
    SemanticBlocker,
    _probe_candidates_reference,
    _probe_direction_reference,
)
from repro.matching.blocking import BlockedValueMatcher, ValueBlocker

DEFAULT_OUTPUT = "BENCH_ann.json"

#: Alphabet halves used to make left/right surface forms share no characters
#: (no common 3-grams, no common token prefixes → zero surface candidates).
LEFT_ALPHABET = "abcdefghijklm"
RIGHT_ALPHABET = "nopqrstuvwxyz"


# ---------------------------------------------------------------------------------
# synthetic workloads
# ---------------------------------------------------------------------------------


def _word(rng: random.Random, alphabet: str, length: int = 6) -> str:
    return "".join(rng.choice(alphabet) for _ in range(length))


def synonym_vocabulary(
    n_pairs: int, seed: int = 5, tokens: int = 2
) -> Tuple[List[str], List[str], SemanticLexicon]:
    """``n_pairs`` surface-disjoint synonym pairs plus the lexicon anchoring them.

    Each concept gets one multi-token left form (letters a–m) and one
    multi-token right form (letters n–z): same concept, zero shared
    characters.  Multi-token forms keep the embedder's canonicalisation from
    collapsing the pair to one string, so their cosine similarity stays in
    the moderate (~0.6) regime that actually exercises the LSH index.
    """
    rng = random.Random(seed)
    groups: Dict[str, List[str]] = {}
    left: List[str] = []
    right: List[str] = []
    seen: Set[str] = set()
    while len(left) < n_pairs:
        left_form = " ".join(_word(rng, LEFT_ALPHABET) for _ in range(tokens))
        right_form = " ".join(_word(rng, RIGHT_ALPHABET) for _ in range(tokens))
        if left_form in seen or right_form in seen:
            continue
        seen.add(left_form)
        seen.add(right_form)
        # The left form doubles as the concept id, so each concept has
        # exactly the two planted surface forms (the id would otherwise be
        # a third form the Corruptor could pick as the "synonym").
        groups[left_form] = [right_form]
        left.append(left_form)
        right.append(right_form)
    return left, right, SemanticLexicon(groups)


def corruption_workload(
    n_pairs: int, seed: int = 9
) -> Tuple[List[str], List[str], SemanticLexicon]:
    """Half typo-corrupted pairs, half surface-disjoint synonym pairs.

    The synonym half reuses :func:`synonym_vocabulary`; the right forms are
    produced by running :class:`~repro.datasets.corruptions.Corruptor`'s
    ``"synonym"`` kind against the same lexicon, so the workload is exactly
    the abbreviation/synonym corruption class the datasets package models.
    """
    n_synonyms = n_pairs // 2
    syn_left, _, lexicon = synonym_vocabulary(n_synonyms, seed=seed)
    corruptor = Corruptor(lexicon=lexicon, seed=seed)
    syn_right = [corruptor.corrupt(value, "synonym") for value in syn_left]

    # Typo values are single 12-character tokens over a wide alphabet: long
    # enough that unrelated values rarely share a sampled n-gram (components
    # stay near-singleton, as in the parallel ablation's workload) while a
    # one-edit typo still shares most of its surface with the original.
    rng = random.Random(seed + 1)
    typo_alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    typo_left: List[str] = []
    typo_right: List[str] = []
    seen: Set[str] = set(syn_left) | set(syn_right)
    while len(typo_left) < n_pairs - n_synonyms:
        value = _word(rng, typo_alphabet, 12)
        if value in seen:
            continue
        seen.add(value)
        typo_left.append(value)
        typo_right.append(corruptor.corrupt(value, "typo", rng))
    return syn_left + typo_left, syn_right + typo_right, lexicon


def bench_embedder(lexicon: SemanticLexicon) -> SimulatedTransformerEmbedder:
    """A full-coverage simulated embedder anchored to the workload's lexicon.

    Full coverage removes the embedder's own knowledge gaps from the
    measurement, so the recall numbers isolate what *blocking* loses or
    recovers rather than what the model doesn't know.
    """
    return SimulatedTransformerEmbedder(
        model_name="ann_bench", lexicon_coverage=1.0, noise_level=0.16, lexicon=lexicon
    )


def matched_recall(matches: Sequence, planted: Set[Tuple[str, str]]) -> float:
    """Share of planted ``(left, right)`` pairs the matcher actually matched."""
    found = {(match.left, match.right) for match in matches}
    return len(found & planted) / len(planted) if planted else 0.0


def _run_matcher(
    embedder: SimulatedTransformerEmbedder,
    left: Sequence[str],
    right: Sequence[str],
    planted: Set[Tuple[str, str]],
    semantic_blocker: SemanticBlocker = None,
    semantic_mode: str = "on",
) -> Dict[str, object]:
    """One blocked-matching run; returns recall + the cost counters."""
    # 5-grams keep accidental collisions between unrelated random values rare
    # (the same setting the parallel ablation uses), so the surface channel's
    # pairs_scored reflects real shared surface, not gram-space saturation.
    matcher = BlockedValueMatcher(
        embedder,
        threshold=0.7,
        blocker=ValueBlocker(ngram_size=5, use_lexicon=False),
        semantic_blocker=semantic_blocker,
        semantic_mode=semantic_mode,
    )
    matches = matcher.match(list(left), list(right))
    statistics = matcher.last_statistics
    return {
        "recall": matched_recall(matches, planted),
        "accepted_matches": len(matches),
        "candidate_pairs": statistics.candidate_pairs,
        "pairs_scored": statistics.pairs_scored,
        "ann_pairs_added": statistics.ann_pairs_added,
        "ann_pairs_duplicate": statistics.ann_pairs_duplicate,
        "largest_component": statistics.largest_component,
    }


# ---------------------------------------------------------------------------------
# section 1: planted synonym recall, surface vs surface ∪ semantic
# ---------------------------------------------------------------------------------


def run_synonym_recall_benchmark(
    n_pairs: int = 1500, top_k: int = 5, seed: int = 5
) -> Dict[str, object]:
    """The headline claim: ANN recovers what surface blocking cannot see.

    Above the blocker's brute-force cutoff the LSH index engages
    (``used_lsh`` records which path ran), so the full-scale run measures the
    approximate path while the smoke run measures the exact one.
    """
    left, right, lexicon = synonym_vocabulary(n_pairs, seed=seed)
    planted = set(zip(left, right))
    embedder = bench_embedder(lexicon)
    embedder.embed_many(left)
    embedder.embed_many(right)

    surface_only = _run_matcher(embedder, left, right, planted)
    semantic_blocker = SemanticBlocker(embedder, top_k=top_k, min_similarity=0.3)
    semantic = _run_matcher(
        embedder, left, right, planted, semantic_blocker=semantic_blocker
    )
    dense_cells = len(left) * len(right)
    return {
        "n_pairs": n_pairs,
        "top_k": top_k,
        "dense_cells": dense_cells,
        "used_lsh": semantic_blocker.last_used_lsh,
        "surface": surface_only,
        "semantic": semantic,
        "recall_gain": semantic["recall"] - surface_only["recall"],
        "scored_share_of_dense": (
            semantic["pairs_scored"] / dense_cells if dense_cells else 0.0
        ),
    }


# ---------------------------------------------------------------------------------
# section 2: recall vs pairs scored as top-k grows
# ---------------------------------------------------------------------------------


def run_top_k_sweep(
    n_pairs: int = 1500, top_ks: Sequence[int] = (1, 2, 5, 10), seed: int = 5
) -> List[Dict[str, object]]:
    """The recall-vs-cost curve of the semantic channel."""
    left, right, lexicon = synonym_vocabulary(n_pairs, seed=seed)
    planted = set(zip(left, right))
    embedder = bench_embedder(lexicon)
    embedder.embed_many(left)
    embedder.embed_many(right)

    rows: List[Dict[str, object]] = []
    for top_k in top_ks:
        semantic_blocker = SemanticBlocker(embedder, top_k=top_k, min_similarity=0.3)
        run = _run_matcher(
            embedder, left, right, planted, semantic_blocker=semantic_blocker
        )
        rows.append(
            {
                "top_k": top_k,
                "recall": run["recall"],
                "pairs_scored": run["pairs_scored"],
                "ann_pairs_added": run["ann_pairs_added"],
                "used_lsh": semantic_blocker.last_used_lsh,
            }
        )
    return rows


# ---------------------------------------------------------------------------------
# section 3: mixed corruptions — the union of both channels
# ---------------------------------------------------------------------------------


def run_mixed_corruption_benchmark(n_pairs: int = 1000, seed: int = 9) -> Dict[str, object]:
    """Typos ride the surface keys, synonyms ride the ANN channel.

    ``auto`` must land between ``off`` and ``on`` in cost while matching
    ``on``'s recall here: the synonym half leaves values uncovered, which is
    exactly the signal ``auto`` keys on.
    """
    left, right, lexicon = corruption_workload(n_pairs, seed=seed)
    planted = set(zip(left, right))
    embedder = bench_embedder(lexicon)
    embedder.embed_many(left)
    embedder.embed_many(right)

    runs: Dict[str, Dict[str, object]] = {}
    runs["off"] = _run_matcher(embedder, left, right, planted)
    for mode in ("auto", "on"):
        runs[mode] = _run_matcher(
            embedder,
            left,
            right,
            planted,
            semantic_blocker=SemanticBlocker(embedder, min_similarity=0.3),
            semantic_mode=mode,
        )
    return {
        "n_pairs": n_pairs,
        "dense_cells": len(left) * len(right),
        "modes": runs,
    }


# ---------------------------------------------------------------------------------
# section 4: vectorised probe vs the retired Python loop (+ the CI floor guard)
# ---------------------------------------------------------------------------------


def _unit_vectors(rng: np.random.Generator, n_values: int, dimension: int) -> np.ndarray:
    vectors = rng.standard_normal((n_values, dimension))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


def run_probe_speedup_benchmark(
    n_values: int = 10_000,
    dimension: int = 64,
    n_bits: int = 12,
    top_k: int = 5,
    seed: int = 31,
    include_reference: bool = True,
) -> Dict[str, object]:
    """Tentpole measurement: the vectorised probe vs the per-query loop.

    Seeded random unit vectors stand in for embeddings — the probe phase only
    sees vectors and hash codes, so synthetic inputs measure exactly the code
    that changed while keeping the workload reproducible.  ``n_bits=12``
    because bucket granularity must scale with the corpus: the blocker's
    8-bit default (256 buckets) is tuned for the few-thousand-value columns
    the matcher sees, and at 10k values it collapses to ~40 values per
    bucket — a degenerate index where *any* implementation spends its time on
    the quarter-of-the-cross-product candidate volume rather than on probing.
    4096 buckets is the granularity one would configure at this scale.

    Two measurements: the **probe phase** (bucket lookup to deduplicated
    candidate pairs — the pure-Python hot path this PR vectorised, and the
    acceptance claim's >= 5x at full scale) and **end to end** (probe plus
    the per-query similarity/top-k cut, which both paths compute with
    byte-identical operands, so it bounds the overall win).  The vectorised
    probe time is the best of three runs (the floor should not record a
    cold-cache outlier); the reference loop runs once.  Candidate pairs are
    asserted byte-identical at both levels.  ``include_reference=False``
    skips the loops and the identity/speedup assertions — the mode the
    ``--check-floor`` guard uses, which only needs the vectorised wall-clock.
    """
    rng = np.random.default_rng(seed)
    query_vectors = _unit_vectors(rng, n_values, dimension)
    index_vectors = _unit_vectors(rng, n_values, dimension)
    blocker = SemanticBlocker(
        SimulatedTransformerEmbedder(model_name="probe_bench"),
        top_k=top_k,
        n_bits=n_bits,
        min_similarity=0.3,
    )
    planes = blocker._hyperplanes(dimension)
    query_codes = blocker._codes(query_vectors, planes)
    index_codes = blocker._codes(index_vectors, planes)

    vectorised_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        query_ids, candidate_ids = blocker._probe_candidates(query_codes, index_codes)
        vectorised_seconds = min(vectorised_seconds, time.perf_counter() - start)

    result: Dict[str, object] = {
        "n_values": n_values,
        "dimension": dimension,
        "top_k": top_k,
        "n_tables": blocker.n_tables,
        "n_bits": n_bits,
        "candidate_pairs": int(len(query_ids)),
        "vectorised_seconds": vectorised_seconds,
        # The committed perf floor --check-floor compares against.  Clamped
        # so sub-quarter-second runs don't produce a floor that normal
        # machine-to-machine variance would trip.
        "floor_seconds": max(vectorised_seconds, 0.25),
    }
    if include_reference:
        start = time.perf_counter()
        reference_query_ids, reference_candidate_ids = _probe_candidates_reference(
            query_codes, index_codes, n_tables=blocker.n_tables, n_bits=n_bits
        )
        reference_seconds = time.perf_counter() - start
        assert np.array_equal(query_ids, reference_query_ids) and np.array_equal(
            candidate_ids, reference_candidate_ids
        ), "vectorised probe candidates diverged from the reference loop"
        speedup = (
            reference_seconds / vectorised_seconds if vectorised_seconds else float("inf")
        )

        start = time.perf_counter()
        vectorised_pairs = blocker._probe_direction(
            query_vectors, query_codes, index_vectors, index_codes
        )
        end_to_end_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reference_pairs = _probe_direction_reference(
            query_vectors,
            query_codes,
            index_vectors,
            index_codes,
            n_tables=blocker.n_tables,
            n_bits=n_bits,
            top_k=top_k,
            min_similarity=blocker.min_similarity,
        )
        reference_end_to_end_seconds = time.perf_counter() - start
        assert vectorised_pairs == reference_pairs, (
            "vectorised top-k pairs diverged from the reference loop"
        )

        result["reference_seconds"] = reference_seconds
        result["speedup"] = speedup
        result["end_to_end_seconds"] = end_to_end_seconds
        result["reference_end_to_end_seconds"] = reference_end_to_end_seconds
        result["end_to_end_speedup"] = (
            reference_end_to_end_seconds / end_to_end_seconds
            if end_to_end_seconds
            else float("inf")
        )
        result["identical_pairs"] = True
        if n_values >= 10_000:
            # The acceptance claim at full scale.
            assert speedup >= 5.0, (
                f"probe speedup {speedup:.1f}x below the 5x acceptance floor"
            )
    return result


def check_floor(path: str) -> int:
    """CI guard: 1 if the vectorised probe regressed >2x vs the committed floor."""
    committed = json.loads(Path(path).read_text(encoding="utf-8"))
    probe = committed.get("probe_speedup")
    if not isinstance(probe, dict) or "floor_seconds" not in probe:
        print(f"{path} has no probe_speedup floor; nothing to check")
        return 0
    current = run_probe_speedup_benchmark(
        n_values=int(probe["n_values"]),
        dimension=int(probe.get("dimension", 64)),
        n_bits=int(probe.get("n_bits", 12)),
        top_k=int(probe.get("top_k", 5)),
        include_reference=False,
    )
    floor = float(probe["floor_seconds"])
    limit = 2.0 * floor
    seconds = float(current["vectorised_seconds"])
    print(
        f"probe floor check at {probe['n_values']:,} values: {seconds:.3f}s current "
        f"vs {floor:.3f}s committed floor (limit {limit:.3f}s)"
    )
    if seconds > limit:
        print("FAIL: candidate generation regressed more than 2x vs the committed floor")
        return 1
    print("OK: within the floor")
    return 0


# ---------------------------------------------------------------------------------
# reports + JSON
# ---------------------------------------------------------------------------------


def report(results: Dict[str, object]) -> str:
    recall = results["synonym_recall"]
    sweep = results["top_k_sweep"]
    mixed = results["mixed_corruption"]
    probe = results["probe_speedup"]
    lines = [
        "",
        "Ablation — semantic ANN blocking channel",
        "",
        (
            f"Planted synonym recall ({recall['n_pairs']:,} surface-disjoint pairs, "
            f"{'LSH' if recall['used_lsh'] else 'brute-force'} path): "
            f"surface-only {recall['surface']['recall']:.2f} -> "
            f"surface ∪ semantic {recall['semantic']['recall']:.2f} recall, "
            f"{recall['semantic']['pairs_scored']:,} of {recall['dense_cells']:,} "
            f"dense cells scored "
            f"({100.0 * recall['scored_share_of_dense']:.2f}%)"
        ),
        "",
        "Recall vs pairs scored as ann_top_k grows:",
        "",
        format_markdown_table(
            ["top_k", "Recall", "Pairs scored", "ANN pairs added", "LSH"],
            [
                [
                    row["top_k"],
                    f"{row['recall']:.2f}",
                    f"{row['pairs_scored']:,}",
                    f"{row['ann_pairs_added']:,}",
                    str(bool(row["used_lsh"])),
                ]
                for row in sweep
            ],
        ),
        "",
        (
            f"Mixed corruption workload ({mixed['n_pairs']:,} pairs: half typos, "
            f"half surface-disjoint synonyms; dense = {mixed['dense_cells']:,} cells):"
        ),
        "",
        format_markdown_table(
            ["semantic_blocking", "Recall", "Pairs scored", "ANN added", "ANN duplicate"],
            [
                [
                    mode,
                    f"{run['recall']:.2f}",
                    f"{run['pairs_scored']:,}",
                    f"{run['ann_pairs_added']:,}",
                    f"{run['ann_pairs_duplicate']:,}",
                ]
                for mode, run in mixed["modes"].items()
            ],
        ),
        "",
        (
            f"Vectorised probe ({probe['n_values']:,} x {probe['n_values']:,} values, "
            f"dim {probe['dimension']}, {probe['n_tables']} tables x "
            f"{probe['n_bits']} bits): probe phase {probe['reference_seconds']:.2f}s "
            f"Python loop -> {probe['vectorised_seconds']:.3f}s vectorised "
            f"({probe['speedup']:.1f}x); end to end "
            f"{probe['reference_end_to_end_seconds']:.2f}s -> "
            f"{probe['end_to_end_seconds']:.2f}s "
            f"({probe['end_to_end_speedup']:.1f}x); identical pairs: "
            f"{bool(probe['identical_pairs'])}; committed floor "
            f"{probe['floor_seconds']:.3f}s"
        ),
    ]
    return "\n".join(lines)


def run_all(
    n_pairs: int = 1500,
    mixed_pairs: int = 1000,
    top_ks: Sequence[int] = (1, 2, 5, 10),
    probe_values: int = 10_000,
) -> Dict[str, object]:
    """Run every section at the given scale (the JSON payload)."""
    return {
        "benchmark": "abl-ann",
        "n_pairs": n_pairs,
        "synonym_recall": run_synonym_recall_benchmark(n_pairs=n_pairs),
        "top_k_sweep": run_top_k_sweep(n_pairs=n_pairs, top_ks=list(top_ks)),
        "mixed_corruption": run_mixed_corruption_benchmark(n_pairs=mixed_pairs),
        "probe_speedup": run_probe_speedup_benchmark(n_values=probe_values),
    }


def write_json(results: Dict[str, object], path: str = DEFAULT_OUTPUT) -> Path:
    """Persist the benchmark payload (the CI artifact)."""
    output = Path(path)
    output.write_text(json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")
    return output


# ---------------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------------


def test_synonym_recall(benchmark):
    recall = benchmark.pedantic(
        run_synonym_recall_benchmark, kwargs={"n_pairs": 1500}, rounds=1, iterations=1
    )
    # The acceptance claim: strict recall improvement at sub-dense cost.
    assert recall["semantic"]["recall"] > recall["surface"]["recall"]
    assert recall["semantic"]["pairs_scored"] < recall["dense_cells"]
    assert recall["used_lsh"]


def test_probe_speedup(benchmark):
    probe = benchmark.pedantic(
        run_probe_speedup_benchmark, kwargs={"n_values": 2000}, rounds=1, iterations=1
    )
    # Byte-identity always holds; the 5x floor is asserted inside the run at
    # full scale only (smoke scale under-rewards vectorisation).
    assert probe["identical_pairs"]
    assert probe["speedup"] > 1.0


def test_mixed_corruption_modes(benchmark):
    mixed = benchmark.pedantic(
        run_mixed_corruption_benchmark, kwargs={"n_pairs": 600}, rounds=1, iterations=1
    )
    modes = mixed["modes"]
    assert modes["on"]["recall"] > modes["off"]["recall"]
    assert modes["auto"]["recall"] > modes["off"]["recall"]
    assert modes["on"]["pairs_scored"] < mixed["dense_cells"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-friendly run (hundreds of values)"
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the JSON payload"
    )
    parser.add_argument(
        "--check-floor",
        metavar="PATH",
        default=None,
        help=(
            "compare a fresh vectorised-probe run against the committed floor in "
            "PATH and exit 1 on a >2x regression (writes nothing)"
        ),
    )
    arguments = parser.parse_args()
    if arguments.check_floor:
        raise SystemExit(check_floor(arguments.check_floor))
    if arguments.smoke:
        payload = run_all(n_pairs=200, mixed_pairs=160, top_ks=(1, 5), probe_values=2000)
    else:
        payload = run_all()
    print(report(payload))
    destination = write_json(payload, arguments.output)
    print(f"\nwrote {destination}")
