"""Ablation ``abl-representative`` — representative-value selection policy.

The paper replaces every matched value with the most frequent surface form
(ties broken toward the earlier table).  This ablation compares that rule with
the alternatives (first column, longest form, shortest form) by measuring the
downstream integration: how many tuples the Fuzzy FD produces over the
Auto-Join-style tables and how much value rewriting each policy performs.
Effectiveness of the value matching itself is identical across policies (the
match sets do not depend on the representative), so the interesting quantity
is the consolidation behaviour.

Run with ``pytest benchmarks/bench_ablation_representatives.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_representatives.py``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import FuzzyFDConfig, FuzzyFullDisjunction
from repro.core.representatives import available_policies
from repro.datasets import AutoJoinBenchmark
from repro.evaluation import format_markdown_table


def run_representative_ablation(
    policies: Sequence[str] = tuple(available_policies()),
    n_sets: int = 6,
    values_per_column: int = 40,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Integration statistics of Fuzzy FD per representative policy."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    results: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        operator = FuzzyFullDisjunction(FuzzyFDConfig(representative_policy=policy))
        output_tuples = 0
        rewrites = 0
        input_tuples = 0
        for integration_set in integration_sets:
            tables = integration_set.tables()
            result = operator.integrate(tables)
            output_tuples += result.table.num_rows
            rewrites += result.rewrites_applied()
            input_tuples += sum(table.num_rows for table in tables)
        results[policy] = {
            "input_tuples": float(input_tuples),
            "output_tuples": float(output_tuples),
            "rewrites": float(rewrites),
        }
    return results


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [policy, int(s["input_tuples"]), int(s["output_tuples"]), int(s["rewrites"])]
        for policy, s in results.items()
    ]
    return "\n".join(
        [
            "",
            "Ablation — representative-value policy (Fuzzy FD over Auto-Join tables)",
            "",
            format_markdown_table(["Policy", "Input tuples", "Output tuples", "Rewrites"], rows),
        ]
    )


def test_representative_ablation(benchmark):
    results = benchmark.pedantic(run_representative_ablation, rounds=1, iterations=1)
    print(report(results))
    # Every policy consolidates the same match sets, so output sizes agree.
    sizes = {stats["output_tuples"] for stats in results.values()}
    assert len(sizes) == 1


if __name__ == "__main__":
    print(report(run_representative_ablation()))
