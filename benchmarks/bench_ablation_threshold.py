"""Ablation ``abl-threshold`` — sensitivity to the matching threshold θ.

The paper reports θ = 0.7 "gives the best results" (following the discovery
literature).  This ablation sweeps θ over the Auto-Join benchmark with the
Mistral embedder and reports value-matching P/R/F1 per threshold, which shows
the precision/recall trade-off around the chosen operating point.

``run_engine_theta_sweep`` additionally measures the end-to-end sweep the way
a service runs it: one warm :class:`~repro.core.engine.IntegrationEngine`
serving every θ as a per-request override (each value embedded once) versus a
cold operator instantiated per θ (every value re-embedded each time).

Run with ``pytest benchmarks/bench_ablation_threshold.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_threshold.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from repro.core import FuzzyFDConfig, FuzzyFullDisjunction, IntegrationEngine
from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import MatchingScores, format_markdown_table, macro_average, score_integration_set

DEFAULT_THRESHOLDS = (0.3, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_threshold_ablation(
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_sets: int = 15,
    values_per_column: int = 60,
    seed: int = 42,
) -> Dict[float, MatchingScores]:
    """Macro-averaged value-matching scores of the Mistral matcher per θ."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    embedder = MistralEmbedder()
    results: Dict[float, MatchingScores] = {}
    for threshold in thresholds:
        matcher = ValueMatcher(embedder, threshold=threshold)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        results[threshold] = macro_average(per_set)
    return results


def run_engine_theta_sweep(
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_sets: int = 8,
    values_per_column: int = 60,
    seed: int = 42,
) -> Dict[str, float]:
    """End-to-end θ-sweep: one warm engine vs a cold operator per θ.

    Returns wall-clock seconds for both shapes plus the warm engine's
    embedding-cache miss count (which must not grow after the first θ).
    """
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    table_sets = [s.tables() for s in integration_sets]

    # Untimed warm-up: pay the process-wide one-time costs (scipy import,
    # default lexicon construction) before either timer starts, so the
    # comparison measures embedding reuse rather than interpreter warm-up.
    FuzzyFullDisjunction(FuzzyFDConfig()).integrate(table_sets[0])

    engine = IntegrationEngine(FuzzyFDConfig())
    start = time.perf_counter()
    for theta in thresholds:
        for tables in table_sets:
            engine.integrate(tables, threshold=theta)
    warm_seconds = time.perf_counter() - start
    misses_after_sweep = engine.embedding_cache.stats()["misses"]

    start = time.perf_counter()
    for theta in thresholds:
        operator = FuzzyFullDisjunction(FuzzyFDConfig(threshold=theta))
        for tables in table_sets:
            operator.integrate(tables)
    cold_seconds = time.perf_counter() - start

    return {
        "warm_seconds": warm_seconds,
        "cold_seconds": cold_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "warm_cache_misses": float(misses_after_sweep),
    }


def report(results: Dict[float, MatchingScores]) -> str:
    rows = [
        [f"{threshold:.1f}", f"{s.precision:.3f}", f"{s.recall:.3f}", f"{s.f1:.3f}"]
        for threshold, s in sorted(results.items())
    ]
    return "\n".join(
        [
            "",
            "Ablation — matching threshold θ (Mistral, Auto-Join benchmark)",
            "",
            format_markdown_table(["θ", "Precision", "Recall", "F1"], rows),
        ]
    )


def test_threshold_ablation(benchmark):
    results = benchmark.pedantic(run_threshold_ablation, rounds=1, iterations=1)
    print(report(results))
    best = max(results, key=lambda threshold: results[threshold].f1)
    # The paper's operating point should be competitive: within a small margin
    # of the best threshold in the sweep.
    assert results[0.7].f1 >= results[best].f1 - 0.05


def test_engine_sweep_reuses_embeddings(benchmark):
    results = benchmark.pedantic(
        run_engine_theta_sweep,
        kwargs=dict(thresholds=(0.5, 0.7, 0.9), n_sets=3, values_per_column=20),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nwarm engine: {results['warm_seconds']:.3f}s, "
        f"cold operators: {results['cold_seconds']:.3f}s "
        f"({results['speedup']:.1f}x), "
        f"warm cache misses: {results['warm_cache_misses']:.0f}"
    )
    # The warm engine must not be slower than the per-θ cold shape.
    assert results["warm_seconds"] <= results["cold_seconds"]


if __name__ == "__main__":
    print(report(run_threshold_ablation()))
    sweep = run_engine_theta_sweep()
    print(
        "\nEnd-to-end θ-sweep (warm IntegrationEngine vs cold per-θ operators)\n\n"
        f"warm engine : {sweep['warm_seconds']:.3f}s "
        f"({sweep['warm_cache_misses']:.0f} embeddings computed)\n"
        f"cold        : {sweep['cold_seconds']:.3f}s\n"
        f"speedup     : {sweep['speedup']:.2f}x"
    )
