"""Ablation ``abl-threshold`` — sensitivity to the matching threshold θ.

The paper reports θ = 0.7 "gives the best results" (following the discovery
literature).  This ablation sweeps θ over the Auto-Join benchmark with the
Mistral embedder and reports value-matching P/R/F1 per threshold, which shows
the precision/recall trade-off around the chosen operating point.

Run with ``pytest benchmarks/bench_ablation_threshold.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_threshold.py``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import MatchingScores, format_markdown_table, macro_average, score_integration_set

DEFAULT_THRESHOLDS = (0.3, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_threshold_ablation(
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_sets: int = 15,
    values_per_column: int = 60,
    seed: int = 42,
) -> Dict[float, MatchingScores]:
    """Macro-averaged value-matching scores of the Mistral matcher per θ."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    embedder = MistralEmbedder()
    results: Dict[float, MatchingScores] = {}
    for threshold in thresholds:
        matcher = ValueMatcher(embedder, threshold=threshold)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        results[threshold] = macro_average(per_set)
    return results


def report(results: Dict[float, MatchingScores]) -> str:
    rows = [
        [f"{threshold:.1f}", f"{s.precision:.3f}", f"{s.recall:.3f}", f"{s.f1:.3f}"]
        for threshold, s in sorted(results.items())
    ]
    return "\n".join(
        [
            "",
            "Ablation — matching threshold θ (Mistral, Auto-Join benchmark)",
            "",
            format_markdown_table(["θ", "Precision", "Recall", "F1"], rows),
        ]
    )


def test_threshold_ablation(benchmark):
    results = benchmark.pedantic(run_threshold_ablation, rounds=1, iterations=1)
    print(report(results))
    best = max(results, key=lambda threshold: results[threshold].f1)
    # The paper's operating point should be competitive: within a small margin
    # of the best threshold in the sweep.
    assert results[0.7].f1 >= results[best].f1 - 0.05


if __name__ == "__main__":
    print(report(run_threshold_ablation()))
