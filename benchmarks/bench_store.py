"""Benchmark ``bench-store`` — the persistent artifact store, measured.

The storage PR made engine warmth durable: embedding matrices live in
memmapped segments of an :class:`~repro.storage.store.ArtifactStore`, the
semantic blocker's LSH codes persist next to them, and process workers
attach shared memmaps instead of unpickling embedding rows.  This benchmark
records what each mechanism buys:

1. **Cold vs warm engine start**: a fresh engine integrates a workload and
   publishes its artifacts; a second fresh engine over the same directory
   serves the same request warm.  The warm run must make *zero* raw embed
   calls, produce identical output, and be faster.
2. **Durable ANN indexes**: LSH code matrices built + published cold, then
   loaded by a fresh blocker — zero rebuilds, identical candidate pairs.
3. **Process hand-off**: ``run_partitioned`` over the process backend with
   the embedding matrix shipped the old way (pickled into every batch's
   closure) vs the new way (``shared=`` memmap handles).
4. **Store-on vs store-off identity**: the store never changes results.

Results land in ``BENCH_store.json`` (committed to the repo and uploaded as
a CI artifact), so the cold→warm trajectory is recorded over time.  The
committed file's ``warm_start.floor_seconds`` is a perf floor:
``--check-floor PATH`` re-times the warm start at the committed scale and
exits 1 on a >2x regression (or any raw embed call on the warm side) — the
same CI guard treatment ``BENCH_ann.json`` got.  Absolute speedups are
hardware- and workload-honest: the simulated embedders are cheap, so the
warm-start ratio here is a *floor* — real model-backed embedders make the
cold side arbitrarily slower while the warm side stays memmap-bound.

Run with ``python benchmarks/bench_store.py`` (``--smoke`` for a small CI
run, ``--output PATH`` to choose the JSON location) or via
``pytest benchmarks/bench_store.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import pickle
import random
import string
import tempfile
import time
from functools import partial
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.matching.ann import SemanticBlocker
from repro.storage import ArtifactStore
from repro.table import Table
from repro.utils.executor import ExecutorConfig, run_partitioned

DEFAULT_OUTPUT = "BENCH_store.json"


class CountingEmbedder(MistralEmbedder):
    """MistralEmbedder that counts raw (uncached, unstored) embed calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.raw_embeds = 0

    def _embed_text(self, text):
        self.raw_embeds += 1
        return super()._embed_text(text)


# ---------------------------------------------------------------------------------
# synthetic workload
# ---------------------------------------------------------------------------------


def request_tables(n_values: int, seed: int = 7) -> List[Table]:
    """A three-table integration request over ``n_values`` fuzzy city names."""
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase
    cities = []
    seen = set()
    while len(cities) < n_values:
        name = "".join(rng.choice(alphabet) for _ in range(10))
        if name not in seen:
            seen.add(name)
            cities.append(name)
    population = Table(
        "population",
        ["City", "Population"],
        [(city, str(1000 + row)) for row, city in enumerate(cities)],
    )
    transit = Table(
        "transit",
        ["City", "Lines"],
        # One substituted character per name keeps the matcher honest.
        [(city[:-1] + ("z" if city[-1] != "z" else "q"), str(row))
         for row, city in enumerate(cities)],
    )
    climate = Table(
        "climate",
        ["City", "Temp"],
        [(city, f"{row}.5C") for row, city in enumerate(cities[: n_values // 2])],
    )
    return [population, transit, climate]


# ---------------------------------------------------------------------------------
# section 1: cold vs warm engine start
# ---------------------------------------------------------------------------------


def run_warm_start_benchmark(n_values: int = 1500, seed: int = 7) -> Dict[str, float]:
    """A restarted engine over the published store vs the cold first run."""
    tables = request_tables(n_values, seed=seed)
    with tempfile.TemporaryDirectory() as store_dir:
        def engine() -> IntegrationEngine:
            return IntegrationEngine(
                FuzzyFDConfig(
                    embedder=CountingEmbedder(),
                    blocking="auto",
                    store_dir=store_dir,
                    store_mode="readwrite",
                )
            )

        cold_engine = engine()
        start = time.perf_counter()
        cold = cold_engine.integrate(tables)
        cold_seconds = time.perf_counter() - start

        warm_engine = engine()
        start = time.perf_counter()
        warm = warm_engine.integrate(tables)
        warm_seconds = time.perf_counter() - start

        return {
            "n_values": float(n_values),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
            "cold_raw_embeds": float(cold_engine.embedder.raw_embeds),
            "warm_raw_embeds": float(warm_engine.embedder.raw_embeds),
            "published_rows": cold.timings.get("store_published_rows", 0.0),
            "warm_store_hits": warm.timings.get("cache_store_hits", 0.0),
            "identical_output": float(warm.table.rows == cold.table.rows),
            # The committed perf floor --check-floor compares against,
            # clamped so sub-quarter-second runs don't produce a floor that
            # normal CI jitter would trip.
            "floor_seconds": max(warm_seconds, 0.25),
        }


def check_floor(path: str) -> int:
    """CI guard: 1 if the warm start regressed >2x vs the committed floor."""
    committed = json.loads(Path(path).read_text(encoding="utf-8"))
    warm_start = committed.get("warm_start")
    if not isinstance(warm_start, dict) or "floor_seconds" not in warm_start:
        print(f"{path} has no warm_start floor; nothing to check")
        return 0
    current = run_warm_start_benchmark(n_values=int(warm_start["n_values"]))
    floor = float(warm_start["floor_seconds"])
    limit = 2.0 * floor
    seconds = float(current["warm_seconds"])
    print(
        f"warm-start floor check at {warm_start['n_values']:,.0f} values: "
        f"{seconds:.3f}s current vs {floor:.3f}s committed floor (limit {limit:.3f}s)"
    )
    if current["warm_raw_embeds"] != 0.0:
        print("FAIL: the warm start made raw embed calls — the store went cold")
        return 1
    if seconds > limit:
        print("FAIL: warm start regressed more than 2x vs the committed floor")
        return 1
    print("OK: within the floor")
    return 0


# ---------------------------------------------------------------------------------
# section 2: durable ANN indexes
# ---------------------------------------------------------------------------------


def run_ann_durability_benchmark(n_values: int = 2000, seed: int = 11) -> Dict[str, float]:
    """Cold LSH build + publish vs a fresh blocker loading the stored codes."""
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase
    left = ["".join(rng.choice(alphabet) for _ in range(10)) for _ in range(n_values)]
    right = ["".join(rng.choice(alphabet) for _ in range(10)) for _ in range(n_values)]
    embedder = MistralEmbedder()
    embedder.embed_many(left)
    embedder.embed_many(right)  # warm the vectors: isolate the index work

    with tempfile.TemporaryDirectory() as store_dir:
        cold = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(store_dir)
        )
        start = time.perf_counter()
        cold_pairs = cold.candidate_pairs(left, right)
        cold_seconds = time.perf_counter() - start

        warm = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(store_dir)
        )
        start = time.perf_counter()
        warm_pairs = warm.candidate_pairs(left, right)
        warm_seconds = time.perf_counter() - start

        return {
            "n_values": float(n_values),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
            "cold_builds": float(cold.index_builds),
            "cold_saves": float(cold.index_saves),
            "warm_loads": float(warm.index_loads),
            "warm_builds": float(warm.index_builds),
            "identical_pairs": float(warm_pairs == cold_pairs),
        }


# ---------------------------------------------------------------------------------
# section 3: process hand-off — pickled rows vs shared memmaps
# ---------------------------------------------------------------------------------


def _row_norm_shared(index: int, matrix: np.ndarray) -> float:
    """Worker body for the ``shared=`` hand-off (matrix arrives as a kwarg)."""
    return float(np.linalg.norm(matrix[index]))


def _row_norm_captured(index: int, matrix: np.ndarray) -> float:
    """Worker body with the matrix captured — pickled into every batch."""
    return float(np.linalg.norm(matrix[index]))


def run_process_handoff_benchmark(
    n_rows: int = 20_000, dimension: int = 256, workers: int = 2
) -> Dict[str, float]:
    """Shipping one embedding matrix to process workers, both ways."""
    rng = np.random.default_rng(3)
    matrix = rng.standard_normal((n_rows, dimension))
    items = list(range(n_rows))
    config = ExecutorConfig(
        backend="process", max_workers=workers, min_parallel_items=2
    )

    captured_fn = partial(_row_norm_captured, matrix=matrix)
    start = time.perf_counter()
    captured = run_partitioned(items, captured_fn, config)
    captured_seconds = time.perf_counter() - start

    start = time.perf_counter()
    shared = run_partitioned(
        items, _row_norm_shared, config, shared={"matrix": matrix}
    )
    shared_seconds = time.perf_counter() - start

    return {
        "n_rows": float(n_rows),
        "dimension": float(dimension),
        "workers": float(workers),
        "matrix_bytes": float(matrix.nbytes),
        "captured_pickle_bytes": float(len(pickle.dumps(captured_fn))),
        "captured_seconds": captured_seconds,
        "shared_seconds": shared_seconds,
        "speedup": captured_seconds / shared_seconds if shared_seconds else float("inf"),
        "identical_results": float(shared == captured),
    }


# ---------------------------------------------------------------------------------
# section 4: the store never changes results
# ---------------------------------------------------------------------------------


def run_identity_check(n_values: int = 400, seed: int = 13) -> Dict[str, float]:
    """Store-off vs cold store vs warm store: byte-identical output tables."""
    tables = request_tables(n_values, seed=seed)
    knobs = dict(blocking="auto", semantic_blocking="auto")
    baseline = IntegrationEngine(FuzzyFDConfig(**knobs)).integrate(tables)
    with tempfile.TemporaryDirectory() as store_dir:
        stored = dict(knobs, store_dir=store_dir, store_mode="readwrite")
        cold = IntegrationEngine(FuzzyFDConfig(**stored)).integrate(tables)
        warm = IntegrationEngine(FuzzyFDConfig(**stored)).integrate(tables)
    return {
        "n_values": float(n_values),
        "cold_identical": float(cold.table.rows == baseline.table.rows),
        "warm_identical": float(warm.table.rows == baseline.table.rows),
    }


# ---------------------------------------------------------------------------------
# reports + JSON
# ---------------------------------------------------------------------------------


def report(results: Dict[str, object]) -> str:
    warm_start = results["warm_start"]
    ann = results["ann_durability"]
    handoff = results["process_handoff"]
    identity = results["identity"]
    lines = [
        "",
        "Benchmark — persistent artifact store",
        "",
        (
            f"Warm start ({warm_start['n_values']:,.0f} values/side): "
            f"{warm_start['cold_seconds']:.2f}s cold ({warm_start['cold_raw_embeds']:,.0f} "
            f"raw embeds, {warm_start['published_rows']:,.0f} rows published) -> "
            f"{warm_start['warm_seconds']:.2f}s warm "
            f"({warm_start['warm_raw_embeds']:,.0f} raw embeds, "
            f"{warm_start['warm_store_hits']:,.0f} store hits) — "
            f"{warm_start['speedup']:.1f}x, identical output: "
            f"{bool(warm_start['identical_output'])}"
        ),
        "",
        (
            f"Durable ANN indexes ({ann['n_values']:,.0f} values/side): "
            f"{ann['cold_seconds']:.2f}s cold ({ann['cold_builds']:.0f} builds, "
            f"{ann['cold_saves']:.0f} saves) -> {ann['warm_seconds']:.2f}s warm "
            f"({ann['warm_loads']:.0f} loads, {ann['warm_builds']:.0f} rebuilds) — "
            f"{ann['speedup']:.1f}x, identical pairs: {bool(ann['identical_pairs'])}"
        ),
        "",
        (
            f"Process hand-off ({handoff['n_rows']:,.0f}x{handoff['dimension']:.0f} "
            f"matrix, {handoff['matrix_bytes'] / 1e6:.0f} MB, "
            f"{handoff['workers']:.0f} workers): "
            f"{handoff['captured_seconds']:.2f}s pickled-per-batch "
            f"({handoff['captured_pickle_bytes'] / 1e6:.0f} MB per pickle) -> "
            f"{handoff['shared_seconds']:.2f}s shared memmap — "
            f"{handoff['speedup']:.1f}x, identical results: "
            f"{bool(handoff['identical_results'])}"
        ),
        "",
        (
            f"Identity ({identity['n_values']:,.0f} values/side, semantic blocking on): "
            f"store-off == cold store: {bool(identity['cold_identical'])}, "
            f"store-off == warm store: {bool(identity['warm_identical'])}"
        ),
    ]
    return "\n".join(lines)


def run_all(
    n_values: int = 1500,
    ann_values: int = 2000,
    handoff_rows: int = 20_000,
    identity_values: int = 400,
) -> Dict[str, object]:
    """Run every section at the given scale (the JSON payload)."""
    return {
        "benchmark": "bench-store",
        "warm_start": run_warm_start_benchmark(n_values=n_values),
        "ann_durability": run_ann_durability_benchmark(n_values=ann_values),
        "process_handoff": run_process_handoff_benchmark(n_rows=handoff_rows),
        "identity": run_identity_check(n_values=identity_values),
    }


def write_json(results: Dict[str, object], path: str = DEFAULT_OUTPUT) -> Path:
    """Persist the benchmark payload (the CI artifact)."""
    output = Path(path)
    output.write_text(json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")
    return output


# ---------------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------------


def test_warm_start(benchmark):
    warm_start = benchmark.pedantic(
        run_warm_start_benchmark, kwargs={"n_values": 600}, rounds=1, iterations=1
    )
    assert warm_start["warm_raw_embeds"] == 0.0
    assert warm_start["identical_output"] == 1.0
    assert warm_start["speedup"] > 1.0


def test_ann_durability(benchmark):
    ann = benchmark.pedantic(
        run_ann_durability_benchmark, kwargs={"n_values": 800}, rounds=1, iterations=1
    )
    assert ann["warm_builds"] == 0.0
    assert ann["identical_pairs"] == 1.0


def test_process_handoff(benchmark):
    handoff = benchmark.pedantic(
        run_process_handoff_benchmark, kwargs={"n_rows": 4000}, rounds=1, iterations=1
    )
    assert handoff["identical_results"] == 1.0


def test_identity(benchmark):
    identity = benchmark.pedantic(
        run_identity_check, kwargs={"n_values": 200}, rounds=1, iterations=1
    )
    assert identity["cold_identical"] == 1.0
    assert identity["warm_identical"] == 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-friendly run (hundreds of values)"
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the JSON payload"
    )
    parser.add_argument(
        "--check-floor",
        metavar="PATH",
        help="re-time the warm start at the committed scale and exit 1 on a "
        ">2x regression vs floor_seconds in PATH (the CI guard)",
    )
    arguments = parser.parse_args()
    if arguments.check_floor:
        raise SystemExit(check_floor(arguments.check_floor))
    if arguments.smoke:
        payload = run_all(
            n_values=400, ann_values=600, handoff_rows=4000, identity_values=150
        )
    else:
        payload = run_all()
    print(report(payload))
    destination = write_json(payload, arguments.output)
    print(f"\nwrote {destination}")
