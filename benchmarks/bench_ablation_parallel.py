"""Ablation ``abl-parallel`` — the parallel execution layer, measured.

PR 4 added a shared executor (:mod:`repro.utils.executor`) under three
layers: the blocked matcher solves connected components concurrently and
batches all 1×1 / 1×N / N×1 components into one vectorised argmin pass, the
partitioned Full Disjunction distributes tuple components, and the
:class:`~repro.core.engine.IntegrationEngine` serves whole requests from a
bounded worker pool.  This benchmark records what each layer buys:

1. **Singleton fast path** (single-threaded): per-component solver calls vs
   the vectorised batch on a workload of thousands of 1×1 components.
2. **Worker scaling**: serial vs thread/process backends at 1/2/4 workers on
   a solver-bound workload of k×k components, matches asserted identical.
3. **Engine request pool**: ``integrate_many`` over a batch of integration
   requests, 1 vs 4 workers, results asserted identical to the serial loop.
4. **Surface-key scaling**: blocking-key generation (n-grams, token
   prefixes, lexicon keys) for tens of thousands of distinct values, serial
   vs the process-backend fan-out, key tuples asserted identical per
   position.  A fresh :class:`~repro.matching.blocking.ValueBlocker` per
   configuration keeps its key memo from serving one configuration the
   previous one's work.

Results land in ``BENCH_parallel.json`` (CI uploads it as an artifact), so
the perf trajectory of the executor is recorded over time.  Worker *scaling*
numbers are hardware-honest: on a single-core runner the thread backend
cannot beat serial, which is why the end-to-end claim is measured against
the pre-PR baseline (no singleton batching, serial solving) — the algorithmic
win that holds on any machine — while the per-worker-count rows capture
whatever the hardware offers.

Run with ``python benchmarks/bench_ablation_parallel.py`` (``--smoke`` for a
small CI run, ``--output PATH`` to choose the JSON location) or via
``pytest benchmarks/bench_ablation_parallel.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import random
import string
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.evaluation import format_component_histogram, format_markdown_table
from repro.matching.blocking import BlockedValueMatcher, ValueBlocker
from repro.table import Table
from repro.utils.executor import ExecutorConfig

DEFAULT_OUTPUT = "BENCH_parallel.json"


# ---------------------------------------------------------------------------------
# synthetic workloads
# ---------------------------------------------------------------------------------


def singleton_workload(n_values: int, seed: int = 7) -> Tuple[List[str], List[str]]:
    """~``n_values`` 1×1 components: random strings paired with a typo copy.

    Each left value is a random 12-character string; its right counterpart
    carries one substituted character in the second half, so the pair shares
    its token prefix while unrelated values almost never collide — the
    singleton-dominated regime of data-lake columns.
    """
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase + string.digits
    left: List[str] = []
    right: List[str] = []
    seen = set()
    while len(left) < n_values:
        value = "".join(rng.choice(alphabet) for _ in range(12))
        if value in seen:
            continue
        seen.add(value)
        position = rng.randrange(6, 12)
        typo = alphabet[(alphabet.index(value[position]) + 1) % len(alphabet)]
        left.append(value)
        right.append(value[:position] + typo + value[position + 1 :])
    return left, right


def component_workload(
    n_values: int, group_size: int = 8, seed: int = 11
) -> Tuple[List[str], List[str]]:
    """~``n_values // group_size`` solver-bound components of ``k×k`` values.

    Values are ``"<group token> <member token>"``; members of one group share
    the group token (one connected component per group), and the right side
    perturbs each member token so the assignment solver has real work.
    """
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase
    left: List[str] = []
    right: List[str] = []
    seen_groups = set()
    while len(left) < n_values:
        group = "".join(rng.choice(alphabet) for _ in range(8))
        if group in seen_groups:
            continue
        seen_groups.add(group)
        members = set()
        while len(members) < group_size:
            members.add("".join(rng.choice(alphabet) for _ in range(6)))
        for member in sorted(members):
            typo = alphabet[(alphabet.index(member[3]) + 1) % len(alphabet)]
            left.append(f"{group} {member}")
            right.append(f"{group} {member[:3]}{typo}{member[4:]}")
    return left[:n_values], right[:n_values]


def mixed_workload(
    n_values: int, singleton_share: float = 0.8, group_size: int = 8, seed: int = 13
) -> Tuple[List[str], List[str]]:
    """The data-lake shape: mostly 1×1 components plus a tail of k×k groups."""
    n_singletons = int(n_values * singleton_share)
    single_left, single_right = singleton_workload(n_singletons, seed=seed)
    group_left, group_right = component_workload(
        n_values - n_singletons, group_size=group_size, seed=seed + 1
    )
    return single_left + group_left, single_right + group_right


def _warm_matcher(
    embedder: MistralEmbedder,
    left: Sequence[str],
    right: Sequence[str],
    **matcher_kwargs,
) -> BlockedValueMatcher:
    """A blocked matcher over a pre-warmed embedding cache (isolates matching)."""
    blocker = ValueBlocker(ngram_size=5, use_lexicon=False)
    embedder.embed_many(list(left))
    embedder.embed_many(list(right))
    return BlockedValueMatcher(embedder, threshold=0.7, blocker=blocker, **matcher_kwargs)


def _timed_match(matcher: BlockedValueMatcher, left, right) -> Tuple[float, list]:
    # Warm the lazy imports (scipy.optimize loads on the first solve) so the
    # first timed configuration isn't charged ~0.25s of module loading.
    import numpy as np

    matcher.solver.solve(np.zeros((2, 2)))
    matcher.match(list(left[:8]), list(right[:8]))
    start = time.perf_counter()
    matches = matcher.match(left, right)
    return time.perf_counter() - start, matches


# ---------------------------------------------------------------------------------
# section 1: vectorised singleton batching (single-threaded)
# ---------------------------------------------------------------------------------


def run_singleton_fastpath_benchmark(n_values: int = 5000, seed: int = 7) -> Dict[str, float]:
    """Per-component solver calls vs one vectorised batch over all singletons."""
    left, right = singleton_workload(n_values, seed=seed)
    embedder = MistralEmbedder()
    unbatched = _warm_matcher(embedder, left, right, singleton_batching=False)
    batched = _warm_matcher(embedder, left, right)

    unbatched_seconds, unbatched_matches = _timed_match(unbatched, left, right)
    batched_seconds, batched_matches = _timed_match(batched, left, right)
    statistics = batched.last_statistics
    return {
        "n_values": float(n_values),
        "components": float(statistics.components),
        "unbatched_seconds": unbatched_seconds,
        "batched_seconds": batched_seconds,
        "speedup": unbatched_seconds / batched_seconds if batched_seconds else float("inf"),
        "identical_matches": float(
            [match.as_tuple() for match in unbatched_matches]
            == [match.as_tuple() for match in batched_matches]
        ),
        "accepted_matches": float(len(batched_matches)),
    }


# ---------------------------------------------------------------------------------
# section 2: end to end — pre-PR sequential baseline vs the new path at 4 workers
# ---------------------------------------------------------------------------------


def run_end_to_end_benchmark(
    n_values: int = 5000, workers: int = 4, backend: str = "thread", seed: int = 13
) -> Dict[str, object]:
    """The PR's headline number, on the many-component mixed workload.

    Baseline is the pre-PR engine (per-component solver calls, serial); the
    measured path batches singletons and pools the general components at
    ``workers`` workers.  The singleton batching dominates on single-core
    hardware; worker scaling adds on top when cores exist.  Matches must be
    pairwise identical.
    """
    left, right = mixed_workload(n_values, seed=seed)
    embedder = MistralEmbedder()

    baseline = _warm_matcher(embedder, left, right, singleton_batching=False)
    baseline_seconds, baseline_matches = _timed_match(baseline, left, right)

    parallel = _warm_matcher(
        embedder, left, right, executor=ExecutorConfig(backend=backend, max_workers=workers)
    )
    parallel_seconds, parallel_matches = _timed_match(parallel, left, right)
    statistics = parallel.last_statistics
    return {
        "n_values": n_values,
        "workers": workers,
        "backend": backend,
        "components": statistics.components,
        "component_histogram": statistics.component_size_histogram(),
        "baseline_seconds": baseline_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": baseline_seconds / parallel_seconds if parallel_seconds else float("inf"),
        "identical_matches": [match.as_tuple() for match in baseline_matches]
        == [match.as_tuple() for match in parallel_matches],
        "accepted_matches": len(parallel_matches),
    }


# ---------------------------------------------------------------------------------
# section 3: worker scaling on solver-bound components
# ---------------------------------------------------------------------------------


def run_worker_scaling_benchmark(
    n_values: int = 5000,
    group_size: int = 8,
    workers: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("thread", "process"),
    seed: int = 11,
) -> Dict[str, object]:
    """Serial vs pooled component solving; every configuration must agree.

    This section is deliberately solver-bound (k×k components, no
    singletons), so it isolates what the worker pool itself contributes on
    the current hardware — on a single core, nothing, and the table will
    honestly say so.
    """
    left, right = component_workload(n_values, group_size=group_size, seed=seed)
    embedder = MistralEmbedder()

    serial_matcher = _warm_matcher(embedder, left, right)
    serial_seconds, serial_matches = _timed_match(serial_matcher, left, right)
    serial_results = [
        (match.left, match.right, match.distance) for match in serial_matches
    ]
    statistics = serial_matcher.last_statistics

    runs: List[Dict[str, object]] = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
            "identical_matches": True,
        }
    ]
    for backend in backends:
        for worker_count in workers:
            if worker_count <= 1:
                continue
            executor = ExecutorConfig(backend=backend, max_workers=worker_count)
            matcher = _warm_matcher(embedder, left, right, executor=executor)
            seconds, matches = _timed_match(matcher, left, right)
            identical = (
                [(match.left, match.right, match.distance) for match in matches]
                == serial_results
            )
            runs.append(
                {
                    "backend": backend,
                    "workers": worker_count,
                    "seconds": seconds,
                    "speedup_vs_serial": serial_seconds / seconds if seconds else float("inf"),
                    "identical_matches": identical,
                }
            )

    return {
        "n_values": n_values,
        "group_size": group_size,
        "components": statistics.components,
        "runs": runs,
    }


# ---------------------------------------------------------------------------------
# section 4: surface-key generation, serial vs the process fan-out
# ---------------------------------------------------------------------------------


def surface_key_workload(n_values: int, tokens: int = 4, seed: int = 17) -> List[str]:
    """Distinct multi-token values with enough text that key generation works."""
    rng = random.Random(seed)
    values = set()
    while len(values) < n_values:
        values.add(
            " ".join(
                "".join(rng.choice(string.ascii_lowercase) for _ in range(8))
                for _ in range(tokens)
            )
        )
    return sorted(values)


def run_surface_key_scaling_benchmark(
    n_values: int = 30_000,
    workers: Sequence[int] = (2, 4),
    seed: int = 17,
) -> Dict[str, object]:
    """Serial vs process-parallel blocking-key generation, keys identical.

    Every configuration gets a *fresh* :class:`ValueBlocker` — the key memo
    persists per blocker, so a reused instance would hand later
    configurations the earlier ones' keys and time nothing.  The default
    (lexicon-on) blocker is measured because that is the production path:
    workers receive the ``"default"`` lexicon spec and rebuild the shared
    lexicon once per process, a startup cost the numbers honestly include.
    """
    values = surface_key_workload(n_values, seed=seed)

    def timed_keys(executor=None):
        blocker = ValueBlocker(executor=executor)
        start = time.perf_counter()
        keys = blocker._value_keys(values)
        return time.perf_counter() - start, keys

    serial_seconds, serial_keys = timed_keys()
    runs: List[Dict[str, object]] = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
            "identical_keys": True,
        }
    ]
    for worker_count in workers:
        if worker_count <= 1:
            continue
        executor = ExecutorConfig(backend="process", max_workers=worker_count)
        seconds, keys = timed_keys(executor)
        runs.append(
            {
                "backend": "process",
                "workers": worker_count,
                "seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds if seconds else float("inf"),
                "identical_keys": keys == serial_keys,
            }
        )
    return {"n_values": n_values, "distinct_values": len(values), "runs": runs}


# ---------------------------------------------------------------------------------
# section 3: the engine's request pool (integrate_many)
# ---------------------------------------------------------------------------------


def _request_tables(request_index: int, rows: int = 12) -> List[Table]:
    """One small three-table integration request with fuzzy value overlap."""
    cities = [f"city{request_index}_{row}" for row in range(rows)]
    first = Table(
        f"population_{request_index}",
        ["City", "Population"],
        [(city, str(1000 + row)) for row, city in enumerate(cities)],
    )
    second = Table(
        f"transit_{request_index}",
        ["City", "Lines"],
        # Typo'd city names exercise the fuzzy matcher in every request.
        [(city + "x", str(row)) for row, city in enumerate(cities)],
    )
    third = Table(
        f"climate_{request_index}",
        ["City", "Temp"],
        [(city, f"{row}.5C") for row, city in enumerate(cities[: rows // 2])],
    )
    return [first, second, third]


def run_engine_pool_benchmark(
    n_requests: int = 12, rows: int = 12, workers: int = 4
) -> Dict[str, float]:
    """``integrate_many`` vs the sequential loop over the same warm engine."""
    requests = [_request_tables(index, rows=rows) for index in range(n_requests)]
    config = FuzzyFDConfig(blocking="auto")

    serial_engine = IntegrationEngine(config)
    start = time.perf_counter()
    serial_results = serial_engine.integrate_many(requests, max_workers=1)
    serial_seconds = time.perf_counter() - start

    pooled_engine = IntegrationEngine(config)
    start = time.perf_counter()
    pooled_results = pooled_engine.integrate_many(requests, max_workers=workers)
    pooled_seconds = time.perf_counter() - start

    identical = all(
        serial.table.same_rows(pooled.table)
        for serial, pooled in zip(serial_results, pooled_results)
    )
    return {
        "n_requests": float(n_requests),
        "workers": float(workers),
        "serial_seconds": serial_seconds,
        "pooled_seconds": pooled_seconds,
        "speedup": serial_seconds / pooled_seconds if pooled_seconds else float("inf"),
        "identical_results": float(identical),
        "requests_served": float(pooled_engine.requests_served),
    }


# ---------------------------------------------------------------------------------
# reports + JSON
# ---------------------------------------------------------------------------------


def report(results: Dict[str, object]) -> str:
    fastpath = results["singleton_fastpath"]
    end_to_end = results["end_to_end"]
    scaling = results["worker_scaling"]
    engine = results["engine_pool"]
    keys = results["surface_keys"]

    lines = [
        "",
        "Ablation — parallel execution layer",
        "",
        (
            f"Singleton fast path ({fastpath['n_values']:,.0f} values, "
            f"{fastpath['components']:,.0f} components, single-threaded): "
            f"{fastpath['unbatched_seconds']:.2f}s per-component solver calls -> "
            f"{fastpath['batched_seconds']:.2f}s vectorised batch "
            f"({fastpath['speedup']:.1f}x, identical matches: "
            f"{bool(fastpath['identical_matches'])})"
        ),
        "",
        (
            f"End to end ({end_to_end['n_values']:,} values/side, "
            f"{end_to_end['components']:,} components, mixed workload): "
            f"{end_to_end['baseline_seconds']:.2f}s pre-PR sequential baseline -> "
            f"{end_to_end['parallel_seconds']:.2f}s at {end_to_end['workers']} "
            f"{end_to_end['backend']} workers ({end_to_end['speedup']:.1f}x, "
            f"identical matches: {bool(end_to_end['identical_matches'])})"
        ),
        "",
        "Component-size distribution of the end-to-end workload:",
        "",
        format_component_histogram(end_to_end["component_histogram"]),
        "",
        (
            f"Worker scaling, solver-bound ({scaling['n_values']:,} values in "
            f"{scaling['components']:,} components of ~{scaling['group_size']}x"
            f"{scaling['group_size']}; isolates what the pool adds on this hardware):"
        ),
        "",
        format_markdown_table(
            ["Backend", "Workers", "Seconds", "vs serial", "Identical"],
            [
                [
                    run["backend"],
                    run["workers"],
                    f"{run['seconds']:.2f}",
                    f"{run['speedup_vs_serial']:.2f}x",
                    str(bool(run["identical_matches"])),
                ]
                for run in scaling["runs"]
            ],
        ),
        "",
        (
            f"Engine pool: {engine['n_requests']:.0f} requests, "
            f"{engine['serial_seconds']:.2f}s serial -> {engine['pooled_seconds']:.2f}s "
            f"at {engine['workers']:.0f} workers ({engine['speedup']:.2f}x, "
            f"identical results: {bool(engine['identical_results'])})"
        ),
        "",
        (
            f"Surface-key generation ({keys['distinct_values']:,} distinct values, "
            f"fresh blocker per configuration):"
        ),
        "",
        format_markdown_table(
            ["Backend", "Workers", "Seconds", "vs serial", "Identical keys"],
            [
                [
                    run["backend"],
                    run["workers"],
                    f"{run['seconds']:.2f}",
                    f"{run['speedup_vs_serial']:.2f}x",
                    str(bool(run["identical_keys"])),
                ]
                for run in keys["runs"]
            ],
        ),
    ]
    return "\n".join(lines)


def run_all(
    n_values: int = 5000,
    group_size: int = 8,
    n_requests: int = 12,
    key_values: int = 30_000,
) -> Dict[str, object]:
    """Run every section at the given scale (the JSON payload).

    ``key_values`` stays well above the fan-out gate
    (:data:`~repro.matching.blocking.PARALLEL_KEYS_MIN_VALUES`) even in smoke
    runs, or the section would silently time the serial path twice.
    """
    return {
        "benchmark": "abl-parallel",
        "n_values": n_values,
        "singleton_fastpath": run_singleton_fastpath_benchmark(n_values=n_values),
        "end_to_end": run_end_to_end_benchmark(n_values=n_values),
        "worker_scaling": run_worker_scaling_benchmark(
            n_values=max(n_values // 2, 64), group_size=group_size
        ),
        "engine_pool": run_engine_pool_benchmark(n_requests=n_requests),
        "surface_keys": run_surface_key_scaling_benchmark(n_values=key_values),
    }


def write_json(results: Dict[str, object], path: str = DEFAULT_OUTPUT) -> Path:
    """Persist the benchmark payload (the CI artifact)."""
    output = Path(path)
    output.write_text(json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")
    return output


# ---------------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------------


def test_singleton_fastpath(benchmark):
    fastpath = benchmark.pedantic(
        run_singleton_fastpath_benchmark, kwargs={"n_values": 5000}, rounds=1, iterations=1
    )
    assert fastpath["identical_matches"] == 1.0
    # The vectorised batch must beat per-component solver calls outright.
    assert fastpath["speedup"] >= 2.0


def test_end_to_end_speedup(benchmark):
    end_to_end = benchmark.pedantic(
        run_end_to_end_benchmark, kwargs={"n_values": 5000}, rounds=1, iterations=1
    )
    assert end_to_end["identical_matches"]
    # The PR's headline claim on the many-component workload.
    assert end_to_end["speedup"] >= 2.0


def test_worker_scaling_determinism(benchmark):
    scaling = benchmark.pedantic(
        run_worker_scaling_benchmark,
        kwargs={"n_values": 2000, "workers": (1, 2, 4), "backends": ("thread", "process")},
        rounds=1,
        iterations=1,
    )
    assert all(run["identical_matches"] for run in scaling["runs"])


def test_surface_key_scaling(benchmark):
    keys = benchmark.pedantic(
        run_surface_key_scaling_benchmark,
        kwargs={"n_values": 4000, "workers": (2,)},
        rounds=1,
        iterations=1,
    )
    # Determinism is the claim; speedup is hardware-honest (see module doc).
    assert all(run["identical_keys"] for run in keys["runs"])
    assert len(keys["runs"]) == 2


def test_engine_pool(benchmark):
    engine = benchmark.pedantic(
        run_engine_pool_benchmark, kwargs={"n_requests": 6}, rounds=1, iterations=1
    )
    assert engine["identical_results"] == 1.0
    assert engine["requests_served"] == 6.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-friendly run (hundreds of values)"
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the JSON payload"
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        payload = run_all(n_values=400, group_size=6, n_requests=4, key_values=6000)
    else:
        payload = run_all()
    print(report(payload))
    destination = write_json(payload, arguments.output)
    print(f"\nwrote {destination}")
