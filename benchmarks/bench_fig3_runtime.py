"""Experiment ``fig3`` — Figure 3 of the paper.

Runtime of regular Full Disjunction (ALITE) vs. Fuzzy Full Disjunction over
the IMDB benchmark as the number of input tuples grows.  The paper sweeps 5K
to 30K input tuples and shows the two curves almost overlap: the Match Values
step adds no significant overhead to the Full Disjunction itself.

By default the sweep uses reduced sizes so the benchmark finishes in minutes;
set ``REPRO_BENCH_FULL=1`` for the paper's 5K–30K sweep (slow: Full
Disjunction cost grows super-linearly, which is exactly the behaviour the
paper's Figure 3 exhibits with runtimes in the thousands of seconds).

Run with ``pytest benchmarks/bench_fig3_runtime.py --benchmark-only -s`` or
``python benchmarks/bench_fig3_runtime.py``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core import FuzzyFDConfig
from repro.datasets import ImdbBenchmark
from repro.evaluation.reporting import format_runtime_series
from repro.evaluation.runtime import RuntimePoint, overhead_ratio, runtime_sweep

#: Reduced default sweep (total input tuples) and the paper's sweep.
DEFAULT_SIZES = (500, 1000, 1500, 2000)
PAPER_SIZES = (5_000, 10_000, 15_000, 20_000, 25_000, 30_000)


def run_runtime_sweep(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 13) -> List[RuntimePoint]:
    """Measure regular-FD and Fuzzy-FD runtime for each input size."""
    benchmark = ImdbBenchmark(seed=seed)
    return runtime_sweep(benchmark.tables, sizes=list(sizes), config=FuzzyFDConfig())


def report(points: List[RuntimePoint]) -> str:
    """Render the Figure 3 series plus the fuzzy/regular overhead ratio."""
    lines = ["", "Figure 3 — Runtime of regular FD (ALITE) vs Fuzzy FD (IMDB benchmark)", ""]
    lines.append(format_runtime_series(points))
    lines.append("")
    lines.append("Overhead ratio (fuzzy / regular):")
    for size, ratio in overhead_ratio(points).items():
        lines.append(f"  {size:>7d} input tuples: {ratio:.3f}x")
    return "\n".join(lines)


def test_figure3_runtime(benchmark, paper_scale):
    """pytest-benchmark entry point for the Figure 3 sweep."""
    sizes = PAPER_SIZES if paper_scale else DEFAULT_SIZES
    points = benchmark.pedantic(run_runtime_sweep, kwargs={"sizes": sizes}, rounds=1, iterations=1)
    print(report(points))
    ratios = overhead_ratio(points)
    # The paper's claim: the two curves overlap — Fuzzy FD adds no significant
    # overhead.  Allow generous slack at the smallest sizes where absolute
    # times are fractions of a second.
    largest = max(ratios)
    assert ratios[largest] < 1.5


if __name__ == "__main__":
    print(report(run_runtime_sweep()))
