"""Ablation ``abl-blocking`` — blocked vs exhaustive value matching.

The paper's Match Values component scores every value pair of a column pair
(quadratic in the number of distinct values).  The library additionally ships
a blocked matcher (:mod:`repro.matching.blocking`) that only scores candidate
pairs sharing a cheap surface or lexicon key.  This ablation measures, on the
Auto-Join benchmark, how much pairwise work blocking saves and how much
effectiveness it costs.

Run with ``pytest benchmarks/bench_ablation_blocking.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_blocking.py``.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import format_markdown_table, macro_average, score_integration_set
from repro.matching.blocking import BlockedValueMatcher
from repro.matching.clustering import ValueMatchSet


def _match_with_blocking(matcher: BlockedValueMatcher, integration_set) -> list:
    """Run pairwise blocked matching over an integration set's columns.

    The combined-column procedure of the paper is sequential; for the ablation
    we fold pairwise matches with a union-find, which yields the same disjoint
    sets for two-column sets and a close approximation for three-column sets.
    """
    from repro.matching.clustering import MatchSetBuilder

    columns = integration_set.column_values()
    builder = MatchSetBuilder()
    for column in columns:
        builder.add_column(column.column_id, column.values)
    candidate_pairs = 0
    full_pairs = 0
    for index in range(len(columns) - 1):
        left, right = columns[index], columns[index + 1]
        matches = matcher.match_exact_first(left.values, right.values)
        builder.add_matches(left.column_id, right.column_id, matches)
        if matcher.last_statistics is not None:
            candidate_pairs += matcher.last_statistics.candidate_pairs
            full_pairs += matcher.last_statistics.full_matrix_pairs
    return builder.sets(), candidate_pairs, full_pairs


def run_blocking_ablation(
    n_sets: int = 12,
    values_per_column: int = 80,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Compare exhaustive and blocked value matching (effectiveness and work)."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    embedder = MistralEmbedder()
    results: Dict[str, Dict[str, float]] = {}

    # Exhaustive (the paper's matcher).
    exhaustive = ValueMatcher(embedder, threshold=0.7)
    start = time.perf_counter()
    per_set = [
        score_integration_set(exhaustive.match_columns(s.column_values()), s.gold_sets)
        for s in integration_sets
    ]
    elapsed = time.perf_counter() - start
    average = macro_average(per_set)
    results["exhaustive"] = {
        "precision": average.precision,
        "recall": average.recall,
        "f1": average.f1,
        "seconds": elapsed,
        "scored_pair_fraction": 1.0,
    }

    # Blocked.
    blocked = BlockedValueMatcher(embedder, threshold=0.7)
    start = time.perf_counter()
    per_set = []
    scored = 0
    total = 0
    for integration_set in integration_sets:
        sets, candidate_pairs, full_pairs = _match_with_blocking(blocked, integration_set)
        scored += candidate_pairs
        total += full_pairs
        per_set.append(score_integration_set(sets, integration_set.gold_sets))
    elapsed = time.perf_counter() - start
    average = macro_average(per_set)
    results["blocked"] = {
        "precision": average.precision,
        "recall": average.recall,
        "f1": average.f1,
        "seconds": elapsed,
        "scored_pair_fraction": (scored / total) if total else 1.0,
    }
    return results


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [
            name,
            f"{s['precision']:.3f}",
            f"{s['recall']:.3f}",
            f"{s['f1']:.3f}",
            f"{s['seconds']:.2f}",
            f"{100 * s['scored_pair_fraction']:.1f}%",
        ]
        for name, s in results.items()
    ]
    return "\n".join(
        [
            "",
            "Ablation — blocked vs exhaustive value matching (Mistral, Auto-Join benchmark)",
            "",
            format_markdown_table(
                ["Matcher", "Precision", "Recall", "F1", "Seconds", "Scored pairs"], rows
            ),
        ]
    )


def test_blocking_ablation(benchmark):
    results = benchmark.pedantic(run_blocking_ablation, rounds=1, iterations=1)
    print(report(results))
    # Blocking must dramatically cut the scored pairs while staying close in F1.
    assert results["blocked"]["scored_pair_fraction"] < 0.7
    assert results["blocked"]["f1"] >= results["exhaustive"]["f1"] - 0.1


if __name__ == "__main__":
    print(report(run_blocking_ablation()))
