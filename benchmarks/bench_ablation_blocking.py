"""Ablation ``abl-blocking`` — blocked vs exhaustive value matching.

The paper's Match Values component scores every value pair of a column pair
(quadratic in the number of distinct values).  The library additionally ships
a blocked matcher (:mod:`repro.matching.blocking`) that only scores candidate
pairs sharing a cheap surface or lexicon key.  This ablation measures, on the
Auto-Join benchmark, how much pairwise work blocking saves and how much
effectiveness it costs; the *scale* section additionally compares the legacy
single-matrix prohibitive-cost solve against the component-wise engine on a
wide synthetic column pair (dense-vs-component speedup and peak candidate
matrix size).

Run with ``pytest benchmarks/bench_ablation_blocking.py --benchmark-only -s``
or ``python benchmarks/bench_ablation_blocking.py`` (``--smoke`` for a small,
CI-friendly run).
"""

from __future__ import annotations

import random
import string
import time
from typing import Dict, List, Tuple

from repro.core.value_matching import ValueMatcher
from repro.datasets import AutoJoinBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import format_markdown_table, macro_average, score_integration_set
from repro.matching.blocking import BlockedValueMatcher, ValueBlocker
from repro.matching.clustering import ValueMatchSet


def _match_with_blocking(matcher: BlockedValueMatcher, integration_set) -> list:
    """Run pairwise blocked matching over an integration set's columns.

    The combined-column procedure of the paper is sequential; for the ablation
    we fold pairwise matches with a union-find, which yields the same disjoint
    sets for two-column sets and a close approximation for three-column sets.
    """
    from repro.matching.clustering import MatchSetBuilder

    columns = integration_set.column_values()
    builder = MatchSetBuilder()
    for column in columns:
        builder.add_column(column.column_id, column.values)
    candidate_pairs = 0
    full_pairs = 0
    for index in range(len(columns) - 1):
        left, right = columns[index], columns[index + 1]
        matches = matcher.match_exact_first(left.values, right.values)
        builder.add_matches(left.column_id, right.column_id, matches)
        if matcher.last_statistics is not None:
            candidate_pairs += matcher.last_statistics.candidate_pairs
            full_pairs += matcher.last_statistics.full_matrix_pairs
    return builder.sets(), candidate_pairs, full_pairs


def run_blocking_ablation(
    n_sets: int = 12,
    values_per_column: int = 80,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Compare exhaustive and blocked value matching (effectiveness and work)."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    embedder = MistralEmbedder()
    results: Dict[str, Dict[str, float]] = {}

    # Exhaustive (the paper's matcher).
    exhaustive = ValueMatcher(embedder, threshold=0.7)
    start = time.perf_counter()
    per_set = [
        score_integration_set(exhaustive.match_columns(s.column_values()), s.gold_sets)
        for s in integration_sets
    ]
    elapsed = time.perf_counter() - start
    average = macro_average(per_set)
    results["exhaustive"] = {
        "precision": average.precision,
        "recall": average.recall,
        "f1": average.f1,
        "seconds": elapsed,
        "scored_pair_fraction": 1.0,
    }

    # Blocked.
    blocked = BlockedValueMatcher(embedder, threshold=0.7)
    start = time.perf_counter()
    per_set = []
    scored = 0
    total = 0
    for integration_set in integration_sets:
        sets, candidate_pairs, full_pairs = _match_with_blocking(blocked, integration_set)
        scored += candidate_pairs
        total += full_pairs
        per_set.append(score_integration_set(sets, integration_set.gold_sets))
    elapsed = time.perf_counter() - start
    average = macro_average(per_set)
    results["blocked"] = {
        "precision": average.precision,
        "recall": average.recall,
        "f1": average.f1,
        "seconds": elapsed,
        "scored_pair_fraction": (scored / total) if total else 1.0,
    }
    return results


def synthetic_scale_pair(n_values: int, seed: int = 7) -> Tuple[List[str], List[str]]:
    """A wide distinct-value column pair whose blocked graph stays sparse.

    Each left value is a random 12-character alphanumeric string; its right
    counterpart carries a single-character typo in the second half, so the
    pair always shares its 4-character token prefix (guaranteed candidates)
    while unrelated values almost never collide on a 5-gram.  The result is
    thousands of tiny connected components — the data-lake regime the
    component-wise engine targets.
    """
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase + string.digits
    left: List[str] = []
    right: List[str] = []
    seen = set()
    while len(left) < n_values:
        value = "".join(rng.choice(alphabet) for _ in range(12))
        if value in seen:
            continue
        seen.add(value)
        position = rng.randrange(6, 12)
        typo = alphabet[(alphabet.index(value[position]) + 1) % len(alphabet)]
        left.append(value)
        right.append(value[:position] + typo + value[position + 1 :])
    return left, right


def run_component_scale_benchmark(
    n_values: int = 5000, seed: int = 7, threshold: float = 0.7
) -> Dict[str, float]:
    """Dense-vs-component comparison on one wide synthetic column pair.

    Both paths see the same blocked candidate set and a pre-warmed embedding
    cache, so the measurement isolates the matching machinery: the legacy
    path allocates one ``left_used × right_used`` prohibitive-cost matrix and
    scores candidates pair by pair; the component engine solves one small
    assignment per connected component with batched scoring.
    """
    left, right = synthetic_scale_pair(n_values, seed=seed)
    embedder = MistralEmbedder()
    blocker = ValueBlocker(ngram_size=5, use_lexicon=False)
    matcher = BlockedValueMatcher(embedder, threshold=threshold, blocker=blocker)
    embedder.embed_many(left)
    embedder.embed_many(right)

    start = time.perf_counter()
    dense_matches = matcher.match_dense(left, right)
    dense_seconds = time.perf_counter() - start
    dense_stats = matcher.last_statistics

    start = time.perf_counter()
    component_matches = matcher.match(left, right)
    component_seconds = time.perf_counter() - start
    component_stats = matcher.last_statistics

    return {
        "n_values": float(n_values),
        "dense_seconds": dense_seconds,
        "component_seconds": component_seconds,
        "speedup": dense_seconds / component_seconds if component_seconds else float("inf"),
        "dense_peak_matrix": float(dense_stats.largest_component),
        "component_peak_matrix": float(component_stats.largest_component),
        "components": float(component_stats.components),
        "candidate_pairs": float(component_stats.candidate_pairs),
        "pairs_avoided": float(component_stats.pairs_avoided),
        "identical_matches": float(
            {match.as_tuple() for match in dense_matches}
            == {match.as_tuple() for match in component_matches}
        ),
        "accepted_matches": float(len(component_matches)),
    }


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [
            name,
            f"{s['precision']:.3f}",
            f"{s['recall']:.3f}",
            f"{s['f1']:.3f}",
            f"{s['seconds']:.2f}",
            f"{100 * s['scored_pair_fraction']:.1f}%",
        ]
        for name, s in results.items()
    ]
    return "\n".join(
        [
            "",
            "Ablation — blocked vs exhaustive value matching (Mistral, Auto-Join benchmark)",
            "",
            format_markdown_table(
                ["Matcher", "Precision", "Recall", "F1", "Seconds", "Scored pairs"], rows
            ),
        ]
    )


def scale_report(scale: Dict[str, float]) -> str:
    rows = [
        [
            "dense (legacy)",
            f"{scale['dense_seconds']:.2f}",
            f"{scale['dense_peak_matrix']:,.0f}",
            "1",
        ],
        [
            "component-wise",
            f"{scale['component_seconds']:.2f}",
            f"{scale['component_peak_matrix']:,.0f}",
            f"{scale['components']:,.0f}",
        ],
    ]
    return "\n".join(
        [
            "",
            (
                f"Scale — dense vs component-wise blocked matching "
                f"({scale['n_values']:,.0f} × {scale['n_values']:,.0f} distinct values, "
                f"{scale['candidate_pairs']:,.0f} candidate pairs)"
            ),
            "",
            format_markdown_table(
                ["Engine", "Seconds", "Peak matrix cells", "Components"], rows
            ),
            "",
            (
                f"speedup: {scale['speedup']:.1f}x · "
                f"pairs avoided: {scale['pairs_avoided']:,.0f} · "
                f"identical accepted matches: {bool(scale['identical_matches'])}"
            ),
        ]
    )


def test_blocking_ablation(benchmark):
    results = benchmark.pedantic(run_blocking_ablation, rounds=1, iterations=1)
    print(report(results))
    # Blocking must dramatically cut the scored pairs while staying close in F1.
    assert results["blocked"]["scored_pair_fraction"] < 0.7
    assert results["blocked"]["f1"] >= results["exhaustive"]["f1"] - 0.1


def test_component_engine_scale(benchmark):
    scale = benchmark.pedantic(
        run_component_scale_benchmark, kwargs={"n_values": 5000}, rounds=1, iterations=1
    )
    print(scale_report(scale))
    assert scale["identical_matches"] == 1.0
    assert scale["component_peak_matrix"] < scale["dense_peak_matrix"]
    assert scale["speedup"] >= 5.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-friendly run (fewer sets, narrower scale pair)",
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        print(report(run_blocking_ablation(n_sets=4, values_per_column=40)))
        print(scale_report(run_component_scale_benchmark(n_values=400)))
    else:
        print(report(run_blocking_ablation()))
        print(scale_report(run_component_scale_benchmark()))
