"""Benchmark ``bench-service`` — the serving layer under steady-state load.

The service PR put a request/response boundary over one warm engine
(:class:`~repro.service.IntegrationService`): admission control, per-request
deadlines, per-request traces.  This benchmark records what serving costs
and what engine warmth buys at the request level:

1. **Steady state**: ``n_requests`` integration requests pushed through the
   service at a fixed concurrency — requests/sec, p50/p99 latency and the
   mean queue wait (from the per-request traces, so the benchmark exercises
   the same observability the service ships).
2. **Warm vs cold store**: the same request stream against a cold artifact
   store and then from a fresh service over the published store.  The warm
   side must report **zero raw embed calls across every trace** and serve
   more requests per second.
3. **Admission under burst**: a burst twice the admission capacity at
   ``max_pending=2`` — every rejection must be typed ``ServiceOverloaded``
   and the slowest rejection must come back in well under 50 ms.

Results land in ``BENCH_service.json`` (CI uploads it as an artifact).  Run
with ``python benchmarks/bench_service.py`` (``--smoke`` for a small CI
run, ``--output PATH`` to choose the JSON location).
"""

from __future__ import annotations

import asyncio
import json
import random
import string
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core import FuzzyFDConfig
from repro.service import IntegrationService
from repro.table import Table

DEFAULT_OUTPUT = "BENCH_service.json"


# ---------------------------------------------------------------------------------
# synthetic request stream
# ---------------------------------------------------------------------------------


def request_workload(
    n_requests: int, n_values: int, distinct: int = 4, seed: int = 7
) -> List[List[Table]]:
    """``n_requests`` integration requests cycling over ``distinct`` table sets.

    Recurring tables are the serving-layer premise (data-lake users re-ask
    about the same tables), so the stream repeats a small pool of distinct
    requests — the warm embedding cache sees every set after one cycle.
    """
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase

    def one_request(request_seed: int) -> List[Table]:
        local = random.Random(request_seed)
        cities = []
        seen = set()
        while len(cities) < n_values:
            name = "".join(local.choice(alphabet) for _ in range(9))
            if name not in seen:
                seen.add(name)
                cities.append(name)
        left = Table(
            "population",
            ["City", "Population"],
            [(city, str(1000 + row)) for row, city in enumerate(cities)],
        )
        right = Table(
            "transit",
            ["City", "Lines"],
            [(city[:-1] + ("z" if city[-1] != "z" else "q"), str(row))
             for row, city in enumerate(cities)],
        )
        return [left, right]

    pool = [one_request(rng.randrange(1 << 30)) for _ in range(distinct)]
    return [pool[index % distinct] for index in range(n_requests)]


async def _drive(
    service: IntegrationService, workload: List[List[Table]], concurrency: int
) -> Dict[str, float]:
    """Push the whole workload through the service; aggregate the traces."""
    start = time.perf_counter()
    responses = await asyncio.gather(
        *(service.integrate(tables) for tables in workload)
    )
    wall_seconds = time.perf_counter() - start
    traces = [r.trace for r in responses if r.status == "ok" and r.trace is not None]
    stats = service.stats()
    return {
        "requests": float(len(workload)),
        "served": float(stats.served),
        "wall_seconds": wall_seconds,
        "requests_per_second": len(workload) / wall_seconds if wall_seconds else 0.0,
        "latency_p50_seconds": stats.latency_p50_seconds,
        "latency_p99_seconds": stats.latency_p99_seconds,
        "mean_queue_wait_seconds": (
            sum(t.queue_wait_seconds for t in traces) / len(traces) if traces else 0.0
        ),
        "raw_embed_calls": sum(t.raw_embed_calls for t in traces),
        "concurrency": float(concurrency),
    }


# ---------------------------------------------------------------------------------
# section 1: steady state
# ---------------------------------------------------------------------------------


def run_steady_state(
    n_requests: int = 64,
    n_values: int = 150,
    concurrency: int = 4,
    store_dir: Optional[str] = None,
) -> Dict[str, float]:
    """Requests/sec, latency quantiles and queue wait at fixed concurrency."""
    workload = request_workload(n_requests, n_values)
    config = FuzzyFDConfig(
        blocking="auto",
        store_dir=store_dir,
        store_mode="readwrite" if store_dir else "off",
        service_max_concurrency=concurrency,
        service_max_pending=n_requests,  # no rejections in steady state
    )

    async def main() -> Dict[str, float]:
        async with IntegrationService(config) as service:
            return await _drive(service, workload, concurrency)

    return asyncio.run(main())


# ---------------------------------------------------------------------------------
# section 2: warm vs cold store
# ---------------------------------------------------------------------------------


def run_warm_vs_cold(
    n_requests: int = 32, n_values: int = 150, concurrency: int = 4
) -> Dict[str, object]:
    """The same stream against a cold store, then a fresh warm-start service."""
    with tempfile.TemporaryDirectory() as store_dir:
        cold = run_steady_state(
            n_requests=n_requests,
            n_values=n_values,
            concurrency=concurrency,
            store_dir=store_dir,
        )
        warm = run_steady_state(
            n_requests=n_requests,
            n_values=n_values,
            concurrency=concurrency,
            store_dir=store_dir,
        )
    return {
        "cold": cold,
        "warm": warm,
        "speedup": (
            warm["requests_per_second"] / cold["requests_per_second"]
            if cold["requests_per_second"]
            else float("inf")
        ),
        "warm_raw_embeds": warm["raw_embed_calls"],
    }


# ---------------------------------------------------------------------------------
# section 3: admission under burst
# ---------------------------------------------------------------------------------


def run_admission_burst(
    n_values: int = 150, concurrency: int = 2, max_pending: int = 2
) -> Dict[str, float]:
    """A burst at twice the admission capacity: typed rejections, fast."""
    capacity = concurrency + max_pending
    workload = request_workload(2 * capacity, n_values, distinct=1)
    config = FuzzyFDConfig(
        blocking="auto",
        service_max_concurrency=concurrency,
        service_max_pending=max_pending,
    )

    async def main() -> Dict[str, float]:
        async with IntegrationService(config) as service:
            rejection_seconds: List[float] = []

            async def one(tables: List[Table]):
                start = time.perf_counter()
                response = await service.integrate(tables)
                if response.status == "overloaded":
                    rejection_seconds.append(time.perf_counter() - start)
                return response

            responses = await asyncio.gather(*(one(t) for t in workload))
            stats = service.stats()
            statuses = {r.status for r in responses}
            return {
                "burst": float(len(workload)),
                "capacity": float(capacity),
                "served": float(stats.served),
                "rejected": float(stats.rejected),
                "max_rejection_seconds": max(rejection_seconds, default=0.0),
                "only_ok_or_overloaded": float(statuses <= {"ok", "overloaded"}),
                "accounted": float(
                    stats.served + stats.rejected + stats.deadline_exceeded
                    + stats.failed + stats.in_flight == stats.submitted
                ),
            }

    return asyncio.run(main())


# ---------------------------------------------------------------------------------
# reports + JSON
# ---------------------------------------------------------------------------------


def report(results: Dict[str, object]) -> str:
    steady = results["steady_state"]
    cycle = results["warm_vs_cold"]
    burst = results["admission_burst"]
    lines = [
        "",
        "Benchmark — integration service (steady-state serving)",
        "",
        (
            f"Steady state ({steady['requests']:,.0f} requests, "
            f"concurrency {steady['concurrency']:.0f}): "
            f"{steady['requests_per_second']:.1f} req/s, "
            f"p50 {steady['latency_p50_seconds'] * 1000:.0f} ms, "
            f"p99 {steady['latency_p99_seconds'] * 1000:.0f} ms, "
            f"mean queue wait {steady['mean_queue_wait_seconds'] * 1000:.0f} ms"
        ),
        "",
        (
            f"Warm vs cold store: {cycle['cold']['requests_per_second']:.1f} req/s cold "
            f"-> {cycle['warm']['requests_per_second']:.1f} req/s warm "
            f"({cycle['speedup']:.1f}x), warm raw embeds: "
            f"{cycle['warm_raw_embeds']:,.0f}"
        ),
        "",
        (
            f"Admission burst ({burst['burst']:.0f} requests into capacity "
            f"{burst['capacity']:.0f}): {burst['served']:.0f} served, "
            f"{burst['rejected']:.0f} rejected, slowest rejection "
            f"{burst['max_rejection_seconds'] * 1000:.1f} ms, all accounted: "
            f"{bool(burst['accounted'])}"
        ),
    ]
    return "\n".join(lines)


def run_all(
    n_requests: int = 64, n_values: int = 150, concurrency: int = 4
) -> Dict[str, object]:
    """Run every section at the given scale (the JSON payload)."""
    return {
        "benchmark": "bench-service",
        "steady_state": run_steady_state(
            n_requests=n_requests, n_values=n_values, concurrency=concurrency
        ),
        "warm_vs_cold": run_warm_vs_cold(
            n_requests=max(8, n_requests // 2), n_values=n_values, concurrency=concurrency
        ),
        "admission_burst": run_admission_burst(n_values=n_values),
    }


def write_json(results: Dict[str, object], path: str = DEFAULT_OUTPUT) -> Path:
    """Persist the benchmark payload (the CI artifact)."""
    output = Path(path)
    output.write_text(json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")
    return output


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-friendly run"
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the JSON payload"
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        payload = run_all(n_requests=16, n_values=60, concurrency=2)
    else:
        payload = run_all()
    print(report(payload))
    destination = write_json(payload, arguments.output)
    print(f"\nwrote {destination}")
