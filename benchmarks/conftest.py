"""Shared configuration for the benchmark harnesses.

Every harness runs at a reduced default scale so the whole suite finishes in a
few minutes on a laptop; set ``REPRO_BENCH_FULL=1`` to use the paper-scale
parameters (31×~150-value Auto-Join sets, IMDB sweeps of 5K–30K input tuples),
which takes considerably longer — the quadratic growth of Full Disjunction
runtime is precisely what Figure 3 reports.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """Whether the paper-scale parameters were requested via REPRO_BENCH_FULL."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """Fixture form of :func:`full_scale` for benchmark tests."""
    return full_scale()
