"""Tests for the streaming (lazy) Full Disjunction enumeration."""

from __future__ import annotations

import pytest

from repro.fd import AliteFullDisjunction, StreamingFullDisjunction, get_algorithm
from repro.table import Table


@pytest.fixture()
def tables():
    left = Table("L", ["k", "a"], [("1", "x"), ("2", "y"), ("3", "z")])
    right = Table("R", ["k", "b"], [("1", "p"), ("3", "q"), ("4", "r")])
    return [left, right]


class TestStreamingFullDisjunction:
    def test_registered(self):
        assert get_algorithm("streaming").name == "streaming"

    def test_eager_result_matches_alite(self, tables):
        streaming = StreamingFullDisjunction().integrate(tables).table
        alite = AliteFullDisjunction().integrate(tables).table
        assert streaming.same_rows(alite)

    def test_eager_result_matches_alite_on_figure1(self, covid_tables):
        streaming = StreamingFullDisjunction().integrate(covid_tables).table
        alite = AliteFullDisjunction().integrate(covid_tables).table
        assert streaming.same_rows(alite)

    def test_iterator_yields_every_tuple_exactly_once(self, tables):
        streaming = StreamingFullDisjunction()
        emitted = list(streaming.iter_tuples(tables))
        eager = streaming.integrate(tables).table
        assert len(emitted) == eager.num_rows
        assert {values for values, _ in emitted} == set(eager.rows)

    def test_iterator_carries_provenance(self, tables):
        emitted = list(StreamingFullDisjunction().iter_tuples(tables))
        all_sources = set()
        for _, sources in emitted:
            all_sources |= set(sources)
        assert all_sources == {"L:0", "L:1", "L:2", "R:0", "R:1", "R:2"}

    def test_preview_limits_output(self, tables):
        preview = StreamingFullDisjunction().preview(tables, limit=2)
        assert preview.num_rows == 2
        assert set(preview.columns) == {"k", "a", "b"}

    def test_preview_of_empty_input_raises(self):
        with pytest.raises(ValueError):
            StreamingFullDisjunction().preview([], limit=3)

    def test_iterator_on_empty_table_list_yields_nothing(self):
        assert list(StreamingFullDisjunction().iter_tuples([])) == []

    def test_largest_components_last_changes_order_not_content(self, tables):
        default_order = [values for values, _ in StreamingFullDisjunction().iter_tuples(tables)]
        sorted_order = [
            values
            for values, _ in StreamingFullDisjunction(largest_components_last=True).iter_tuples(tables)
        ]
        assert set(default_order) == set(sorted_order)

    def test_statistics_report_emitted_tuples(self, tables):
        result = StreamingFullDisjunction().integrate(tables)
        assert result.statistics["emitted_tuples"] == float(result.table.num_rows)
