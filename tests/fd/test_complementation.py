"""Tests for the complementation engine and component decomposition."""

from __future__ import annotations

import pytest

from repro.fd.complementation import (
    ComplementationEngine,
    _join_consistent_same_schema,
    _merge_same_schema,
    connected_components,
)
from repro.table import NULL, Table


class TestJoinConsistency:
    def test_agreeing_tuples_are_consistent(self):
        assert _join_consistent_same_schema(("a", NULL), ("a", "b"))

    def test_conflicting_tuples_are_not(self):
        assert not _join_consistent_same_schema(("a", "x"), ("a", "y"))

    def test_requires_at_least_one_shared_value(self):
        assert not _join_consistent_same_schema(("a", NULL), (NULL, "b"))

    def test_merge_prefers_non_null(self):
        assert _merge_same_schema(("a", NULL), (NULL, "b")) == ("a", "b")


class TestEngine:
    def test_closure_adds_merged_tuples(self):
        engine = ComplementationEngine()
        rows = [("1", "x", NULL), ("1", NULL, "y")]
        prov = [frozenset({"a"}), frozenset({"b"})]
        closed, closed_prov = engine.close(rows, prov)
        assert ("1", "x", "y") in closed
        merged_index = closed.index(("1", "x", "y"))
        assert closed_prov[merged_index] == frozenset({"a", "b"})

    def test_inputs_are_preserved(self):
        engine = ComplementationEngine()
        rows = [("1", "x", NULL), ("2", NULL, "y")]
        closed, _ = engine.close(rows, [frozenset({"a"}), frozenset({"b"})])
        assert set(rows) <= set(closed)

    def test_duplicates_collapse_and_merge_provenance(self):
        engine = ComplementationEngine()
        rows = [("1", "x"), ("1", "x")]
        closed, prov = engine.close(rows, [frozenset({"a"}), frozenset({"b"})])
        assert len(closed) == 1
        assert prov[0] == frozenset({"a", "b"})

    def test_transitive_chain_produces_full_tuple(self):
        engine = ComplementationEngine()
        rows = [
            ("k", "x", NULL, NULL),
            ("k", NULL, "y", NULL),
            ("k", NULL, NULL, "z"),
        ]
        closed, _ = engine.close(rows, [frozenset({str(i)}) for i in range(3)])
        assert ("k", "x", "y", "z") in closed

    def test_empty_input(self):
        assert ComplementationEngine().close([], []) == ([], [])

    def test_max_tuples_guard(self):
        engine = ComplementationEngine(max_tuples=2)
        rows = [("1", "a", NULL), ("1", NULL, "b"), ("1", "c", NULL)]
        with pytest.raises(RuntimeError):
            engine.close(rows, [frozenset({str(i)}) for i in range(3)])

    def test_statistics_recorded(self):
        statistics = {}
        engine = ComplementationEngine()
        engine.close(
            [("1", "x", NULL), ("1", NULL, "y")],
            [frozenset({"a"}), frozenset({"b"})],
            statistics,
        )
        assert statistics["complementation_merges"] >= 1
        assert statistics["complementation_tuples"] >= 3

    def test_close_table_wrapper(self):
        table = Table("t", ["k", "a", "b"], [("1", "x", NULL), ("1", NULL, "y")])
        closed = ComplementationEngine().close_table(table)
        assert closed.num_rows == 3


class TestConnectedComponents:
    def test_tuples_sharing_values_share_components(self):
        rows = [("1", "x"), ("1", "y"), ("2", "z")]
        components = connected_components(rows)
        assert sorted(map(sorted, components)) == [[0, 1], [2]]

    def test_nulls_do_not_connect(self):
        rows = [(NULL, "x"), (NULL, "y")]
        assert len(connected_components(rows)) == 2

    def test_transitive_connection(self):
        rows = [("1", "x"), ("1", "y"), ("y", "1")]
        # Row 2 shares no value *in the same column* with rows 0/1.
        components = connected_components(rows)
        assert sorted(map(sorted, components)) == [[0, 1], [2]]

    def test_every_row_appears_exactly_once(self):
        rows = [("a", "b"), ("c", "d"), ("a", "d")]
        components = connected_components(rows)
        flattened = sorted(row for component in components for row in component)
        assert flattened == [0, 1, 2]
