"""Tests for the Full Disjunction algorithms.

The key properties: every algorithm produces the same result (the naive
definitional fixpoint is the oracle), the result subsumes every input tuple,
no output tuple is subsumed by another, the operator is order-independent
(associativity, the motivation for FD over outer joins), and the paper's
Figure 1 result is reproduced exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fd import (
    AliteFullDisjunction,
    IncrementalFullDisjunction,
    NaiveFullDisjunction,
    OuterJoinSequence,
    PartitionedFullDisjunction,
    available_algorithms,
    get_algorithm,
)
from repro.table import NULL, Table, subsumes
from repro.table.operations import outer_union

ALL_ALGORITHMS = [
    NaiveFullDisjunction,
    AliteFullDisjunction,
    IncrementalFullDisjunction,
    PartitionedFullDisjunction,
]


@pytest.fixture()
def simple_tables():
    left = Table("L", ["k", "a"], [("1", "x"), ("2", "y"), ("3", "z")])
    middle = Table("M", ["k", "b"], [("1", "p"), ("2", "q"), ("4", "r")])
    right = Table("R", ["b", "c"], [("p", "!"), ("r", "?"), ("s", "*")])
    return [left, middle, right]


class TestRegistry:
    def test_all_registered(self):
        assert set(available_algorithms()) >= {"naive", "alite", "incremental", "partitioned"}

    def test_get_algorithm_by_name(self):
        assert get_algorithm("alite").name == "alite"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_algorithm("nope")


class TestPartitionedStatistics:
    def _disjoint_tables(self, n_components=10):
        left = Table("L", ["k", "a"], [(f"k{i}", f"a{i}") for i in range(n_components)])
        right = Table("R", ["k", "b"], [(f"k{i}", f"b{i}") for i in range(n_components)])
        return [left, right]

    def test_complementation_statistics_recorded(self):
        # Regression: the executor refactor must keep summing the closure
        # counters (the old parallel branch silently dropped them).
        result = PartitionedFullDisjunction().integrate(self._disjoint_tables())
        assert result.statistics["components"] == 10.0
        assert "complementation_comparisons" in result.statistics
        assert result.statistics["complementation_tuples"] >= 10.0

    def test_statistics_identical_serial_vs_parallel(self):
        tables = self._disjoint_tables()
        serial = PartitionedFullDisjunction(max_workers=1).integrate(tables)
        parallel = PartitionedFullDisjunction(max_workers=4).integrate(tables)
        assert parallel.table.same_rows(serial.table)
        for key, value in serial.statistics.items():
            if key.endswith("_seconds") or key.startswith("parallel"):
                continue
            assert parallel.statistics[key] == value

    def test_parallel_workers_recorded_when_pool_engages(self):
        result = PartitionedFullDisjunction(max_workers=4).integrate(self._disjoint_tables())
        assert result.statistics.get("parallel_workers") == 4.0


class TestBasicBehaviour:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_single_table_is_returned_unchanged(self, algorithm_cls):
        table = Table("t", ["a", "b"], [("1", "2"), ("3", "4")])
        result = algorithm_cls().integrate([table])
        assert result.table.same_rows(table)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_disjoint_schemas_concatenate(self, algorithm_cls):
        left = Table("l", ["a"], [("1",)])
        right = Table("r", ["b"], [("2",)])
        result = algorithm_cls().integrate([left, right])
        assert result.table.num_rows == 2

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_simple_join_case(self, algorithm_cls, simple_tables):
        result = algorithm_cls().integrate(simple_tables)
        rows = {tuple(row) for row in result.table.project(["k", "a", "b", "c"]).rows}
        assert ("1", "x", "p", "!") in rows
        # Tuple 3/z has no join partner but must be preserved.
        assert any(row[0] == "3" for row in rows)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_empty_table_in_set_is_tolerated(self, algorithm_cls):
        left = Table("l", ["a", "k"], [("1", "x")])
        empty = Table("e", ["k", "b"], [])
        result = algorithm_cls().integrate([left, empty])
        assert result.table.num_rows == 1

    def test_requires_at_least_one_table(self):
        with pytest.raises(ValueError):
            AliteFullDisjunction().integrate([])

    def test_result_metadata(self, simple_tables):
        result = AliteFullDisjunction().integrate(simple_tables)
        assert result.algorithm == "alite"
        assert result.input_tuple_count == 9
        assert result.output_tuple_count == result.table.num_rows
        assert result.elapsed_seconds >= 0.0
        assert result.statistics["outer_union_tuples"] == 9.0


class TestFullDisjunctionProperties:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_every_input_tuple_is_subsumed_by_some_output(self, algorithm_cls, simple_tables):
        result = algorithm_cls().integrate(simple_tables)
        union = outer_union(simple_tables)
        aligned = result.table.project(list(union.columns))
        for input_row in union.rows:
            assert any(subsumes(output_row, input_row) for output_row in aligned.rows)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_no_output_tuple_subsumed_by_another(self, algorithm_cls, simple_tables):
        result = algorithm_cls().integrate(simple_tables)
        rows = result.table.rows
        for i, left in enumerate(rows):
            for j, right in enumerate(rows):
                if i != j:
                    assert not subsumes(left, right)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_provenance_covers_all_inputs(self, algorithm_cls, simple_tables):
        result = algorithm_cls().integrate(simple_tables)
        covered = set()
        for sources in result.table.provenance:
            covered |= set(sources)
        expected = {
            f"{table.name}:{index}" for table in simple_tables for index in range(table.num_rows)
        }
        assert covered == expected

    @pytest.mark.parametrize("algorithm_cls", [AliteFullDisjunction, IncrementalFullDisjunction])
    def test_order_independence(self, algorithm_cls, simple_tables):
        forwards = algorithm_cls().integrate(simple_tables).table
        backwards = algorithm_cls().integrate(list(reversed(simple_tables))).table
        assert forwards.same_rows(backwards)


class TestAlgorithmsAgree:
    def _row_set(self, table, columns):
        return table.project(columns).rows_as_set()

    def test_all_algorithms_agree_on_fixture(self, simple_tables):
        reference = NaiveFullDisjunction().integrate(simple_tables).table
        columns = list(reference.columns)
        expected = self._row_set(reference, columns)
        for algorithm_cls in (AliteFullDisjunction, IncrementalFullDisjunction, PartitionedFullDisjunction):
            actual = algorithm_cls().integrate(simple_tables).table
            assert self._row_set(actual, columns) == expected

    def test_outer_join_sequence_agrees_on_chain_schema(self):
        # A chain schema (L-M-R) is γ-acyclic, where the all-orders outer join
        # characterisation coincides with Full Disjunction.
        left = Table("L", ["k", "a"], [("1", "x"), ("2", "y")])
        middle = Table("M", ["k", "b"], [("1", "p")])
        right = Table("R", ["b", "c"], [("p", "!")])
        reference = NaiveFullDisjunction().integrate([left, middle, right]).table
        sequence = OuterJoinSequence().integrate([left, middle, right]).table
        assert sequence.same_rows(reference)

    def test_outer_join_sequence_rejects_too_many_tables(self):
        tables = [Table(f"t{i}", [f"c{i}"], [(str(i),)]) for i in range(9)]
        with pytest.raises(ValueError):
            OuterJoinSequence(max_tables=8).integrate(tables)

    @given(
        left_rows=st.lists(
            st.tuples(st.sampled_from(["1", "2", "3"]), st.sampled_from(["x", "y"])), max_size=5
        ),
        middle_rows=st.lists(
            st.tuples(st.sampled_from(["1", "2", "4"]), st.sampled_from(["p", "q"])), max_size=5
        ),
        right_rows=st.lists(
            st.tuples(st.sampled_from(["p", "q", "r"]), st.sampled_from(["!", "?"])), max_size=5
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_alite_matches_naive_on_random_inputs(self, left_rows, middle_rows, right_rows):
        tables = [
            Table("L", ["k", "a"], list(dict.fromkeys(left_rows))),
            Table("M", ["k", "b"], list(dict.fromkeys(middle_rows))),
            Table("R", ["b", "c"], list(dict.fromkeys(right_rows))),
        ]
        reference = NaiveFullDisjunction().integrate(tables).table
        alite = AliteFullDisjunction().integrate(tables).table
        incremental = IncrementalFullDisjunction().integrate(tables).table
        columns = list(reference.columns)
        assert alite.project(columns).rows_as_set() == reference.rows_as_set()
        assert incremental.project(columns).rows_as_set() == reference.rows_as_set()


class TestPaperFigure1:
    def test_regular_fd_produces_nine_tuples(self, covid_tables):
        result = AliteFullDisjunction().integrate(covid_tables)
        assert result.table.num_rows == 9

    def test_berlin_typo_tuples_stay_separate(self, covid_tables):
        result = AliteFullDisjunction().integrate(covid_tables)
        cities = result.table.column("City")
        assert "Berlinn" in cities and "Berlin" in cities

    def test_boston_tuples_integrate_on_equal_values(self, covid_tables):
        result = AliteFullDisjunction().integrate(covid_tables)
        boston = next(row for row in result.table if row["City"] == "Boston")
        assert boston["VaxRate"] == "62%"
        assert boston["TotalCases"] == "263K"


class TestSafetyLimits:
    def test_max_tuples_limit_raises(self):
        left = Table("l", ["k", "a"], [("1", f"a{i}") for i in range(4)])
        right = Table("r", ["k", "b"], [("1", f"b{i}") for i in range(4)])
        with pytest.raises(RuntimeError):
            AliteFullDisjunction(max_tuples=5).integrate([left, right])

    def test_naive_round_limit_raises(self):
        left = Table("l", ["k", "a"], [("1", "x")])
        right = Table("r", ["k", "b"], [("1", "y")])
        with pytest.raises(RuntimeError):
            NaiveFullDisjunction(max_rounds=0).integrate([left, right])
