"""Shared pytest fixtures.

The fixtures here provide the paper's Figure 1 tables (the canonical running
example), small benchmark instances, and the default embedders, so individual
test modules stay focused on behaviour.
"""

from __future__ import annotations

import pytest

from repro.embeddings import ExactEmbedder, FastTextEmbedder, MistralEmbedder
from repro.table import Table


@pytest.fixture(scope="session")
def covid_tables():
    """The three COVID-19 tables of the paper's Figure 1 (T1, T2, T3)."""
    t1 = Table(
        "T1",
        ["City", "Country"],
        [
            ("Berlinn", "Germany"),
            ("Toronto", "Canada"),
            ("Barcelona", "Spain"),
            ("New Delhi", "India"),
        ],
    )
    t2 = Table(
        "T2",
        ["Country", "City", "VaxRate"],
        [
            ("CA", "Toronto", "83%"),
            ("US", "Boston", "62%"),
            ("DE", "Berlin", "63%"),
            ("ES", "Barcelona", "82%"),
        ],
    )
    t3 = Table(
        "T3",
        ["City", "TotalCases", "DeathRate"],
        [
            ("Berlin", "1.4M", "147"),
            ("barcelona", "2.68M", "275"),
            ("Boston", "263K", "335"),
        ],
    )
    return [t1, t2, t3]


@pytest.fixture(scope="session")
def mistral_embedder():
    """The default (paper) embedding model, shared across tests for its cache."""
    return MistralEmbedder()


@pytest.fixture(scope="session")
def fasttext_embedder():
    """The cheap surface-only embedder."""
    return FastTextEmbedder()


@pytest.fixture(scope="session")
def exact_embedder():
    """The equality-only embedder (regular-FD behaviour)."""
    return ExactEmbedder()


@pytest.fixture(scope="session")
def small_autojoin_sets():
    """A tiny Auto-Join style benchmark (3 sets) shared by several test modules."""
    from repro.datasets import AutoJoinBenchmark

    return AutoJoinBenchmark(n_sets=3, values_per_column=25, seed=11).generate()


@pytest.fixture(scope="session")
def small_em_set():
    """One small entity-matching integration set."""
    from repro.datasets import AliteEmBenchmark

    return AliteEmBenchmark(n_sets=1, entities_per_set=25, seed=5).generate()[0]
