"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.table import Table, read_csv, write_csv


@pytest.fixture()
def lake(tmp_path, covid_tables):
    """The Figure 1 tables written to CSV files in a temporary directory."""
    paths = []
    for table in covid_tables:
        paths.append(str(write_csv(table, tmp_path / f"{table.name}.csv")))
    return tmp_path, paths


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_integrate_defaults(self):
        args = build_parser().parse_args(["integrate", "somewhere.csv"])
        assert args.embedder == "mistral"
        assert args.threshold == 0.7
        assert not args.regular
        assert args.max_workers == 1
        assert args.parallel_backend == "thread"

    def test_workers_flag(self):
        args = build_parser().parse_args(
            ["integrate", "somewhere.csv", "--workers", "4", "--parallel-backend", "process"]
        )
        assert args.max_workers == 4
        assert args.parallel_backend == "process"
        assert {"max_workers", "parallel_backend"} <= args._explicit

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["integrate", "x.csv", "--parallel-backend", "gpu"])

    def test_semantic_blocking_flags(self):
        args = build_parser().parse_args(
            ["integrate", "x.csv", "--semantic-blocking", "auto", "--ann-top-k", "9"]
        )
        assert args.semantic_blocking == "auto"
        assert args.ann_top_k == 9
        assert {"semantic_blocking", "ann_top_k"} <= args._explicit

    def test_semantic_blocking_defaults_off(self):
        args = build_parser().parse_args(["integrate", "x.csv"])
        assert args.semantic_blocking == "off"
        assert args.ann_top_k == 5

    def test_invalid_semantic_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["integrate", "x.csv", "--semantic-blocking", "maybe"])

    def test_benchmark_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["benchmark", "unknown-experiment"])


class TestIntegrateCommand:
    def test_integrate_directory_to_csv(self, lake, tmp_path, capsys):
        directory, _ = lake
        output = tmp_path / "out" / "integrated.csv"
        exit_code = main(["integrate", str(directory), "--output", str(output)])
        assert exit_code == 0
        integrated = read_csv(output)
        assert integrated.num_rows == 5  # the paper's Fuzzy FD result
        captured = capsys.readouterr().out
        assert "5 output tuples" in captured

    def test_regular_flag_uses_equi_join(self, lake, tmp_path, capsys):
        directory, _ = lake
        output = tmp_path / "regular.csv"
        main(["integrate", str(directory), "--regular", "--output", str(output)])
        assert read_csv(output).num_rows == 9

    def test_prints_table_without_output(self, lake, capsys):
        _, paths = lake
        exit_code = main(["integrate", *paths, "--show-rewrites"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Berlin" in captured
        assert "->" in captured  # at least one rewrite shown

    def test_rejects_non_csv_input(self, tmp_path):
        bogus = tmp_path / "data.parquet"
        bogus.write_text("not a csv")
        with pytest.raises(SystemExit):
            main(["integrate", str(bogus)])

    def test_workers_flag_runs_parallel_integration(self, lake, tmp_path, capsys):
        directory, _ = lake
        output = tmp_path / "parallel.csv"
        exit_code = main(
            [
                "integrate",
                str(directory),
                "--workers",
                "2",
                "--blocking",
                "on",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        serial_output = tmp_path / "serial.csv"
        assert main(["integrate", str(directory), "--output", str(serial_output), "--blocking", "on"]) == 0
        assert read_csv(output).same_rows(read_csv(serial_output))

    def test_semantic_blocking_runs_end_to_end(self, lake, tmp_path, capsys):
        directory, _ = lake
        output = tmp_path / "semantic.csv"
        exit_code = main(
            [
                "integrate",
                str(directory),
                "--output",
                str(output),
                "--blocking",
                "on",
                "--semantic-blocking",
                "on",
                "--ann-top-k",
                "3",
            ]
        )
        assert exit_code == 0
        integrated = read_csv(output)
        assert integrated.num_rows > 0
        assert "wrote" in capsys.readouterr().out

    def test_semantic_on_without_blocking_fails_cleanly(self, lake, capsys):
        _, paths = lake
        with pytest.raises(SystemExit) as excinfo:
            main(["integrate", *paths, "--semantic-blocking", "on"])
        assert "blocking" in str(excinfo.value)


class TestConfigFlags:
    def test_preset_runs(self, lake, capsys):
        _, paths = lake
        exit_code = main(["integrate", *paths, "--preset", "fast"])
        assert exit_code == 0
        assert "output tuples" in capsys.readouterr().out

    def test_unknown_preset_lists_names(self, lake, capsys):
        _, paths = lake
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--preset", "turbo"])
        captured = capsys.readouterr().err
        assert "paper" in captured and "fast" in captured and "scale" in captured

    def test_config_json_is_loaded(self, lake, tmp_path, capsys):
        _, paths = lake
        config_path = tmp_path / "config.json"
        config_path.write_text('{"embedder": "fasttext", "threshold": 0.6}')
        exit_code = main(["integrate", *paths, "--config-json", str(config_path)])
        assert exit_code == 0
        assert "output tuples" in capsys.readouterr().out

    def test_config_json_with_bad_knob_fails_fast(self, lake, tmp_path):
        _, paths = lake
        config_path = tmp_path / "config.json"
        config_path.write_text('{"embedder": "gpt-17"}')
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--config-json", str(config_path)])

    def test_explicit_flag_overrides_preset(self, lake, capsys):
        _, paths = lake
        # Explicit flags beat the preset even when set to their parser default:
        # overriding the fast preset's fasttext/greedy knobs back to mistral
        # with no blocking must reproduce the paper's 5-tuple Figure 1 result.
        exit_code = main(["integrate", *paths, "--preset", "fast", "--embedder", "mistral",
                          "--blocking", "off"])
        assert exit_code == 0
        assert "5 output tuples" in capsys.readouterr().out

    def test_explicit_default_valued_flag_overrides_config_json(self, lake, tmp_path, capsys):
        _, paths = lake
        config_path = tmp_path / "config.json"
        config_path.write_text('{"embedder": "exact", "threshold": 0.05}')
        # 'exact' at θ=0.05 finds no fuzzy matches; explicitly restoring the
        # defaults must bring the Figure 1 rewrites back.
        exit_code = main(["integrate", *paths, "--config-json", str(config_path),
                          "--embedder", "mistral", "--threshold", "0.7"])
        assert exit_code == 0
        assert "5 output tuples" in capsys.readouterr().out

    def test_config_json_missing_file_fails_cleanly(self, lake, capsys):
        _, paths = lake
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--config-json", "no-such-confg.jsn"])

    def test_config_json_wrong_typed_knob_fails_cleanly(self, lake, tmp_path):
        _, paths = lake
        config_path = tmp_path / "config.json"
        config_path.write_text('{"threshold": "0.8"}')
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--config-json", str(config_path)])

    def test_preset_and_config_json_are_mutually_exclusive(self, lake, tmp_path, capsys):
        _, paths = lake
        config_path = tmp_path / "config.json"
        config_path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--preset", "fast", "--config-json", str(config_path)])

    def test_unknown_embedder_fails_with_registry_names(self, lake, capsys):
        _, paths = lake
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--embedder", "gpt-17"])
        captured = capsys.readouterr().err
        assert "unknown embedding model 'gpt-17'" in captured
        assert "mistral" in captured

    def test_unknown_fd_algorithm_fails_with_registry_names(self, lake, capsys):
        _, paths = lake
        with pytest.raises(SystemExit):
            main(["integrate", *paths, "--fd-algorithm", "quantum"])
        captured = capsys.readouterr().err
        assert "unknown full disjunction algorithm 'quantum'" in captured
        assert "alite" in captured


class TestMatchCommand:
    def test_match_two_columns(self, tmp_path, capsys):
        left = Table("countries_a", ["value"], [("Germany",), ("Canada",), ("Spain",)])
        right = Table("countries_b", ["value"], [("DE",), ("CA",), ("US",)])
        paths = [
            str(write_csv(left, tmp_path / "a.csv")),
            str(write_csv(right, tmp_path / "b.csv")),
        ]
        exit_code = main(["match", *paths, "--column", "value"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "'Germany'" in captured and "'DE'" in captured

    def test_match_requires_two_columns(self, tmp_path):
        only = Table("solo", ["value"], [("Berlin",)])
        path = str(write_csv(only, tmp_path / "solo.csv"))
        with pytest.raises(SystemExit):
            main(["match", path])


class TestBenchmarkCommand:
    def test_table1_small(self, capsys):
        exit_code = main(
            ["benchmark", "table1", "--sets", "2", "--values-per-column", "15"]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "mistral" in captured
        assert "F1-Score" in captured

    def test_fig3_small(self, capsys):
        exit_code = main(["benchmark", "fig3", "--sizes", "80"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Fuzzy FD" in captured
