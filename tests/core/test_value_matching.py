"""Tests for the Match Values component (Sec. 2.2) and representative policies."""

from __future__ import annotations

import pytest

from repro.core.representatives import available_policies, select_representative
from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.embeddings import ExactEmbedder, MistralEmbedder


@pytest.fixture(scope="module")
def matcher():
    return ValueMatcher(MistralEmbedder(), threshold=0.7)


class TestColumnValues:
    def test_deduplicates_preserving_order(self):
        column = ColumnValues("c", ["a", "b", "a"])
        assert column.values == ["a", "b"]

    def test_default_counts(self):
        column = ColumnValues("c", ["a", "b"])
        assert column.counts == {"a": 1, "b": 1}

    def test_explicit_counts_kept(self):
        column = ColumnValues("c", ["a"], counts={"a": 5})
        assert column.counts["a"] == 5

    def test_partial_counts_default_missing_values_to_one(self):
        # A partially populated counts dict must not leave the uncounted
        # values weightless in frequency-based representative selection.
        column = ColumnValues("c", ["a", "b", "c"], counts={"b": 3})
        assert column.counts == {"a": 1, "b": 3, "c": 1}

    def test_caller_counts_dict_not_mutated(self):
        counts = {"b": 3}
        ColumnValues("c", ["a", "b"], counts=counts)
        assert counts == {"b": 3}


class TestRepresentativePolicies:
    MEMBERS = [("c1", "Berlinn"), ("c2", "Berlin"), ("c3", "Berlin")]
    FREQUENCIES = {"Berlinn": 1, "Berlin": 2}
    ORDER = {"c1": 0, "c2": 1, "c3": 2}

    def test_frequency_policy_matches_paper_example(self):
        representative = select_representative(
            self.MEMBERS, self.FREQUENCIES, self.ORDER, policy="frequency"
        )
        assert representative == "Berlin"

    def test_frequency_tie_prefers_first_column(self):
        members = [("c1", "Toronto"), ("c2", "Torontoo")]
        representative = select_representative(
            members, {"Toronto": 1, "Torontoo": 1}, self.ORDER, policy="frequency"
        )
        assert representative == "Toronto"

    def test_first_column_policy(self):
        representative = select_representative(
            self.MEMBERS, self.FREQUENCIES, self.ORDER, policy="first_column"
        )
        assert representative == "Berlinn"

    def test_longest_and_shortest(self):
        members = [("c1", "US"), ("c2", "United States")]
        assert select_representative(members, {}, self.ORDER, policy="longest") == "United States"
        assert select_representative(members, {}, self.ORDER, policy="shortest") == "US"

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            select_representative(self.MEMBERS, {}, {}, policy="magic")

    def test_empty_members_raises(self):
        with pytest.raises(ValueError):
            select_representative([], {}, {})

    def test_available_policies(self):
        assert set(available_policies()) == {"frequency", "first_column", "longest", "shortest"}


class TestMatchColumnsPaperExample:
    """Example 4 of the paper: the three City columns of Figure 1/2."""

    @pytest.fixture()
    def columns(self):
        return [
            ColumnValues(("T1", "City"), ["Berlinn", "Toronto", "Barcelona", "New Delhi"]),
            ColumnValues(("T2", "City"), ["Toronto", "Boston", "Berlin", "Barcelona"]),
            ColumnValues(("T3", "City"), ["Berlin", "barcelona", "Boston"]),
        ]

    def test_combined_column_matches_figure_2(self, matcher, columns):
        result = matcher.match_columns(columns)
        combined = set(result.combined_column())
        assert combined == {"Berlin", "Toronto", "Barcelona", "New Delhi", "Boston"}

    def test_berlin_set_contains_all_three_variants(self, matcher, columns):
        result = matcher.match_columns(columns)
        berlin_set = next(
            match_set for match_set in result.sets if match_set.representative == "Berlin"
        )
        assert set(berlin_set.members) == {
            (("T1", "City"), "Berlinn"),
            (("T2", "City"), "Berlin"),
            (("T3", "City"), "Berlin"),
        }

    def test_representative_is_majority_value(self, matcher, columns):
        result = matcher.match_columns(columns)
        assert result.representative_of(("T1", "City"), "Berlinn") == "Berlin"
        assert result.representative_of(("T3", "City"), "barcelona") == "Barcelona"

    def test_rewrite_map_only_contains_changes(self, matcher, columns):
        result = matcher.match_columns(columns)
        t1_map = result.rewrite_map(("T1", "City"))
        assert t1_map == {"Berlinn": "Berlin"}
        t2_map = result.rewrite_map(("T2", "City"))
        assert t2_map == {}

    def test_unmatched_value_stays_singleton(self, matcher, columns):
        result = matcher.match_columns(columns)
        new_delhi = next(
            match_set
            for match_set in result.sets
            if (("T1", "City"), "New Delhi") in match_set.members
        )
        assert len(new_delhi) == 1
        assert new_delhi.representative == "New Delhi"

    def test_statistics_recorded(self, matcher, columns):
        result = matcher.match_columns(columns)
        assert result.statistics["columns"] == 3.0
        assert result.statistics["assignments"] == 2.0
        assert result.statistics["match_sets"] == len(result.sets)


class TestMatchColumnsGeneral:
    def test_empty_input(self, matcher):
        result = matcher.match_columns([])
        assert result.sets == []

    def test_single_column_all_singletons(self, matcher):
        result = matcher.match_columns([ColumnValues("c", ["a", "b"])])
        assert len(result.sets) == 2
        assert all(len(match_set) == 1 for match_set in result.sets)

    def test_sets_are_disjoint(self, matcher):
        columns = [
            ColumnValues("c1", ["Germany", "Canada", "Spain"]),
            ColumnValues("c2", ["DE", "CA", "ES"]),
        ]
        result = matcher.match_columns(columns)
        seen = set()
        for match_set in result.sets:
            for member in match_set.members:
                assert member not in seen
                seen.add(member)

    def test_every_input_value_appears_exactly_once(self, matcher):
        columns = [
            ColumnValues("c1", ["Germany", "Canada"]),
            ColumnValues("c2", ["DE", "US"]),
        ]
        result = matcher.match_columns(columns)
        members = [member for match_set in result.sets for member in match_set.members]
        assert sorted(members) == sorted(
            [("c1", "Germany"), ("c1", "Canada"), ("c2", "DE"), ("c2", "US")]
        )

    def test_exact_embedder_reduces_to_equality_matching(self):
        matcher = ValueMatcher(ExactEmbedder(), threshold=0.7)
        columns = [
            ColumnValues("c1", ["Berlin", "Boston"]),
            ColumnValues("c2", ["Berlin", "barcelona"]),
        ]
        result = matcher.match_columns(columns)
        berlin_set = next(
            match_set for match_set in result.sets if ("c1", "Berlin") in match_set.members
        )
        assert ("c2", "Berlin") in berlin_set.members
        assert all(
            len(match_set) == 1
            for match_set in result.sets
            if ("c1", "Berlin") not in match_set.members
        )

    def test_frequency_counts_influence_representative(self, matcher):
        columns = [
            ColumnValues("c1", ["Berlinn"], counts={"Berlinn": 10}),
            ColumnValues("c2", ["Berlin"], counts={"Berlin": 1}),
        ]
        result = matcher.match_columns(columns)
        merged = next(match_set for match_set in result.sets if len(match_set) == 2)
        assert merged.representative == "Berlinn"

    def test_matched_pairs_enumeration(self, matcher):
        columns = [
            ColumnValues("c1", ["Germany"]),
            ColumnValues("c2", ["DE"]),
            ColumnValues("c3", ["Deutschland"]),
        ]
        result = matcher.match_columns(columns)
        pairs = result.matched_pairs()
        assert len(pairs) == 3


class TestBlockingRouting:
    def test_invalid_blocking_mode_rejected(self):
        with pytest.raises(ValueError):
            ValueMatcher(MistralEmbedder(), blocking="maybe")
        with pytest.raises(ValueError):
            ValueMatcher(MistralEmbedder(), blocking="auto", blocking_cutoff=0)

    def test_blocking_on_routes_through_blocked_matcher(self):
        matcher = ValueMatcher(MistralEmbedder(), threshold=0.7, blocking="on")
        columns = [
            ColumnValues("c1", ["Berlin", "Toronto"]),
            ColumnValues("c2", ["Berlinn", "Toronto"]),
        ]
        result = matcher.match_columns(columns)
        assert result.statistics["blocked_assignments"] == 1.0
        assert result.statistics["blocking_components"] >= 1.0
        assert result.statistics["blocking_pairs_avoided"] >= 0.0
        merged = [match_set for match_set in result.sets if len(match_set) == 2]
        assert len(merged) == 2

    def test_auto_keeps_small_pairs_exact(self):
        matcher = ValueMatcher(
            MistralEmbedder(), threshold=0.7, blocking="auto", blocking_cutoff=10_000
        )
        columns = [
            ColumnValues("c1", ["Berlin", "Toronto"]),
            ColumnValues("c2", ["Berlinn", "Toronto"]),
        ]
        result = matcher.match_columns(columns)
        assert result.statistics["blocked_assignments"] == 0.0

    def test_auto_engages_blocking_above_cutoff(self):
        matcher = ValueMatcher(
            MistralEmbedder(), threshold=0.7, blocking="auto", blocking_cutoff=4
        )
        columns = [
            ColumnValues("c1", ["Berlin", "Toronto", "Madrid"]),
            ColumnValues("c2", ["Berlinn", "Toronto", "Madrid"]),
        ]
        result = matcher.match_columns(columns)
        assert result.statistics["blocked_assignments"] == 1.0

    def test_blocking_off_omits_blocking_statistics(self, matcher):
        columns = [
            ColumnValues("c1", ["Berlin"]),
            ColumnValues("c2", ["Berlinn"]),
        ]
        result = matcher.match_columns(columns)
        assert "blocked_assignments" not in result.statistics

    def test_blocked_and_exhaustive_agree_on_small_columns(self):
        columns = [
            ColumnValues("c1", ["Berlin", "Toronto", "Barcelona"]),
            ColumnValues("c2", ["Berlinn", "Toronto", "barcelona"]),
        ]
        exhaustive = ValueMatcher(MistralEmbedder(), threshold=0.7)
        blocked = ValueMatcher(MistralEmbedder(), threshold=0.7, blocking="on")
        exhaustive_sets = {
            tuple(match_set.members) for match_set in exhaustive.match_columns(columns).sets
        }
        blocked_sets = {
            tuple(match_set.members) for match_set in blocked.match_columns(columns).sets
        }
        assert exhaustive_sets == blocked_sets
