"""Tests for the Fuzzy Full Disjunction pipeline and configuration."""

from __future__ import annotations

import pytest

from repro.core import (
    FuzzyFDConfig,
    FuzzyFullDisjunction,
    RegularFullDisjunction,
    integrate,
)
from repro.embeddings import ExactEmbedder, MistralEmbedder
from repro.fd import AliteFullDisjunction
from repro.matching.assignment import HungarianAssignment
from repro.schema_matching import ColumnAlignment
from repro.table import Table


class TestConfig:
    def test_defaults_match_paper(self):
        config = FuzzyFDConfig()
        assert config.embedder == "mistral"
        assert config.threshold == 0.7
        assert config.assignment_solver == "scipy"
        assert config.fd_algorithm == "alite"
        assert config.representative_policy == "frequency"

    def test_resolution_of_registry_names(self):
        config = FuzzyFDConfig()
        assert config.resolve_embedder().name == "mistral"
        assert config.resolve_solver().name == "scipy"
        assert config.resolve_fd_algorithm().name == "alite"

    def test_instances_pass_through(self):
        embedder = ExactEmbedder()
        solver = HungarianAssignment()
        algorithm = AliteFullDisjunction()
        config = FuzzyFDConfig(embedder=embedder, assignment_solver=solver, fd_algorithm=algorithm)
        assert config.resolve_embedder() is embedder
        assert config.resolve_solver() is solver
        assert config.resolve_fd_algorithm() is algorithm

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FuzzyFDConfig(threshold=0.0)

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            FuzzyFDConfig(alignment="guess")

    def test_invalid_blocking(self):
        with pytest.raises(ValueError):
            FuzzyFDConfig(blocking="maybe")
        with pytest.raises(ValueError):
            FuzzyFDConfig(blocking="auto", blocking_cutoff=-1)

    def test_blocking_defaults_off(self):
        config = FuzzyFDConfig()
        assert config.blocking == "off"
        assert config.blocking_cutoff > 0


class TestIntegrateConvenience:
    def test_fuzzy_and_regular_paths(self, covid_tables):
        fuzzy = integrate(covid_tables, fuzzy=True)
        regular = integrate(covid_tables, fuzzy=False)
        assert fuzzy.table.num_rows < regular.table.num_rows

    def test_requires_tables(self):
        with pytest.raises(ValueError):
            integrate([])

    def test_result_exposes_timings(self, covid_tables):
        result = integrate(covid_tables)
        assert set(result.timings) >= {"alignment_seconds", "full_disjunction_seconds"}
        assert result.total_seconds >= 0.0


class TestFuzzyFullDisjunction:
    def test_rewritten_tables_have_consistent_values(self, covid_tables):
        result = FuzzyFullDisjunction().integrate(covid_tables)
        rewritten_t1 = next(table for table in result.rewritten_tables if table.name == "T1")
        assert "Berlin" in rewritten_t1.column("City")
        assert "Berlinn" not in rewritten_t1.column("City")

    def test_value_matching_results_per_group(self, covid_tables):
        result = FuzzyFullDisjunction().integrate(covid_tables)
        assert set(result.value_matching) == {"City", "Country"}
        assert result.rewrites_applied() >= 4

    def test_explicit_alignment_is_respected(self):
        left = Table("l", ["Town"], [("Berlin",), ("Boston",)])
        right = Table("r", ["City", "Cases"], [("Berlinn", "10"), ("Madrid", "3")])
        alignment = ColumnAlignment.from_named_columns([left.rename({"Town": "City"}), right])
        result = FuzzyFullDisjunction().integrate(
            [left.rename({"Town": "City"}), right], alignment=alignment
        )
        berlin = next(row for row in result.table if row["Cases"] == "10")
        assert berlin["City"] in ("Berlin", "Berlinn")
        assert result.table.num_rows == 3

    def test_holistic_alignment_mode(self, covid_tables):
        renamed = [covid_tables[0].rename({"City": "Municipality"})] + covid_tables[1:]
        config = FuzzyFDConfig(alignment="holistic")
        result = FuzzyFullDisjunction(config).integrate(renamed)
        # The holistic matcher must have aligned Municipality with City for the
        # Berlin tuples to integrate.
        assert result.table.num_rows <= 7

    def test_exact_embedder_degenerates_to_regular_fd(self, covid_tables):
        fuzzy_exact = FuzzyFullDisjunction(FuzzyFDConfig(embedder=ExactEmbedder())).integrate(
            covid_tables
        )
        regular = RegularFullDisjunction().integrate(covid_tables)
        assert fuzzy_exact.table.same_rows(regular.table)

    def test_single_table_passthrough(self):
        table = Table("t", ["a", "b"], [("1", "2")])
        result = FuzzyFullDisjunction().integrate([table])
        assert result.table.num_rows == 1

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            FuzzyFullDisjunction().integrate([])
        with pytest.raises(ValueError):
            RegularFullDisjunction().integrate([])

    def test_hungarian_solver_gives_same_figure1_result(self, covid_tables):
        config = FuzzyFDConfig(assignment_solver="hungarian")
        result = FuzzyFullDisjunction(config).integrate(covid_tables)
        assert result.table.num_rows == 5

    def test_incremental_fd_algorithm_gives_same_figure1_result(self, covid_tables):
        config = FuzzyFDConfig(fd_algorithm="incremental")
        result = FuzzyFullDisjunction(config).integrate(covid_tables)
        assert result.table.num_rows == 5

    def test_blocking_on_gives_same_figure1_result(self, covid_tables):
        config = FuzzyFDConfig(blocking="on")
        result = FuzzyFullDisjunction(config).integrate(covid_tables)
        assert result.table.num_rows == 5
        assert "blocking_pairs_scored" in result.timings
        assert "blocking_pairs_avoided" in result.timings
        assert "blocking_largest_component" in result.timings
        # The work counters ride along in timings but must not be summed into
        # the wall-clock total.
        assert result.total_seconds == sum(
            value for key, value in result.timings.items() if key.endswith("_seconds")
        )

    def test_blocking_auto_engages_only_above_cutoff(self, covid_tables):
        config = FuzzyFDConfig(blocking="auto", blocking_cutoff=2)
        result = FuzzyFullDisjunction(config).integrate(covid_tables)
        assert result.table.num_rows == 5
        assert result.timings["blocking_pairs_scored"] > 0.0


class TestRegularFullDisjunction:
    def test_no_value_matching_performed(self, covid_tables):
        result = RegularFullDisjunction().integrate(covid_tables)
        assert result.value_matching == {}
        assert "value_matching_seconds" not in result.timings

    def test_output_matches_alite_directly(self, covid_tables):
        from repro.schema_matching import ColumnAlignment

        direct = AliteFullDisjunction().integrate(
            ColumnAlignment.from_named_columns(covid_tables).apply(covid_tables)
        )
        pipeline = RegularFullDisjunction().integrate(covid_tables)
        assert pipeline.table.same_rows(direct.table)
