"""Tests for the generic plugin registry behind every extension point."""

from __future__ import annotations

import pytest

from repro.registry import Registry, UnknownNameError


class TestRegistry:
    def test_register_direct_and_get(self):
        registry = Registry("widget")
        registry.register("a", int)
        assert registry.get("a") is int
        assert registry.create("a") == 0

    def test_register_as_decorator(self):
        registry = Registry("policy")

        @registry.register("upper")
        def upper(text):
            return text.upper()

        assert registry.get("upper") is upper
        assert registry.get("upper")("hi") == "HI"

    def test_names_sorted(self):
        registry = Registry("thing", {"b": 1, "a": 2, "c": 3})
        assert registry.names() == ["a", "b", "c"]
        assert list(registry) == ["a", "b", "c"]
        assert len(registry) == 3
        assert "b" in registry and "z" not in registry

    def test_unknown_name_error_lists_options(self):
        registry = Registry("embedding model", {"mistral": object, "bert": object})
        with pytest.raises(UnknownNameError) as excinfo:
            registry.get("mistal")
        message = str(excinfo.value)
        assert "unknown embedding model 'mistal'" in message
        assert "'bert'" in message and "'mistral'" in message

    def test_unknown_name_error_is_value_and_key_error(self):
        registry = Registry("solver")
        with pytest.raises(ValueError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_validate_returns_name_or_raises(self):
        registry = Registry("kind", {"x": 1})
        assert registry.validate("x") == "x"
        with pytest.raises(UnknownNameError):
            registry.validate("y")

    def test_create_forwards_kwargs(self):
        registry = Registry("maker")
        registry.register("dict", dict)
        assert registry.create("dict", a=1) == {"a": 1}

    def test_resolve_passes_instances_through(self):
        registry = Registry("number", {"zero": int})
        assert registry.resolve(7, int) == 7
        assert registry.resolve("zero", int) == 0

    def test_reregistering_replaces(self):
        registry = Registry("kind")
        registry.register("x", 1)
        registry.register("x", 2)
        assert registry.get("x") == 2

    def test_unregister(self):
        registry = Registry("kind", {"x": 1})
        registry.unregister("x")
        assert "x" not in registry
        registry.unregister("x")  # absent names are a no-op


class TestBuiltinRegistries:
    """Every extension point resolves through the one Registry mechanism."""

    def test_all_five_families_are_registries(self):
        from repro.core.config import PRESETS
        from repro.core.representatives import REPRESENTATIVE_POLICIES
        from repro.embeddings.registry import EMBEDDERS
        from repro.fd import FD_ALGORITHMS
        from repro.matching.assignment import ASSIGNMENT_SOLVERS
        from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES

        for registry in (
            EMBEDDERS,
            FD_ALGORITHMS,
            ASSIGNMENT_SOLVERS,
            REPRESENTATIVE_POLICIES,
            ALIGNMENT_STRATEGIES,
            PRESETS,
        ):
            assert isinstance(registry, Registry)
            assert registry.names()

    def test_alignment_strategies(self):
        from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES, available_strategies
        from repro.table import Table

        assert {"by_name", "header", "holistic"} <= set(available_strategies())
        tables = [
            Table("t1", ["City", "A"], [("Berlin", "1")]),
            Table("t2", ["City", "B"], [("Paris", "2")]),
        ]
        alignment = ALIGNMENT_STRATEGIES.get("by_name")(tables)
        assert {group.name for group in alignment} == {"City", "A", "B"}

    def test_custom_policy_plugs_into_value_matcher(self):
        from repro.core.representatives import REPRESENTATIVE_POLICIES, select_representative

        @REPRESENTATIVE_POLICIES.register("always-first-member")
        def first_member(members, frequencies, column_order):
            return members[0][1]

        try:
            chosen = select_representative(
                [("t1", "b"), ("t2", "a")], {}, {}, policy="always-first-member"
            )
            assert chosen == "b"
        finally:
            REPRESENTATIVE_POLICIES.unregister("always-first-member")
