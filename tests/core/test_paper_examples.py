"""End-to-end reproduction of the paper's running example (Figures 1 and 2).

These tests assert the exact tuple counts and provenance sets the paper shows:
regular Full Disjunction produces the nine tuples f1–f9, Fuzzy Full
Disjunction produces the five tuples f10–f14.
"""

from __future__ import annotations

import pytest

from repro.core import FuzzyFullDisjunction, RegularFullDisjunction
from repro.table import is_null


@pytest.fixture(scope="module")
def figure1_results(request):
    covid_tables = request.getfixturevalue("covid_tables")
    regular = RegularFullDisjunction().integrate(covid_tables)
    fuzzy = FuzzyFullDisjunction().integrate(covid_tables)
    return regular, fuzzy


class TestRegularFdFigure1:
    def test_nine_output_tuples(self, figure1_results):
        regular, _ = figure1_results
        assert regular.table.num_rows == 9

    def test_berlin_variants_not_integrated(self, figure1_results):
        regular, _ = figure1_results
        provenances = {frozenset(sources) for sources in regular.table.provenance}
        # t1 (Berlinn) stays alone; t7/t9 (Berlin) integrate with each other only.
        assert frozenset({"T1:0"}) in provenances
        assert frozenset({"T2:2", "T3:0"}) in provenances

    def test_country_codes_not_integrated(self, figure1_results):
        regular, _ = figure1_results
        provenances = {frozenset(sources) for sources in regular.table.provenance}
        # t2 (Toronto/Canada) and t5 (Toronto/CA) remain separate tuples.
        assert frozenset({"T1:1"}) in provenances
        assert frozenset({"T2:0"}) in provenances

    def test_boston_tuples_integrated_by_equality(self, figure1_results):
        regular, _ = figure1_results
        provenances = {frozenset(sources) for sources in regular.table.provenance}
        assert frozenset({"T2:1", "T3:2"}) in provenances


class TestFuzzyFdFigure1:
    EXPECTED_PROVENANCES = {
        frozenset({"T1:0", "T2:2", "T3:0"}),  # f10: Berlin
        frozenset({"T1:1", "T2:0"}),          # f11: Toronto
        frozenset({"T1:2", "T2:3", "T3:1"}),  # f12: Barcelona
        frozenset({"T1:3"}),                  # f13: New Delhi
        frozenset({"T2:1", "T3:2"}),          # f14: Boston
    }

    def test_five_output_tuples(self, figure1_results):
        _, fuzzy = figure1_results
        assert fuzzy.table.num_rows == 5

    def test_provenance_matches_paper(self, figure1_results):
        _, fuzzy = figure1_results
        provenances = {frozenset(sources) for sources in fuzzy.table.provenance}
        assert provenances == self.EXPECTED_PROVENANCES

    def test_berlin_tuple_is_complete(self, figure1_results):
        _, fuzzy = figure1_results
        berlin = next(row for row in fuzzy.table if row["City"] == "Berlin")
        assert berlin["Country"] == "Germany"
        assert berlin["VaxRate"] == "63%"
        assert berlin["TotalCases"] == "1.4M"
        assert berlin["DeathRate"] == "147"

    def test_new_delhi_remains_partial(self, figure1_results):
        _, fuzzy = figure1_results
        new_delhi = next(row for row in fuzzy.table if row["City"] == "New Delhi")
        assert is_null(new_delhi["VaxRate"])
        assert is_null(new_delhi["TotalCases"])

    def test_city_representatives_follow_majority_rule(self, figure1_results):
        _, fuzzy = figure1_results
        cities = set(fuzzy.table.column("City"))
        # "Berlin" (2 occurrences) wins over the typo "Berlinn" (1 occurrence);
        # "Barcelona" wins over "barcelona".
        assert "Berlin" in cities
        assert "Berlinn" not in cities
        assert "Barcelona" in cities
        assert "barcelona" not in cities

    def test_fewer_tuples_than_regular_fd(self, figure1_results):
        regular, fuzzy = figure1_results
        assert fuzzy.table.num_rows < regular.table.num_rows
        # Both results cover every input tuple.
        regular_sources = set().union(*regular.table.provenance)
        fuzzy_sources = set().union(*fuzzy.table.provenance)
        assert regular_sources == fuzzy_sources
