"""Tests for the long-lived IntegrationEngine: stages, overrides, warm cache."""

from __future__ import annotations

import pytest

from repro.core import (
    AlignmentStage,
    FuzzyFDConfig,
    FuzzyFullDisjunction,
    IntegrationEngine,
    MatchStage,
    integrate,
)
from repro.embeddings.llm import MistralEmbedder
from repro.table import Table


class CountingMistralEmbedder(MistralEmbedder):
    """Mistral simulator that counts raw (cache-missing) embedding calls."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.embed_calls = 0

    def _embed_text(self, text):
        self.embed_calls += 1
        return super()._embed_text(text)


class TestEngineConstruction:
    def test_accepts_config_preset_name_dict_or_none(self):
        assert IntegrationEngine().config == FuzzyFDConfig()
        assert IntegrationEngine("fast").config.embedder == "fasttext"
        assert IntegrationEngine({"threshold": 0.8}).config.threshold == 0.8
        config = FuzzyFDConfig(threshold=0.9)
        assert IntegrationEngine(config).config is config

    def test_unknown_preset_fails_fast(self):
        with pytest.raises(ValueError):
            IntegrationEngine("warp-speed")

    def test_components_resolved_once(self):
        engine = IntegrationEngine()
        assert engine.embedder is engine.embedder
        assert engine.embedder.name == "mistral"
        assert engine.solver.name == "scipy"
        assert engine.fd_algorithm.name == "alite"


class TestStages:
    def test_align_match_integrate_chain(self, covid_tables):
        engine = IntegrationEngine()
        aligned = engine.align(covid_tables)
        assert isinstance(aligned, AlignmentStage)
        assert "alignment_seconds" in aligned.timings
        assert {group.name for group in aligned.alignment} >= {"City", "Country"}

        matched = engine.match(aligned)
        assert isinstance(matched, MatchStage)
        assert set(matched.value_matching) == {"City", "Country"}
        assert matched.rewrites_applied() >= 4

        result = engine.integrate(matched)
        assert result.table.num_rows == 5  # the paper's Figure 1 outcome
        assert set(result.timings) >= {
            "alignment_seconds",
            "value_matching_seconds",
            "full_disjunction_seconds",
        }

    def test_staged_equals_one_call(self, covid_tables):
        engine = IntegrationEngine()
        staged = engine.integrate(engine.match(engine.align(covid_tables)))
        one_call = engine.integrate(covid_tables)
        assert staged.table.same_rows(one_call.table)

    def test_match_with_explicit_tables_needs_alignment(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.match(covid_tables)

    def test_align_requires_tables(self):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.align([])
        with pytest.raises(ValueError):
            engine.integrate([])

    def test_align_strategy_override(self, covid_tables):
        engine = IntegrationEngine()
        renamed = [covid_tables[0].rename({"City": "Municipality"})] + covid_tables[1:]
        by_name = engine.align(renamed)  # Municipality stays its own group
        holistic = engine.align(renamed, strategy="holistic")
        assert len(holistic.alignment) < len(by_name.alignment)


class TestPerRequestOverrides:
    def test_threshold_override_does_not_mutate_engine(self, covid_tables):
        engine = IntegrationEngine()
        engine.integrate(covid_tables, threshold=0.95)
        assert engine.config.threshold == 0.7

    def test_threshold_override_changes_matching(self, covid_tables):
        # θ is a distance threshold: pairs at distance ≥ θ are discarded, so a
        # *smaller* θ is stricter and accepts fewer fuzzy matches.
        engine = IntegrationEngine()
        loose = engine.integrate(covid_tables, threshold=0.7)
        strict = engine.integrate(covid_tables, threshold=0.05)
        assert strict.rewrites_applied() < loose.rewrites_applied()

    def test_fd_algorithm_override(self, covid_tables):
        engine = IntegrationEngine()
        result = engine.integrate(covid_tables, fd_algorithm="incremental")
        assert result.fd_result.algorithm == "incremental"
        assert engine.fd_algorithm.name == "alite"

    def test_invalid_override_name_fails_fast(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(TypeError):
            engine.integrate(covid_tables, thresold=0.8)

    def test_invalid_override_value_fails_fast(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.integrate(covid_tables, representative_policy="nope")

    def test_overrides_rejected_on_match_stage(self, covid_tables):
        # A MatchStage is already matched: silently ignoring a threshold
        # override would hand back stale matches, so it must raise.
        engine = IntegrationEngine()
        matched = engine.match(engine.align(covid_tables))
        with pytest.raises(TypeError):
            engine.integrate(matched, threshold=0.99)
        with pytest.raises(TypeError):
            engine.integrate(matched, alignment_strategy="holistic")

    def test_explicit_alignment_and_strategy_conflict(self, covid_tables):
        from repro.schema_matching import ColumnAlignment

        engine = IntegrationEngine()
        alignment = ColumnAlignment.from_named_columns(covid_tables)
        with pytest.raises(TypeError):
            engine.integrate(covid_tables, alignment=alignment, alignment_strategy="holistic")

    def test_regular_integration(self, covid_tables):
        engine = IntegrationEngine()
        result = engine.integrate(covid_tables, fuzzy=False)
        assert result.value_matching == {}
        assert "value_matching_seconds" not in result.timings

    def test_matching_overrides_rejected_with_fuzzy_false(self, covid_tables):
        # fuzzy=False skips the matching stage; silently ignoring its knobs
        # would make a threshold sweep over the regular baseline meaningless.
        engine = IntegrationEngine()
        with pytest.raises(TypeError, match="no effect with fuzzy=False"):
            engine.integrate(covid_tables, fuzzy=False, threshold=0.3)
        # Executor knobs still steer the FD stage, so they stay legal.
        result = engine.integrate(covid_tables, fuzzy=False, max_workers=2)
        assert result.value_matching == {}

    def test_match_stage_rejects_fuzzy_false_and_alignment(self, covid_tables):
        from repro.schema_matching import ColumnAlignment

        engine = IntegrationEngine()
        matched = engine.match(engine.align(covid_tables))
        with pytest.raises(TypeError, match="MatchStage"):
            engine.integrate(matched, fuzzy=False)
        with pytest.raises(TypeError, match="MatchStage"):
            engine.integrate(matched, alignment=ColumnAlignment.from_named_columns(covid_tables))

    def test_match_stage_still_accepts_executor_knobs(self, covid_tables):
        # Only the FD stage remains, and that is exactly what these steer.
        engine = IntegrationEngine()
        matched = engine.match(engine.align(covid_tables))
        pooled = engine.integrate(matched, max_workers=4, fd_algorithm="partitioned")
        plain = engine.integrate(engine.match(engine.align(covid_tables)))
        assert pooled.table.same_rows(plain.table)

    def test_alignment_stage_rejects_alignment_arguments(self, covid_tables):
        from repro.schema_matching import ColumnAlignment

        engine = IntegrationEngine()
        aligned = engine.align(covid_tables)
        with pytest.raises(TypeError, match="AlignmentStage"):
            engine.integrate(aligned, alignment_strategy="holistic")
        with pytest.raises(TypeError, match="AlignmentStage"):
            engine.integrate(aligned, alignment=ColumnAlignment.from_named_columns(covid_tables))

    def test_requests_served_counter(self, covid_tables):
        engine = IntegrationEngine()
        engine.integrate(covid_tables)
        engine.integrate(covid_tables, threshold=0.8)
        assert engine.requests_served == 2


class TestIntegrateMany:
    def test_results_identical_to_sequential_loop(self, covid_tables):
        engine = IntegrationEngine()
        sequential = [engine.integrate(covid_tables) for _ in range(4)]
        pooled = IntegrationEngine().integrate_many(
            [covid_tables] * 4, max_workers=4
        )
        assert len(pooled) == 4
        for serial_result, pooled_result in zip(sequential, pooled):
            assert serial_result.table.same_rows(pooled_result.table)

    def test_results_in_request_order(self, covid_tables):
        engine = IntegrationEngine()
        requests = [covid_tables[:2], covid_tables, covid_tables[1:]]
        results = engine.integrate_many(requests, max_workers=3)
        expected = [IntegrationEngine().integrate(request) for request in requests]
        for got, want in zip(results, expected):
            assert got.table.same_rows(want.table)

    def test_requests_served_counter_is_exact(self, covid_tables):
        engine = IntegrationEngine()
        engine.integrate_many([covid_tables] * 5, max_workers=4)
        assert engine.requests_served == 5

    def test_blocking_key_cap_none_override_disables_cap(self, covid_tables):
        # None is a meaningful value for this knob (cap disabled), so the
        # usual "None means not provided" filter must not swallow it.
        engine = IntegrationEngine()
        effective = engine._effective_config({"blocking_key_cap": None})
        assert effective.blocking_key_cap is None
        assert engine._effective_config({"threshold": None}) is engine.config

    def test_shared_overrides_apply_to_every_request(self, covid_tables):
        engine = IntegrationEngine()
        strict = engine.integrate_many([covid_tables] * 2, max_workers=2, threshold=0.05)
        loose = engine.integrate_many([covid_tables] * 2, max_workers=2, threshold=0.7)
        assert strict[0].rewrites_applied() < loose[0].rewrites_applied()

    def test_worker_default_comes_from_config(self, covid_tables):
        engine = IntegrationEngine(FuzzyFDConfig(max_workers=2))
        results = engine.integrate_many([covid_tables] * 2)
        assert len(results) == 2

    def test_invalid_worker_count_rejected(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.integrate_many([covid_tables], max_workers=0)

    def test_invalid_override_rejected(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(TypeError):
            engine.integrate_many([covid_tables], max_workers=2, thresold=0.5)

    def test_cache_warm_across_pooled_requests(self, covid_tables):
        embedder = CountingMistralEmbedder()
        engine = IntegrationEngine(FuzzyFDConfig(embedder=embedder))
        engine.integrate(covid_tables)
        calls_after_first = embedder.embed_calls
        engine.integrate_many([covid_tables] * 4, max_workers=4)
        assert embedder.embed_calls == calls_after_first


class TestWorkerPool:
    def test_integrate_many_reuses_one_pool_across_calls(self, covid_tables):
        # The satellite fix: no fresh ThreadPoolExecutor per call — repeated
        # batches draw from the same engine-owned executor.
        engine = IntegrationEngine()
        engine.integrate_many([covid_tables] * 2, max_workers=2)
        pool = engine.worker_pool()
        assert pool is not None
        engine.integrate_many([covid_tables] * 3, max_workers=2)
        assert engine.worker_pool() is pool
        engine.close()

    def test_pool_grows_for_wider_batches_and_stays(self, covid_tables):
        engine = IntegrationEngine()
        small = engine.worker_pool(2)
        grown = engine.worker_pool(4)
        assert grown is not small  # grew: more demand than threads
        assert engine.worker_pool(3) is grown  # never shrinks below demand
        engine.close()

    def test_close_drains_and_reuse_recreates(self, covid_tables):
        engine = IntegrationEngine()
        first = engine.worker_pool(2)
        engine.close()
        results = engine.integrate_many([covid_tables] * 2, max_workers=2)
        assert len(results) == 2
        assert engine.worker_pool() is not first
        engine.close()

    def test_context_manager_closes_the_pool(self, covid_tables):
        with IntegrationEngine() as engine:
            engine.integrate_many([covid_tables] * 2, max_workers=2)
            assert engine.worker_pool() is not None
        assert engine._pool is None


class TestParallelConfigKnobs:
    def test_max_workers_is_a_per_request_override(self, covid_tables):
        engine = IntegrationEngine()
        serial = engine.integrate(covid_tables)
        pooled = engine.integrate(
            covid_tables, max_workers=4, parallel_backend="thread", blocking="on"
        )
        assert serial.table.same_rows(pooled.table)
        assert engine.config.max_workers == 1  # engine config untouched

    def test_partitioned_fd_inherits_engine_executor(self):
        engine = IntegrationEngine(FuzzyFDConfig(fd_algorithm="partitioned", max_workers=3))
        assert engine.fd_algorithm.executor.max_workers == 3

    def test_fd_override_by_name_inherits_executor(self, covid_tables):
        engine = IntegrationEngine(FuzzyFDConfig(max_workers=2, parallel_backend="thread"))
        result = engine.integrate(covid_tables, fd_algorithm="partitioned")
        assert result.fd_result.algorithm == "partitioned"

    def test_request_executor_override_reaches_fd_stage(self):
        # 10 disjoint join keys -> 10 FD components, enough to engage a pool.
        left = Table("L", ["k", "a"], [(f"k{i}", f"a{i}") for i in range(10)])
        right = Table("R", ["k", "b"], [(f"k{i}", f"b{i}") for i in range(10)])
        engine = IntegrationEngine(FuzzyFDConfig(fd_algorithm="partitioned"))
        default = engine.integrate([left, right])
        assert "parallel_workers" not in default.fd_result.statistics
        pooled = engine.integrate([left, right], max_workers=4)
        assert pooled.fd_result.statistics.get("parallel_workers") == 4.0
        assert pooled.table.same_rows(default.table)
        # The shared engine instance was never mutated by the override.
        assert engine.fd_algorithm.executor.max_workers == 1


class TestWarmEmbeddingCache:
    def test_theta_sweep_embeds_each_value_once(self, covid_tables):
        """The engine's whole point: a θ-sweep performs zero new embeddings."""
        embedder = CountingMistralEmbedder()
        engine = IntegrationEngine(FuzzyFDConfig(embedder=embedder))

        engine.integrate(covid_tables, threshold=0.7)
        calls_after_first = embedder.embed_calls
        assert calls_after_first > 0

        for theta in (0.6, 0.8, 0.9):
            engine.integrate(covid_tables, threshold=theta)
        assert embedder.embed_calls == calls_after_first
        assert engine.embedding_cache.hits > 0

    def test_ann_indexing_reuses_cached_embeddings(self, covid_tables):
        """Semantic blocking never re-embeds: indexing reads the warm cache.

        Two invariants pin this down: no text is ever embedded twice within
        one request (raw calls == distinct cache entries), and a second
        request over the same tables — which rebuilds the ANN index — adds
        zero raw embedding calls.
        """
        embedder = CountingMistralEmbedder()
        engine = IntegrationEngine(
            FuzzyFDConfig(embedder=embedder, blocking="on", semantic_blocking="on")
        )

        engine.integrate(covid_tables)
        calls_after_first = embedder.embed_calls
        assert calls_after_first > 0
        # One raw call per cache entry: the ANN index and the scoring stage
        # shared every vector instead of computing it twice.
        assert calls_after_first == len(engine.embedding_cache)

        engine.integrate(covid_tables, threshold=0.8)
        assert embedder.embed_calls == calls_after_first

    def test_semantic_blocking_is_a_per_request_override(self, covid_tables):
        engine = IntegrationEngine(FuzzyFDConfig(blocking="on"))
        result = engine.integrate(
            covid_tables, semantic_blocking="on", ann_top_k=3
        )
        assert result.timings.get("blocking_ann_pairs_added", 0.0) >= 0.0
        # The engine's own config was not mutated by the override.
        assert engine.config.semantic_blocking == "off"

    def test_semantic_override_requires_blocking(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.integrate(covid_tables, semantic_blocking="on")

    def test_operator_classes_do_not_share_state(self, covid_tables):
        """One-shot operators stay independent (back-compat behaviour)."""
        first = FuzzyFullDisjunction()
        second = FuzzyFullDisjunction()
        assert first.engine.embedder is not second.engine.embedder

    def test_sweep_results_match_fresh_runs(self, covid_tables):
        """Cached embeddings must not change any result of the sweep."""
        engine = IntegrationEngine()
        for theta in (0.6, 0.7, 0.9):
            warm = engine.integrate(covid_tables, threshold=theta)
            fresh = integrate(covid_tables, config=FuzzyFDConfig(threshold=theta))
            assert warm.table.same_rows(fresh.table)
