"""Tests for the long-lived IntegrationEngine: stages, overrides, warm cache."""

from __future__ import annotations

import pytest

from repro.core import (
    AlignmentStage,
    FuzzyFDConfig,
    FuzzyFullDisjunction,
    IntegrationEngine,
    MatchStage,
    integrate,
)
from repro.embeddings.llm import MistralEmbedder
from repro.table import Table


class CountingMistralEmbedder(MistralEmbedder):
    """Mistral simulator that counts raw (cache-missing) embedding calls."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.embed_calls = 0

    def _embed_text(self, text):
        self.embed_calls += 1
        return super()._embed_text(text)


class TestEngineConstruction:
    def test_accepts_config_preset_name_dict_or_none(self):
        assert IntegrationEngine().config == FuzzyFDConfig()
        assert IntegrationEngine("fast").config.embedder == "fasttext"
        assert IntegrationEngine({"threshold": 0.8}).config.threshold == 0.8
        config = FuzzyFDConfig(threshold=0.9)
        assert IntegrationEngine(config).config is config

    def test_unknown_preset_fails_fast(self):
        with pytest.raises(ValueError):
            IntegrationEngine("warp-speed")

    def test_components_resolved_once(self):
        engine = IntegrationEngine()
        assert engine.embedder is engine.embedder
        assert engine.embedder.name == "mistral"
        assert engine.solver.name == "scipy"
        assert engine.fd_algorithm.name == "alite"


class TestStages:
    def test_align_match_integrate_chain(self, covid_tables):
        engine = IntegrationEngine()
        aligned = engine.align(covid_tables)
        assert isinstance(aligned, AlignmentStage)
        assert "alignment_seconds" in aligned.timings
        assert {group.name for group in aligned.alignment} >= {"City", "Country"}

        matched = engine.match(aligned)
        assert isinstance(matched, MatchStage)
        assert set(matched.value_matching) == {"City", "Country"}
        assert matched.rewrites_applied() >= 4

        result = engine.integrate(matched)
        assert result.table.num_rows == 5  # the paper's Figure 1 outcome
        assert set(result.timings) >= {
            "alignment_seconds",
            "value_matching_seconds",
            "full_disjunction_seconds",
        }

    def test_staged_equals_one_call(self, covid_tables):
        engine = IntegrationEngine()
        staged = engine.integrate(engine.match(engine.align(covid_tables)))
        one_call = engine.integrate(covid_tables)
        assert staged.table.same_rows(one_call.table)

    def test_match_with_explicit_tables_needs_alignment(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.match(covid_tables)

    def test_align_requires_tables(self):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.align([])
        with pytest.raises(ValueError):
            engine.integrate([])

    def test_align_strategy_override(self, covid_tables):
        engine = IntegrationEngine()
        renamed = [covid_tables[0].rename({"City": "Municipality"})] + covid_tables[1:]
        by_name = engine.align(renamed)  # Municipality stays its own group
        holistic = engine.align(renamed, strategy="holistic")
        assert len(holistic.alignment) < len(by_name.alignment)


class TestPerRequestOverrides:
    def test_threshold_override_does_not_mutate_engine(self, covid_tables):
        engine = IntegrationEngine()
        engine.integrate(covid_tables, threshold=0.95)
        assert engine.config.threshold == 0.7

    def test_threshold_override_changes_matching(self, covid_tables):
        # θ is a distance threshold: pairs at distance ≥ θ are discarded, so a
        # *smaller* θ is stricter and accepts fewer fuzzy matches.
        engine = IntegrationEngine()
        loose = engine.integrate(covid_tables, threshold=0.7)
        strict = engine.integrate(covid_tables, threshold=0.05)
        assert strict.rewrites_applied() < loose.rewrites_applied()

    def test_fd_algorithm_override(self, covid_tables):
        engine = IntegrationEngine()
        result = engine.integrate(covid_tables, fd_algorithm="incremental")
        assert result.fd_result.algorithm == "incremental"
        assert engine.fd_algorithm.name == "alite"

    def test_invalid_override_name_fails_fast(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(TypeError):
            engine.integrate(covid_tables, thresold=0.8)

    def test_invalid_override_value_fails_fast(self, covid_tables):
        engine = IntegrationEngine()
        with pytest.raises(ValueError):
            engine.integrate(covid_tables, representative_policy="nope")

    def test_overrides_rejected_on_match_stage(self, covid_tables):
        # A MatchStage is already matched: silently ignoring a threshold
        # override would hand back stale matches, so it must raise.
        engine = IntegrationEngine()
        matched = engine.match(engine.align(covid_tables))
        with pytest.raises(TypeError):
            engine.integrate(matched, threshold=0.99)
        with pytest.raises(TypeError):
            engine.integrate(matched, alignment_strategy="holistic")

    def test_explicit_alignment_and_strategy_conflict(self, covid_tables):
        from repro.schema_matching import ColumnAlignment

        engine = IntegrationEngine()
        alignment = ColumnAlignment.from_named_columns(covid_tables)
        with pytest.raises(TypeError):
            engine.integrate(covid_tables, alignment=alignment, alignment_strategy="holistic")

    def test_regular_integration(self, covid_tables):
        engine = IntegrationEngine()
        result = engine.integrate(covid_tables, fuzzy=False)
        assert result.value_matching == {}
        assert "value_matching_seconds" not in result.timings

    def test_requests_served_counter(self, covid_tables):
        engine = IntegrationEngine()
        engine.integrate(covid_tables)
        engine.integrate(covid_tables, threshold=0.8)
        assert engine.requests_served == 2


class TestWarmEmbeddingCache:
    def test_theta_sweep_embeds_each_value_once(self, covid_tables):
        """The engine's whole point: a θ-sweep performs zero new embeddings."""
        embedder = CountingMistralEmbedder()
        engine = IntegrationEngine(FuzzyFDConfig(embedder=embedder))

        engine.integrate(covid_tables, threshold=0.7)
        calls_after_first = embedder.embed_calls
        assert calls_after_first > 0

        for theta in (0.6, 0.8, 0.9):
            engine.integrate(covid_tables, threshold=theta)
        assert embedder.embed_calls == calls_after_first
        assert engine.embedding_cache.hits > 0

    def test_operator_classes_do_not_share_state(self, covid_tables):
        """One-shot operators stay independent (back-compat behaviour)."""
        first = FuzzyFullDisjunction()
        second = FuzzyFullDisjunction()
        assert first.engine.embedder is not second.engine.embedder

    def test_sweep_results_match_fresh_runs(self, covid_tables):
        """Cached embeddings must not change any result of the sweep."""
        engine = IntegrationEngine()
        for theta in (0.6, 0.7, 0.9):
            warm = engine.integrate(covid_tables, threshold=theta)
            fresh = integrate(covid_tables, config=FuzzyFDConfig(threshold=theta))
            assert warm.table.same_rows(fresh.table)
