"""Tests for config serialisation, presets, and eager knob validation."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import FuzzyFDConfig, available_presets
from repro.embeddings import ExactEmbedder
from repro.fd import AliteFullDisjunction
from repro.matching.assignment import HungarianAssignment


class TestEagerValidation:
    """Every registry-resolved knob fails at construction, not at run time."""

    def test_unknown_embedder(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(embedder="gpt-17")
        assert "mistral" in str(excinfo.value)

    def test_unknown_solver(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(assignment_solver="magic")
        assert "scipy" in str(excinfo.value)

    def test_unknown_fd_algorithm(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(fd_algorithm="quantum")
        assert "alite" in str(excinfo.value)

    def test_unknown_representative_policy_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(representative_policy="freq")
        message = str(excinfo.value)
        assert "frequency" in message and "longest" in message

    def test_unknown_alignment_strategy(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(alignment="guess")
        assert "by_name" in str(excinfo.value)

    def test_replace_revalidates(self):
        config = FuzzyFDConfig()
        with pytest.raises(ValueError):
            config.replace(representative_policy="nope")
        assert config.replace(threshold=0.8).threshold == 0.8
        # the original is untouched
        assert config.threshold == 0.7

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            FuzzyFDConfig(max_workers=0)

    def test_blocking_key_cap_validated_and_serialised(self):
        with pytest.raises(ValueError, match="blocking_key_cap"):
            FuzzyFDConfig(blocking_key_cap=0)
        config = FuzzyFDConfig(blocking_key_cap=None)  # cap disabled
        assert FuzzyFDConfig.from_dict(config.to_dict()) == config
        assert FuzzyFDConfig().blocking_key_cap == 1000

    def test_invalid_parallel_backend_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig(parallel_backend="gpu")
        assert "thread" in str(excinfo.value)

    def test_semantic_blocking_mode_validated(self):
        with pytest.raises(ValueError, match="semantic_blocking"):
            FuzzyFDConfig(semantic_blocking="maybe")

    def test_semantic_on_requires_blocking(self):
        with pytest.raises(ValueError, match="semantic_blocking"):
            FuzzyFDConfig(semantic_blocking="on")  # blocking defaults to "off"
        # auto is a safe no-op without blocking, and on composes with on/auto.
        FuzzyFDConfig(semantic_blocking="auto")
        FuzzyFDConfig(blocking="auto", semantic_blocking="on")

    def test_ann_knobs_validated(self):
        with pytest.raises(ValueError, match="ann_tables"):
            FuzzyFDConfig(ann_tables=0)
        with pytest.raises(ValueError, match="ann_bits"):
            FuzzyFDConfig(ann_bits=31)
        with pytest.raises(ValueError, match="ann_top_k"):
            FuzzyFDConfig(ann_top_k=0)

    def test_ann_index_validated(self):
        FuzzyFDConfig(ann_index="lsh")
        FuzzyFDConfig(ann_index="ivf")
        with pytest.raises(ValueError, match="ann_index"):
            FuzzyFDConfig(ann_index="annoy")

    def test_ann_knobs_serialise_and_round_trip(self):
        config = FuzzyFDConfig(
            blocking="on", semantic_blocking="on", ann_tables=4, ann_bits=10, ann_top_k=7
        )
        data = config.to_dict()
        assert data["semantic_blocking"] == "on"
        assert data["ann_tables"] == 4
        assert data["ann_bits"] == 10
        assert data["ann_top_k"] == 7
        assert FuzzyFDConfig.from_dict(data) == config

    def test_parallel_knobs_serialise_and_round_trip(self):
        config = FuzzyFDConfig(max_workers=4, parallel_backend="process")
        data = config.to_dict()
        assert data["max_workers"] == 4
        assert data["parallel_backend"] == "process"
        assert FuzzyFDConfig.from_dict(data) == config

    def test_executor_config_reflects_knobs(self):
        executor = FuzzyFDConfig(max_workers=3, parallel_backend="thread").executor_config()
        assert executor.backend == "thread"
        assert executor.max_workers == 3

    def test_partitioned_fd_resolved_by_name_inherits_executor(self):
        config = FuzzyFDConfig(fd_algorithm="partitioned", max_workers=5)
        assert config.resolve_fd_algorithm().executor.max_workers == 5

    def test_fd_instance_keeps_its_own_executor(self):
        from repro.fd import PartitionedFullDisjunction

        algorithm = PartitionedFullDisjunction(max_workers=2)
        config = FuzzyFDConfig(fd_algorithm=algorithm, max_workers=7)
        assert config.resolve_fd_algorithm().executor.max_workers == 2


class TestSerialisation:
    def test_round_trip_equality(self):
        config = FuzzyFDConfig(
            embedder="fasttext",
            threshold=0.65,
            assignment_solver="greedy",
            fd_algorithm="incremental",
            representative_policy="longest",
            exact_first=False,
            blocking="auto",
            blocking_cutoff=1000,
            alignment="holistic",
        )
        assert FuzzyFDConfig.from_dict(config.to_dict()) == config

    def test_default_round_trip(self):
        config = FuzzyFDConfig()
        assert FuzzyFDConfig.from_dict(config.to_dict()) == config

    def test_to_dict_serialises_instances_by_name(self):
        config = FuzzyFDConfig(
            embedder=ExactEmbedder(),
            assignment_solver=HungarianAssignment(),
            fd_algorithm=AliteFullDisjunction(),
        )
        data = config.to_dict()
        assert data["embedder"] == "exact"
        assert data["assignment_solver"] == "hungarian"
        assert data["fd_algorithm"] == "alite"
        # and the serialised form loads back into a valid (name-based) config
        loaded = FuzzyFDConfig.from_dict(data)
        assert loaded.resolve_embedder().name == "exact"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig.from_dict({"treshold": 0.8})
        assert "treshold" in str(excinfo.value)
        assert "threshold" in str(excinfo.value)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"embedder": "fasttext", "threshold": 0.9}))
        config = FuzzyFDConfig.from_json(path)
        assert config.embedder == "fasttext"
        assert config.threshold == 0.9
        # unspecified knobs keep the paper defaults
        assert config.fd_algorithm == "alite"

    def test_from_json_string(self):
        config = FuzzyFDConfig.from_json('{"blocking": "auto"}')
        assert config.blocking == "auto"

    def test_to_dict_does_not_deep_copy_instances(self):
        import threading

        embedder = ExactEmbedder()
        embedder.lock = threading.Lock()  # unpicklable, like a real model client
        assert FuzzyFDConfig(embedder=embedder).to_dict()["embedder"] == "exact"

    def test_from_json_missing_file_raises_file_not_found(self):
        with pytest.raises(FileNotFoundError):
            FuzzyFDConfig.from_json("no-such-confg.jsn")

    def test_from_json_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"embedder": "gpt-17"}))
        with pytest.raises(ValueError):
            FuzzyFDConfig.from_json(path)
        non_object = tmp_path / "list.json"
        non_object.write_text("[1, 2]")
        with pytest.raises(ValueError):
            FuzzyFDConfig.from_json(non_object)

    def test_to_json_round_trip(self):
        config = FuzzyFDConfig(threshold=0.75, blocking="on")
        assert FuzzyFDConfig.from_json(config.to_json()) == config

    def test_store_knobs_round_trip(self, tmp_path):
        config = FuzzyFDConfig(store_dir=tmp_path / "store", store_mode="read")
        data = config.to_dict()
        assert data["store_dir"] == str(tmp_path / "store")  # held as a string
        assert data["store_mode"] == "read"
        assert FuzzyFDConfig.from_dict(data) == config
        assert FuzzyFDConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize("preset", ["paper", "fast", "scale"])
    def test_every_preset_round_trips(self, preset):
        config = FuzzyFDConfig.preset(preset)
        data = config.to_dict()
        # to_dict covers every field exactly — nothing dropped, nothing extra.
        assert set(data) == {field.name for field in dataclasses.fields(FuzzyFDConfig)}
        assert FuzzyFDConfig.from_dict(data) == config
        assert FuzzyFDConfig.from_json(config.to_json()) == config


class TestPresets:
    def test_available_presets(self):
        assert {"paper", "fast", "scale"} <= set(available_presets())

    def test_paper_preset_is_the_default_config(self):
        assert FuzzyFDConfig.preset("paper") == FuzzyFDConfig()

    def test_fast_preset(self):
        config = FuzzyFDConfig.preset("fast")
        assert config.embedder == "fasttext"
        assert config.assignment_solver == "greedy"
        assert config.blocking == "auto"

    def test_scale_preset(self):
        config = FuzzyFDConfig.preset("scale")
        assert config.fd_algorithm == "partitioned"
        assert config.blocking == "auto"
        # the semantic ANN channel engages where surface keys lose recall
        assert config.semantic_blocking == "auto"
        # the paper's models are kept
        assert config.embedder == "mistral"

    def test_scale_preset_turns_parallelism_on(self):
        config = FuzzyFDConfig.preset("scale")
        assert config.max_workers == 4
        assert config.parallel_backend == "thread"
        assert config.executor_config().is_parallel

    def test_scale_preset_opts_into_persistence(self):
        config = FuzzyFDConfig.preset("scale")
        assert config.store_mode == "readwrite"
        # ...but without a store_dir there is still no store to build.
        assert config.store_dir is None
        assert config.build_store() is None

    def test_unknown_preset_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            FuzzyFDConfig.preset("turbo")
        assert "paper" in str(excinfo.value)
