"""Property-based invariants of the end-to-end pipeline.

These tests generate small random inputs with hypothesis and check structural
invariants that must hold for *any* input — the kind of guarantees a
downstream user of the library relies on regardless of data quality.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FuzzyFDConfig, FuzzyFullDisjunction, RegularFullDisjunction
from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.embeddings import FastTextEmbedder, MistralEmbedder
from repro.matching.bipartite import BipartiteValueMatcher
from repro.matching.distance import EmbeddingDistance
from repro.table import Table, is_null

# Small pools of city-like strings keep hypothesis inputs realistic and the
# embedding cache effective (the same values recur across examples).
_VALUE_POOL = [
    "Berlin", "Berlinn", "berlin", "Toronto", "Boston", "Barcelona", "barcelona",
    "Madrid", "Lisbon", "Oslo", "Vienna", "Prague", "Dublin", "Zurich",
]
_ATTRIBUTE_POOL = ["10", "20", "30", "40", "", "red", "blue", "green"]

value_strategy = st.sampled_from(_VALUE_POOL)
attribute_strategy = st.sampled_from(_ATTRIBUTE_POOL)


def _table(name: str, keys, attributes, key_column: str, attribute_column: str) -> Table:
    # One row per join key.  With duplicate keys the "fuzzy never produces
    # more tuples than regular FD" invariant is genuinely false: rewriting
    # merges join values, and an equi-join over a merged value appearing in
    # several tuples per table multiplies rows (e.g. 2×'Berlinn' joining
    # 3×'Berlin' yields 6 tuples where the regular outer union kept 5).
    rows = list({key: (key, attribute) for key, attribute in zip(keys, attributes)}.values())
    return Table(name, [key_column, attribute_column], rows)


@pytest.fixture(scope="module")
def fuzzy_operator():
    return FuzzyFullDisjunction(FuzzyFDConfig(embedder=MistralEmbedder()))


@pytest.fixture(scope="module")
def regular_operator():
    return RegularFullDisjunction(FuzzyFDConfig(embedder=MistralEmbedder()))


class TestIntegrationInvariants:
    @given(
        left_keys=st.lists(value_strategy, min_size=1, max_size=6),
        left_attrs=st.lists(attribute_strategy, min_size=6, max_size=6),
        right_keys=st.lists(value_strategy, min_size=1, max_size=6),
        right_attrs=st.lists(attribute_strategy, min_size=6, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzzy_fd_never_produces_more_tuples_than_regular_fd(
        self, fuzzy_operator, regular_operator, left_keys, left_attrs, right_keys, right_attrs
    ):
        left = _table("L", left_keys, left_attrs, "City", "A")
        right = _table("R", right_keys, right_attrs, "City", "B")
        fuzzy = fuzzy_operator.integrate([left, right])
        regular = regular_operator.integrate([left, right])
        # Rewriting values can only create additional join opportunities, so
        # the fuzzy result is never more fragmented than the regular one.
        assert fuzzy.table.num_rows <= regular.table.num_rows

    @given(
        left_keys=st.lists(value_strategy, min_size=1, max_size=6),
        left_attrs=st.lists(attribute_strategy, min_size=6, max_size=6),
        right_keys=st.lists(value_strategy, min_size=1, max_size=6),
        right_attrs=st.lists(attribute_strategy, min_size=6, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_source_tuple_is_accounted_for(
        self, fuzzy_operator, left_keys, left_attrs, right_keys, right_attrs
    ):
        left = _table("L", left_keys, left_attrs, "City", "A")
        right = _table("R", right_keys, right_attrs, "City", "B")
        result = fuzzy_operator.integrate([left, right])
        covered = set()
        for sources in result.table.provenance:
            covered |= set(sources)
        expected = {f"L:{index}" for index in range(left.num_rows)} | {
            f"R:{index}" for index in range(right.num_rows)
        }
        assert covered == expected

    @given(
        keys=st.lists(value_strategy, min_size=1, max_size=8),
        attrs=st.lists(attribute_strategy, min_size=8, max_size=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_single_table_integration_is_lossless(self, fuzzy_operator, keys, attrs):
        table = _table("T", keys, attrs, "City", "A")
        result = fuzzy_operator.integrate([table])
        assert result.table.same_rows(table)


class TestValueMatchingInvariants:
    @given(
        left=st.lists(value_strategy, min_size=1, max_size=8, unique=True),
        right=st.lists(value_strategy, min_size=1, max_size=8, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_match_sets_partition_the_input_values(self, left, right):
        matcher = ValueMatcher(MistralEmbedder(), threshold=0.7)
        result = matcher.match_columns(
            [ColumnValues("c1", list(left)), ColumnValues("c2", list(right))]
        )
        members = [member for match_set in result.sets for member in match_set.members]
        expected = [("c1", value) for value in left] + [("c2", value) for value in right]
        assert sorted(map(str, members)) == sorted(map(str, expected))

    @given(
        left=st.lists(value_strategy, min_size=1, max_size=8, unique=True),
        right=st.lists(value_strategy, min_size=1, max_size=8, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_representative_is_always_a_member(self, left, right):
        matcher = ValueMatcher(MistralEmbedder(), threshold=0.7)
        result = matcher.match_columns(
            [ColumnValues("c1", list(left)), ColumnValues("c2", list(right))]
        )
        for match_set in result.sets:
            assert match_set.representative in match_set.values()

    @given(
        left=st.lists(value_strategy, min_size=1, max_size=7, unique=True),
        right=st.lists(value_strategy, min_size=1, max_size=7, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_bipartite_matches_respect_threshold_and_cardinality(self, left, right):
        matcher = BipartiteValueMatcher(EmbeddingDistance(FastTextEmbedder()), threshold=0.7)
        matches = matcher.match(list(left), list(right))
        assert len(matches) <= min(len(left), len(right))
        assert all(match.distance < 0.7 for match in matches)
        assert len({match.left for match in matches}) == len(matches)
        assert len({match.right for match in matches}) == len(matches)
