"""Tests for column alignment structures and schema matchers."""

from __future__ import annotations

import pytest

from repro.schema_matching import (
    AlignedColumn,
    ColumnAlignment,
    ColumnRef,
    HeaderSchemaMatcher,
    HolisticSchemaMatcher,
    column_signature,
)
from repro.embeddings import FastTextEmbedder
from repro.table import Table


@pytest.fixture()
def covid_renamed(covid_tables):
    """Figure 1 tables with one header renamed, so headers alone are not enough."""
    t1, t2, t3 = covid_tables
    return [t1.rename({"City": "Municipality"}), t2, t3]


class TestColumnAlignment:
    def test_from_named_columns_groups_equal_headers(self, covid_tables):
        alignment = ColumnAlignment.from_named_columns(covid_tables)
        groups = alignment.as_dict()
        assert set(groups["City"]) == {"T1.City", "T2.City", "T3.City"}
        assert set(groups["Country"]) == {"T1.Country", "T2.Country"}

    def test_multi_table_groups(self, covid_tables):
        alignment = ColumnAlignment.from_named_columns(covid_tables)
        multi = {group.name for group in alignment.multi_table_groups()}
        assert multi == {"City", "Country"}

    def test_rename_map_and_apply(self):
        alignment = ColumnAlignment(
            [
                AlignedColumn("city", [ColumnRef("a", "Town"), ColumnRef("b", "City")]),
                AlignedColumn("b.extra", [ColumnRef("b", "extra")]),
            ]
        )
        table_a = Table("a", ["Town"], [("Berlin",)])
        table_b = Table("b", ["City", "extra"], [("Boston", "x")])
        renamed = alignment.apply([table_a, table_b])
        assert renamed[0].columns == ("city",)
        assert renamed[1].columns == ("city", "b.extra")

    def test_duplicate_column_in_two_groups_rejected(self):
        ref = ColumnRef("a", "x")
        with pytest.raises(ValueError):
            ColumnAlignment([AlignedColumn("g1", [ref]), AlignedColumn("g2", [ref])])

    def test_two_columns_of_same_table_in_group_rejected(self):
        with pytest.raises(ValueError):
            ColumnAlignment(
                [AlignedColumn("g", [ColumnRef("a", "x"), ColumnRef("a", "y")])]
            )

    def test_group_for_lookup(self, covid_tables):
        alignment = ColumnAlignment.from_named_columns(covid_tables)
        group = alignment.group_for("T2", "VaxRate")
        assert group is not None and len(group) == 1
        assert alignment.group_for("T2", "missing") is None


class TestHeaderMatcher:
    def test_groups_by_normalised_header(self, covid_tables):
        alignment = HeaderSchemaMatcher().align(covid_tables)
        assert alignment.group_for("T1", "City").name == alignment.group_for("T3", "City").name

    def test_case_insensitive_headers(self):
        left = Table("l", ["city"], [("Berlin",)])
        right = Table("r", ["City"], [("Boston",)])
        alignment = HeaderSchemaMatcher().align([left, right])
        assert len(alignment.multi_table_groups()) == 1


class TestColumnSignature:
    def test_signature_fields(self, covid_tables):
        signature = column_signature(covid_tables[0], "City", FastTextEmbedder())
        assert signature.table == "T1"
        assert signature.embedding.shape == (256,)
        assert 0.0 <= signature.numeric_fraction <= 1.0
        assert signature.distinct_fraction == 1.0

    def test_numeric_column_detected(self):
        table = Table("t", ["n"], [("1",), ("2.5",), ("3",)])
        signature = column_signature(table, "n", FastTextEmbedder())
        assert signature.numeric_fraction == 1.0

    def test_similarity_of_same_content_columns_is_high(self):
        left = Table("l", ["c"], [("Berlin",), ("Boston",), ("Toronto",)])
        right = Table("r", ["d"], [("Berlin",), ("Toronto",), ("Madrid",)])
        embedder = FastTextEmbedder()
        sig_left = column_signature(left, "c", embedder)
        sig_right = column_signature(right, "d", embedder)
        unrelated = Table("u", ["x"], [("12",), ("85",), ("97",)])
        sig_unrelated = column_signature(unrelated, "x", embedder)
        assert sig_left.similarity(sig_right) > sig_left.similarity(sig_unrelated)


class TestHolisticMatcher:
    def test_aligns_city_columns_despite_renamed_header(self, covid_renamed):
        alignment = HolisticSchemaMatcher().align(covid_renamed)
        group = alignment.group_for("T1", "Municipality")
        assert group is not None
        members = {str(member) for member in group.members}
        assert "T2.City" in members or "T3.City" in members

    def test_never_groups_columns_of_same_table(self, covid_tables):
        alignment = HolisticSchemaMatcher().align(covid_tables)
        for group in alignment:
            tables = group.tables()
            assert len(tables) == len(set(tables))

    def test_every_column_is_covered_exactly_once(self, covid_tables):
        alignment = HolisticSchemaMatcher().align(covid_tables)
        refs = [str(member) for group in alignment for member in group.members]
        expected = [
            f"{table.name}.{column}" for table in covid_tables for column in table.columns
        ]
        assert sorted(refs) == sorted(expected)

    def test_header_bonus_helps_equal_headers(self, covid_tables):
        alignment = HolisticSchemaMatcher().align(covid_tables)
        city_group = alignment.group_for("T1", "City")
        assert city_group is not None
        assert len(city_group) >= 2
