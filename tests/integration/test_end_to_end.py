"""Cross-module integration tests.

These exercise the whole pipeline the way the experiments do: benchmark
generator → (value matching | integration) → evaluation, plus CSV round trips
feeding the public API, at miniature scale so they stay fast.
"""

from __future__ import annotations

import pytest

from repro import integrate, read_csv, write_csv
from repro.core import FuzzyFDConfig
from repro.core.value_matching import ValueMatcher
from repro.datasets import AliteEmBenchmark, AutoJoinBenchmark, ImdbBenchmark
from repro.em import EntityMatchingPipeline
from repro.embeddings import FastTextEmbedder, MistralEmbedder
from repro.evaluation import macro_average, score_integration_set
from repro.evaluation.runtime import overhead_ratio, runtime_sweep


class TestAutoJoinPipeline:
    def test_mistral_beats_fasttext_on_small_benchmark(self, small_autojoin_sets):
        scores = {}
        for embedder in (FastTextEmbedder(), MistralEmbedder()):
            matcher = ValueMatcher(embedder, threshold=0.7)
            per_set = [
                score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
                for s in small_autojoin_sets
            ]
            scores[embedder.name] = macro_average(per_set)
        assert scores["mistral"].f1 >= scores["fasttext"].f1
        assert scores["mistral"].recall >= scores["fasttext"].recall

    def test_scores_are_sane(self, small_autojoin_sets):
        matcher = ValueMatcher(MistralEmbedder(), threshold=0.7)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in small_autojoin_sets
        ]
        average = macro_average(per_set)
        assert 0.5 <= average.precision <= 1.0
        assert 0.5 <= average.recall <= 1.0

    def test_integration_of_autojoin_tables_runs(self, small_autojoin_sets):
        integration_set = small_autojoin_sets[0]
        tables = integration_set.tables()
        # The single aligned column is named differently per table; align them
        # explicitly by renaming to a common name.
        renamed = [table.rename({"value": "value"}) for table in tables]
        result = integrate(renamed, fuzzy=True)
        assert result.table.num_rows > 0


class TestEntityMatchingPipeline:
    def test_fuzzy_integration_improves_downstream_recall(self, small_em_set):
        # The paper-level claim (higher F1 for Fuzzy FD) is asserted by the
        # downstream-EM benchmark, which averages over several integration
        # sets; on a single miniature set only the recall improvement (the
        # mechanism: fuzzy values get consolidated before EM) is stable.
        regular = integrate(small_em_set.tables, fuzzy=False)
        fuzzy = integrate(small_em_set.tables, fuzzy=True)
        em = EntityMatchingPipeline()
        regular_scores = em.run(regular.table, gold_clusters=small_em_set.gold_clusters).scores
        fuzzy_scores = em.run(fuzzy.table, gold_clusters=small_em_set.gold_clusters).scores
        assert fuzzy_scores.recall >= regular_scores.recall
        assert fuzzy_scores.f1 >= regular_scores.f1 - 0.05

    def test_fuzzy_fd_produces_fewer_or_equal_tuples(self, small_em_set):
        regular = integrate(small_em_set.tables, fuzzy=False)
        fuzzy = integrate(small_em_set.tables, fuzzy=True)
        assert fuzzy.table.num_rows <= regular.table.num_rows


class TestImdbPipeline:
    def test_runtime_sweep_overhead_is_small(self):
        bench = ImdbBenchmark(seed=3)
        points = runtime_sweep(bench.tables, sizes=[150], config=FuzzyFDConfig())
        ratios = overhead_ratio(points)
        assert len(ratios) == 1
        # The Match Values step adds little over the FD itself (Figure 3's claim);
        # at miniature scale we only require it is not a multiple.
        assert next(iter(ratios.values())) < 3.0

    def test_fuzzy_and_regular_outputs_match_on_equi_join_data(self):
        tables = ImdbBenchmark(seed=3).tables(150)
        regular = integrate(tables, fuzzy=False)
        fuzzy = integrate(tables, fuzzy=True)
        assert fuzzy.table.num_rows == regular.table.num_rows


class TestCsvWorkflow:
    def test_csv_round_trip_then_integrate(self, covid_tables, tmp_path):
        paths = [write_csv(table, tmp_path / f"{table.name}.csv") for table in covid_tables]
        loaded = [read_csv(path) for path in paths]
        result = integrate(loaded, fuzzy=True)
        assert result.table.num_rows == 5

    def test_integrated_result_written_and_reloaded(self, covid_tables, tmp_path):
        result = integrate(covid_tables, fuzzy=True)
        path = write_csv(result.table, tmp_path / "integrated.csv")
        reloaded = read_csv(path)
        assert reloaded.num_rows == result.table.num_rows
        assert set(reloaded.columns) == set(result.table.columns)
