"""Tests for the downstream entity-matching pipeline."""

from __future__ import annotations

import pytest

from repro.em import (
    EntityMatchingPipeline,
    RecordPair,
    RecordPairMatcher,
    TokenBlocker,
    cluster_matches,
    pairwise_scores,
)
from repro.em.clustering import clusters_to_labels
from repro.table import NULL, Table


@pytest.fixture()
def integrated_table():
    """A small integrated table with two duplicated entities and one singleton."""
    return Table(
        "integrated",
        ["Name", "City", "Sector"],
        [
            ("World Health Organization", "Geneva", "Public Health"),
            ("World Health Organization", "Geneva", NULL),
            ("Pioneer Analytics Limited", "Boston", "Technology"),
            ("Pioneer Analytics Ltd", "Boston", "Technology"),
            ("Keystone Motors Group", "Detroit", "Manufacturing"),
        ],
        provenance=[{"a:0"}, {"b:0"}, {"a:1"}, {"b:1"}, {"a:2"}],
    )


class TestTokenBlocker:
    def test_blocks_share_tokens(self, integrated_table):
        pairs = TokenBlocker().candidate_pairs(integrated_table)
        assert (0, 1) in pairs
        assert (2, 3) in pairs

    def test_unrelated_rows_not_candidates(self, integrated_table):
        pairs = TokenBlocker().candidate_pairs(integrated_table)
        assert (0, 4) not in pairs

    def test_max_block_size_prunes_frequent_tokens(self):
        rows = [(f"Entity {i}", "Same City") for i in range(30)]
        table = Table("t", ["Name", "City"], rows)
        pairs = TokenBlocker(max_block_size=10).candidate_pairs(table)
        assert pairs == []

    def test_column_restriction(self, integrated_table):
        pairs = TokenBlocker(columns=["City"]).candidate_pairs(integrated_table)
        assert (0, 1) in pairs and (2, 3) in pairs

    def test_null_values_ignored(self):
        table = Table("t", ["Name"], [(NULL,), (NULL,)])
        assert TokenBlocker().candidate_pairs(table) == []


class TestRecordPairMatcher:
    def test_identical_values_similarity_one(self):
        matcher = RecordPairMatcher()
        assert matcher.value_similarity("Boston", "Boston") == 1.0

    def test_similar_values_high(self):
        matcher = RecordPairMatcher()
        assert matcher.value_similarity("Pioneer Analytics Limited", "Pioneer Analytics Ltd") > 0.6

    def test_column_weights_favour_distinct_columns(self, integrated_table):
        weights = RecordPairMatcher().column_weights(integrated_table)
        assert weights["Name"] > weights["City"]

    def test_duplicate_rows_matched(self, integrated_table):
        matcher = RecordPairMatcher(threshold=0.65)
        matches = matcher.match(integrated_table, [(0, 1), (2, 3), (0, 4)])
        matched = {(pair.left, pair.right) for pair in matches}
        assert (0, 1) in matched
        assert (2, 3) in matched
        assert (0, 4) not in matched

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            RecordPairMatcher(threshold=0.0)

    def test_rows_without_shared_columns_score_zero(self):
        table = Table("t", ["a", "b"], [("x", NULL), (NULL, "y")])
        assert RecordPairMatcher().record_similarity(table, 0, 1) == 0.0


class TestClustering:
    def test_connected_components(self):
        clusters = cluster_matches(4, [RecordPair(0, 1, 0.9), RecordPair(1, 2, 0.8)])
        assert [0, 1, 2] in clusters
        assert [3] in clusters

    def test_labels_are_dense(self):
        clusters = cluster_matches(3, [RecordPair(0, 2, 0.9)])
        labels = clusters_to_labels(clusters)
        assert labels[0] == labels[2] != labels[1]


class TestPairwiseScores:
    def test_perfect_prediction(self):
        gold = [["a", "b"], ["c"]]
        scores = pairwise_scores(gold, gold)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_missing_pair_lowers_recall(self):
        scores = pairwise_scores([["a"], ["b"], ["c", "d"]], [["a", "b"], ["c", "d"]])
        assert scores.precision == 1.0
        assert scores.recall == 0.5

    def test_extra_pair_lowers_precision(self):
        scores = pairwise_scores([["a", "b", "c"]], [["a", "b"], ["c"]])
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(1 / 3)

    def test_empty_predictions(self):
        scores = pairwise_scores([], [["a", "b"]])
        assert scores.precision == 1.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_counts_exposed(self):
        scores = pairwise_scores([["a", "b", "c"]], [["a", "b"]])
        assert scores.true_positives == 1
        assert scores.false_positives == 2
        assert scores.false_negatives == 0


class TestPipeline:
    def test_end_to_end_clusters_duplicates(self, integrated_table):
        result = EntityMatchingPipeline(match_threshold=0.65).run(integrated_table)
        labels = clusters_to_labels(result.row_clusters)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_source_clusters_use_provenance(self, integrated_table):
        result = EntityMatchingPipeline(match_threshold=0.65).run(integrated_table)
        assert ["a:0", "b:0"] in result.source_clusters

    def test_scores_against_gold(self, integrated_table):
        gold = [["a:0", "b:0"], ["a:1", "b:1"], ["a:2"]]
        result = EntityMatchingPipeline(match_threshold=0.65).run(integrated_table, gold_clusters=gold)
        assert result.scores is not None
        assert result.scores.f1 == 1.0

    def test_no_gold_means_no_scores(self, integrated_table):
        result = EntityMatchingPipeline().run(integrated_table)
        assert result.scores is None
