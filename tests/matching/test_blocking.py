"""Tests for blocked fuzzy value matching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import MistralEmbedder
from repro.matching import BipartiteValueMatcher, BlockedValueMatcher, ValueBlocker
from repro.matching.distance import EmbeddingDistance


@pytest.fixture(scope="module")
def embedder():
    return MistralEmbedder()


class TestValueBlocker:
    def test_keys_include_prefixes_and_grams(self):
        keys = ValueBlocker(use_lexicon=False).keys("Berlin")
        assert "p:berl" in keys
        assert any(key.startswith("g:") for key in keys)

    def test_lexicon_key_joins_abbreviations(self):
        blocker = ValueBlocker(use_lexicon=True)
        assert blocker.keys("United States") & blocker.keys("US")

    def test_without_lexicon_disjoint_surfaces_do_not_share_blocks(self):
        blocker = ValueBlocker(use_lexicon=False)
        assert not (blocker.keys("United States") & blocker.keys("US"))

    def test_typos_share_blocks(self):
        blocker = ValueBlocker(use_lexicon=False)
        assert blocker.keys("Berlin") & blocker.keys("Berlinn")

    def test_candidate_pairs_subset_of_cartesian(self):
        blocker = ValueBlocker()
        left = ["Berlin", "Toronto"]
        right = ["Berlinn", "Boston", "Toronto"]
        pairs = blocker.candidate_pairs(left, right)
        assert set(pairs) <= {(i, j) for i in range(2) for j in range(3)}
        assert (0, 0) in pairs  # Berlin / Berlinn
        assert (1, 2) in pairs  # Toronto / Toronto

    def test_empty_value_still_gets_some_key_or_none(self):
        assert ValueBlocker().keys("") == set() or ValueBlocker().keys("")

    def test_ngrams_capped_at_max(self):
        blocker = ValueBlocker(use_lexicon=False, max_ngrams=4)
        grams = {key for key in blocker.keys("abcdefghijklmnop") if key.startswith("g:")}
        assert len(grams) <= 4

    def test_ngrams_sampled_across_whole_value(self):
        # Long values sharing only their suffix must still share a block;
        # keeping only the first max_ngrams grams would block on the prefix.
        blocker = ValueBlocker(use_lexicon=False)
        left = blocker.keys("aaaaaaaaaaaaaaaazzzz")
        right = blocker.keys("bbbbbbbbbbbbbbbbzzzz")
        assert {key for key in left if key.startswith("g:")} & {
            key for key in right if key.startswith("g:")
        }

    def test_sampling_keeps_first_and_last_gram(self):
        from repro.utils.text import character_ngrams

        blocker = ValueBlocker(use_lexicon=False)
        value = "abcdefghijklmnopqrstuvwxyz"
        grams = character_ngrams(value, n=3)
        keys = blocker.keys(value)
        assert f"g:{grams[0]}" in keys
        assert f"g:{grams[-1]}" in keys


class TestBlockedValueMatcher:
    def test_matches_agree_with_unblocked_on_small_input(self, embedder):
        left = ["Germany", "Canada", "Spain", "India", "Berlin"]
        right = ["DE", "CA", "ES", "US", "Berlinn"]
        blocked = BlockedValueMatcher(embedder, threshold=0.7)
        unblocked = BipartiteValueMatcher(EmbeddingDistance(embedder), threshold=0.7)
        blocked_pairs = {match.as_tuple() for match in blocked.match(left, right)}
        unblocked_pairs = {match.as_tuple() for match in unblocked.match(left, right)}
        assert blocked_pairs == unblocked_pairs

    def test_blocking_reduces_scored_pairs(self, embedder):
        left = [f"Entity Alpha {i}" for i in range(20)] + ["Berlin"]
        right = [f"Different Beta {i}" for i in range(20)] + ["Berlinn"]
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match(left, right)
        statistics = matcher.last_statistics
        assert statistics is not None
        assert statistics.candidate_pairs < statistics.full_matrix_pairs
        assert statistics.reduction_ratio > 0.0
        assert ("Berlin", "Berlinn") in {match.as_tuple() for match in matches}

    def test_each_value_matched_at_most_once(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match(["Berlin", "Berlin City"], ["Berlinn"])
        assert len(matches) <= 1

    def test_empty_inputs(self, embedder):
        matcher = BlockedValueMatcher(embedder)
        assert matcher.match([], ["x"]) == []
        assert matcher.last_statistics.candidate_pairs == 0

    def test_threshold_validated(self, embedder):
        with pytest.raises(ValueError):
            BlockedValueMatcher(embedder, threshold=1.5)

    def test_exact_first_variant(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match_exact_first(["Toronto", "Berlin"], ["Toronto", "Berlinn"])
        assert {match.as_tuple() for match in matches} == {
            ("Toronto", "Toronto"),
            ("Berlin", "Berlinn"),
        }

    def test_prohibitive_cost_never_selected(self, embedder):
        # Values sharing no block are never matched even if the assignment
        # would otherwise be forced to pair them.
        matcher = BlockedValueMatcher(embedder, threshold=0.99, blocker=ValueBlocker(use_lexicon=False))
        matches = matcher.match(["Zebra"], ["Quokka"])
        assert matches == []

    def test_exact_first_keeps_duplicate_left_values(self, embedder):
        # One exact match must consume one left *position*; the surviving
        # duplicate still participates in the fuzzy stage.
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match_exact_first(["Berlin", "Berlin"], ["Berlin", "Berlinn"])
        assert sorted(match.as_tuple() for match in matches) == [
            ("Berlin", "Berlin"),
            ("Berlin", "Berlinn"),
        ]


class TestComponentEngine:
    def test_statistics_describe_components(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7, blocker=ValueBlocker(use_lexicon=False))
        matcher.match(["Berlin", "Toronto"], ["Berlinn", "Toronto City"])
        statistics = matcher.last_statistics
        assert statistics.components == 2
        assert statistics.largest_component == 1
        assert statistics.pairs_scored == 2
        assert statistics.pairs_avoided == statistics.full_matrix_pairs - statistics.pairs_scored

    def test_component_matrices_smaller_than_full_matrix(self, embedder):
        left = [f"group{index} alpha" for index in range(8)] + ["Berlin"]
        right = [f"group{index} beta" for index in range(8)] + ["Berlinn"]
        matcher = BlockedValueMatcher(embedder, threshold=0.7, blocker=ValueBlocker(use_lexicon=False))
        matcher.match(left, right)
        statistics = matcher.last_statistics
        assert statistics.components > 1
        assert statistics.largest_component < statistics.full_matrix_pairs
        assert statistics.pairs_scored < statistics.full_matrix_pairs

    def test_component_engine_agrees_with_dense_path(self, embedder):
        left = ["Germany", "Canada", "Spain", "India", "Berlin", "Main Street"]
        right = ["DE", "CA", "ES", "US", "Berlinn", "Main St"]
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        component = {match.as_tuple() for match in matcher.match(left, right)}
        dense = {match.as_tuple() for match in matcher.match_dense(left, right)}
        assert component == dense

    def test_dense_path_reports_single_component(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matcher.match_dense(["Berlin", "Toronto"], ["Berlinn", "Toronto"])
        statistics = matcher.last_statistics
        assert statistics.components == 1
        assert statistics.largest_component >= statistics.pairs_scored

    def test_transitive_non_candidates_stay_unmatchable(self, embedder):
        # "ab cd" and "cd ef" share a block via "cd"; "ab xx" connects to
        # "ab cd" only.  Within the component, pairs that never shared a key
        # keep the prohibitive cost.
        blocker = ValueBlocker(use_lexicon=False)
        matcher = BlockedValueMatcher(embedder, threshold=0.99, blocker=blocker)
        matches = matcher.match(["alpha beta"], ["gamma delta", "alpha omega"])
        for match in matches:
            assert blocker.keys(match.left) & blocker.keys(match.right)


@st.composite
def _shared_block_values(draw):
    """Two small unique value lists that all share one token-prefix block."""
    suffixes = st.text(alphabet="abcd", min_size=1, max_size=4)
    left = draw(st.lists(suffixes, min_size=1, max_size=5, unique=True))
    right = draw(st.lists(suffixes, min_size=1, max_size=5, unique=True))
    return (
        [f"value{suffix}" for suffix in left],
        [f"value{suffix}" for suffix in right],
    )


class TestBlockedMatchesBipartiteProperty:
    @settings(max_examples=40, deadline=None)
    @given(_shared_block_values())
    def test_identical_matches_when_blocking_generates_all_pairs(self, embedder, values):
        left, right = values
        blocked = BlockedValueMatcher(embedder, threshold=0.7)
        # Precondition: every pair shares the "value" prefix block, so the
        # candidate graph is complete and blocking loses nothing.
        all_pairs = {(i, j) for i in range(len(left)) for j in range(len(right))}
        assert set(blocked.blocker.candidate_pairs(left, right)) == all_pairs
        bipartite = BipartiteValueMatcher(EmbeddingDistance(embedder), threshold=0.7)
        assert {match.as_tuple() for match in blocked.match(left, right)} == {
            match.as_tuple() for match in bipartite.match(left, right)
        }
        assert {match.as_tuple() for match in blocked.match_exact_first(left, right)} == {
            match.as_tuple() for match in bipartite.match_exact_first(left, right)
        }


class TestValueBlockerKeyMemo:
    def test_keys_computed_once_per_distinct_normalised_text(self, monkeypatch):
        import repro.matching.blocking as blocking_module

        calls = []
        real = blocking_module._surface_keys_for_text

        def counting(normalised, **kwargs):
            calls.append(normalised)
            return real(normalised, **kwargs)

        monkeypatch.setattr(blocking_module, "_surface_keys_for_text", counting)
        blocker = ValueBlocker()
        first = blocker.keys("Main Street")
        again = blocker.keys("  main   STREET ")
        assert first == again
        assert calls == ["main street"]

    def test_memo_stays_bounded(self, monkeypatch):
        import repro.matching.blocking as blocking_module

        monkeypatch.setattr(blocking_module, "KEY_MEMO_LIMIT", 4)
        blocker = ValueBlocker()
        for index in range(10):
            blocker.keys(f"value {index}")
        assert len(blocker._key_memo) <= 4
        # Evicted entries are simply recomputed on demand.
        assert blocker.keys("value 0") == ValueBlocker().keys("value 0")

    def test_parallel_key_generation_matches_serial(self, monkeypatch):
        import repro.matching.blocking as blocking_module
        from repro.utils.executor import ExecutorConfig

        monkeypatch.setattr(blocking_module, "PARALLEL_KEYS_MIN_VALUES", 8)
        values = [f"city number {index}" for index in range(600)]
        serial = ValueBlocker()
        parallel = ValueBlocker(
            executor=ExecutorConfig(backend="process", max_workers=2)
        )

        expected = serial._value_keys(values)

        # Any in-process key computation after this point would be recorded;
        # the fan-out must come back from the worker processes instead.
        calls = []
        monkeypatch.setattr(
            blocking_module,
            "_surface_keys_for_text",
            lambda normalised, **kwargs: calls.append(normalised),
        )
        assert parallel._value_keys(values) == expected
        assert calls == []

    def test_parallel_candidate_pairs_match_serial(self, monkeypatch):
        import repro.matching.blocking as blocking_module
        from repro.utils.executor import ExecutorConfig

        monkeypatch.setattr(blocking_module, "PARALLEL_KEYS_MIN_VALUES", 8)
        left = [f"station {index}" for index in range(300)]
        right = [f"station {index}" for index in range(150, 450)]
        serial = ValueBlocker()
        parallel = ValueBlocker(
            executor=ExecutorConfig(backend="process", max_workers=2)
        )
        assert list(parallel.iter_candidate_pairs(left, right)) == list(
            serial.iter_candidate_pairs(left, right)
        )
