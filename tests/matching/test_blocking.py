"""Tests for blocked fuzzy value matching."""

from __future__ import annotations

import pytest

from repro.embeddings import MistralEmbedder
from repro.matching import BipartiteValueMatcher, BlockedValueMatcher, ValueBlocker
from repro.matching.distance import EmbeddingDistance


@pytest.fixture(scope="module")
def embedder():
    return MistralEmbedder()


class TestValueBlocker:
    def test_keys_include_prefixes_and_grams(self):
        keys = ValueBlocker(use_lexicon=False).keys("Berlin")
        assert "p:berl" in keys
        assert any(key.startswith("g:") for key in keys)

    def test_lexicon_key_joins_abbreviations(self):
        blocker = ValueBlocker(use_lexicon=True)
        assert blocker.keys("United States") & blocker.keys("US")

    def test_without_lexicon_disjoint_surfaces_do_not_share_blocks(self):
        blocker = ValueBlocker(use_lexicon=False)
        assert not (blocker.keys("United States") & blocker.keys("US"))

    def test_typos_share_blocks(self):
        blocker = ValueBlocker(use_lexicon=False)
        assert blocker.keys("Berlin") & blocker.keys("Berlinn")

    def test_candidate_pairs_subset_of_cartesian(self):
        blocker = ValueBlocker()
        left = ["Berlin", "Toronto"]
        right = ["Berlinn", "Boston", "Toronto"]
        pairs = blocker.candidate_pairs(left, right)
        assert set(pairs) <= {(i, j) for i in range(2) for j in range(3)}
        assert (0, 0) in pairs  # Berlin / Berlinn
        assert (1, 2) in pairs  # Toronto / Toronto

    def test_empty_value_still_gets_some_key_or_none(self):
        assert ValueBlocker().keys("") == set() or ValueBlocker().keys("")


class TestBlockedValueMatcher:
    def test_matches_agree_with_unblocked_on_small_input(self, embedder):
        left = ["Germany", "Canada", "Spain", "India", "Berlin"]
        right = ["DE", "CA", "ES", "US", "Berlinn"]
        blocked = BlockedValueMatcher(embedder, threshold=0.7)
        unblocked = BipartiteValueMatcher(EmbeddingDistance(embedder), threshold=0.7)
        blocked_pairs = {match.as_tuple() for match in blocked.match(left, right)}
        unblocked_pairs = {match.as_tuple() for match in unblocked.match(left, right)}
        assert blocked_pairs == unblocked_pairs

    def test_blocking_reduces_scored_pairs(self, embedder):
        left = [f"Entity Alpha {i}" for i in range(20)] + ["Berlin"]
        right = [f"Different Beta {i}" for i in range(20)] + ["Berlinn"]
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match(left, right)
        statistics = matcher.last_statistics
        assert statistics is not None
        assert statistics.candidate_pairs < statistics.full_matrix_pairs
        assert statistics.reduction_ratio > 0.0
        assert ("Berlin", "Berlinn") in {match.as_tuple() for match in matches}

    def test_each_value_matched_at_most_once(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match(["Berlin", "Berlin City"], ["Berlinn"])
        assert len(matches) <= 1

    def test_empty_inputs(self, embedder):
        matcher = BlockedValueMatcher(embedder)
        assert matcher.match([], ["x"]) == []
        assert matcher.last_statistics.candidate_pairs == 0

    def test_threshold_validated(self, embedder):
        with pytest.raises(ValueError):
            BlockedValueMatcher(embedder, threshold=1.5)

    def test_exact_first_variant(self, embedder):
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matches = matcher.match_exact_first(["Toronto", "Berlin"], ["Toronto", "Berlinn"])
        assert {match.as_tuple() for match in matches} == {
            ("Toronto", "Toronto"),
            ("Berlin", "Berlinn"),
        }

    def test_prohibitive_cost_never_selected(self, embedder):
        # Values sharing no block are never matched even if the assignment
        # would otherwise be forced to pair them.
        matcher = BlockedValueMatcher(embedder, threshold=0.99, blocker=ValueBlocker(use_lexicon=False))
        matches = matcher.match(["Zebra"], ["Quokka"])
        assert matches == []
