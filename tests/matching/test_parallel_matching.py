"""Determinism of the parallel blocked matcher and the streaming blocker.

The parallel execution layer's contract is strict: for any backend and any
worker count, ``BlockedValueMatcher.match`` must return *exactly* what the
serial loop returns — same pairs, same distances, same order.  These tests
pin that contract, the vectorised singleton fast path, the frequent-key cap
of the streaming candidate generator, and the component-size statistics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import MistralEmbedder
from repro.matching.blocking import BlockedValueMatcher, ValueBlocker
from repro.utils.executor import ExecutorConfig


@pytest.fixture(scope="module")
def embedder():
    return MistralEmbedder()


def _workload(n_groups: int = 12, group_size: int = 3):
    """Values forming ``n_groups`` multi-value components plus singletons."""
    left, right = [], []
    for group in range(n_groups):
        for member in range(group_size):
            left.append(f"group{group:03d} item{member}{chr(97 + member)}")
            right.append(f"group{group:03d} item{member}{chr(98 + member)}")
    left += [f"solo left {index}qqq" for index in range(10)]
    right += [f"solo right {index}zzz" for index in range(10)]
    return left, right


def _exact(matches):
    return [(match.left, match.right, match.distance) for match in matches]


class TestBackendDeterminism:
    @pytest.mark.parametrize(
        "backend,workers",
        [("serial", 1), ("thread", 2), ("thread", 4), ("process", 2), ("process", 4)],
    )
    def test_every_backend_matches_the_serial_path_exactly(self, embedder, backend, workers):
        left, right = _workload()
        serial = BlockedValueMatcher(embedder, threshold=0.7)
        pooled = BlockedValueMatcher(
            embedder,
            threshold=0.7,
            executor=ExecutorConfig(backend=backend, max_workers=workers,
                                    min_parallel_items=0, batch_size=2),
        )
        assert _exact(pooled.match(left, right)) == _exact(serial.match(left, right))
        assert _exact(pooled.match_exact_first(left, right)) == _exact(
            serial.match_exact_first(left, right)
        )

    def test_statistics_identical_across_backends(self, embedder):
        left, right = _workload()
        serial = BlockedValueMatcher(embedder, threshold=0.7)
        serial.match(left, right)
        pooled = BlockedValueMatcher(
            embedder, threshold=0.7,
            executor=ExecutorConfig(backend="thread", max_workers=4, min_parallel_items=0),
        )
        pooled.match(left, right)
        assert pooled.last_statistics == serial.last_statistics

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(alphabet="abcd", min_size=1, max_size=4), min_size=1,
                    max_size=6, unique=True),
           st.lists(st.text(alphabet="abcd", min_size=1, max_size=4), min_size=1,
                    max_size=6, unique=True))
    def test_property_thread_pool_equals_serial(self, embedder, left_suffixes, right_suffixes):
        left = [f"value{suffix}" for suffix in left_suffixes]
        right = [f"value{suffix}" for suffix in right_suffixes]
        serial = BlockedValueMatcher(embedder, threshold=0.7)
        pooled = BlockedValueMatcher(
            embedder, threshold=0.7,
            executor=ExecutorConfig(backend="thread", max_workers=3,
                                    min_parallel_items=0, batch_size=1),
        )
        assert _exact(pooled.match(left, right)) == _exact(serial.match(left, right))


class TestSingletonBatching:
    def test_fast_path_matches_solver_path_pairs(self, embedder):
        left, right = _workload(n_groups=4)
        batched = BlockedValueMatcher(embedder, threshold=0.7)
        unbatched = BlockedValueMatcher(embedder, threshold=0.7, singleton_batching=False)
        assert [match.as_tuple() for match in batched.match(left, right)] == [
            match.as_tuple() for match in unbatched.match(left, right)
        ]

    def test_one_sided_components_all_cells_are_candidates(self, embedder):
        # A 1×N component is a star graph: its optimal assignment is the
        # cheapest cell, which the batched argmin must select.
        matcher = BlockedValueMatcher(
            embedder, threshold=0.99, blocker=ValueBlocker(use_lexicon=False)
        )
        matches = matcher.match(["berlin"], ["berlin city", "berlinn"])
        assert len(matches) == 1
        best = matches[0]
        alternative = [m for m in matcher.match(["berlin"], ["berlin city"])] + [
            m for m in matcher.match(["berlin"], ["berlinn"])
        ]
        assert best.distance == min(match.distance for match in alternative)


class TestFrequentKeyCap:
    def test_stop_word_key_does_not_explode_pairs(self):
        # Every value shares the token "the"; only the capped blocker keeps
        # the candidate set near-linear.
        blocker = ValueBlocker(use_lexicon=False, frequent_key_cap=10)
        uncapped = ValueBlocker(use_lexicon=False, frequent_key_cap=None)
        left = [f"the {index:04d}x" for index in range(40)]
        right = [f"the {index:04d}y" for index in range(40)]
        capped_pairs = blocker.candidate_pairs(left, right)
        uncapped_pairs = uncapped.candidate_pairs(left, right)
        assert blocker.last_skipped_keys >= 1
        assert len(capped_pairs) < len(uncapped_pairs)
        assert set(capped_pairs) <= set(uncapped_pairs)
        # Typo pairs still share their rare numeric key, so none are lost.
        assert all((index, index) in capped_pairs for index in range(40))

    def test_generator_is_lazy_and_deduplicated(self):
        blocker = ValueBlocker(use_lexicon=False)
        iterator = blocker.iter_candidate_pairs(["berlin"], ["berlin", "berlinn"])
        assert iter(iterator) is iterator  # a real generator
        pairs = list(iterator)
        assert len(pairs) == len(set(pairs))
        assert sorted(pairs) == blocker.candidate_pairs(["berlin"], ["berlin", "berlinn"])

    def test_skipped_keys_accurate_before_generator_drains(self):
        blocker = ValueBlocker(use_lexicon=False, frequent_key_cap=5)
        left = [f"the {index:04d}x" for index in range(30)]
        right = [f"the {index:04d}y" for index in range(30)]
        blocker.iter_candidate_pairs(left, right)  # never consumed
        assert blocker.last_skipped_keys >= 1
        # A fresh uncapped pass resets the counter immediately.
        blocker.frequent_key_cap = None
        blocker.iter_candidate_pairs(left, right)
        assert blocker.last_skipped_keys == 0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            ValueBlocker(frequent_key_cap=0)

    def test_skipped_keys_surface_in_statistics(self, embedder):
        from repro.core.value_matching import ColumnValues, ValueMatcher

        # Both sides share the stop-word token "the" beyond the cap.
        left = [f"the {index:04d}x" for index in range(30)]
        right = [f"the {index:04d}y" for index in range(30)]
        matcher = BlockedValueMatcher(
            embedder, blocker=ValueBlocker(use_lexicon=False, frequent_key_cap=5)
        )
        matcher.match(left, right)
        assert matcher.last_statistics.skipped_keys >= 1

        value_matcher = ValueMatcher(embedder, blocking="on", blocking_key_cap=5)
        result = value_matcher.match_columns(
            [ColumnValues("a", left), ColumnValues("b", right)]
        )
        assert result.statistics["blocking_skipped_keys"] >= 1.0

    def test_one_sided_blocks_survive_the_cap(self):
        # A key popular on one side only yields a linear block; dropping it
        # could strip a value of its only candidates, so it must be kept.
        blocker = ValueBlocker(use_lexicon=False, frequent_key_cap=10)
        left = [f"smith {index:04d}" for index in range(50)]  # all share p:smit
        right = ["smith 0007"]
        pairs = blocker.candidate_pairs(left, right)
        assert blocker.last_skipped_keys == 0
        assert (7, 0) in pairs


class TestComponentSizeStatistics:
    def test_component_cells_recorded_per_component(self, embedder):
        matcher = BlockedValueMatcher(
            embedder, threshold=0.7, blocker=ValueBlocker(use_lexicon=False)
        )
        matcher.match(["Berlin", "Toronto"], ["Berlinn", "Toronto City"])
        statistics = matcher.last_statistics
        assert statistics.component_cells == (1, 1)
        assert sum(statistics.component_cells) == statistics.pairs_scored
        assert max(statistics.component_cells) == statistics.largest_component

    def test_histogram_buckets_cover_all_components(self, embedder):
        left, right = _workload(n_groups=6, group_size=3)
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matcher.match(left, right)
        histogram = matcher.last_statistics.component_size_histogram()
        assert sum(histogram.values()) == matcher.last_statistics.components
        assert list(histogram) == ["1", "2-4", "5-16", "17-64", "65-256", "257-1024", ">1024"]

    def test_histogram_renders_in_reporting(self, embedder):
        from repro.evaluation import format_component_histogram

        left, right = _workload(n_groups=3)
        matcher = BlockedValueMatcher(embedder, threshold=0.7)
        matcher.match(left, right)
        report = format_component_histogram(matcher.last_statistics)
        assert "Component cells" in report
        assert "#" in report

    def test_reporting_accepts_matcher_statistics_dict(self, embedder):
        from repro.core.value_matching import ColumnValues, ValueMatcher
        from repro.evaluation import format_component_histogram

        matcher = ValueMatcher(embedder, blocking="on")
        result = matcher.match_columns(
            [
                ColumnValues("a", ["Berlin", "Toronto"]),
                ColumnValues("b", ["Berlinn", "Toronto City"]),
            ]
        )
        report = format_component_histogram(result.statistics)
        assert "Component cells" in report

    def test_reporting_rejects_mappings_without_distribution(self):
        from repro.evaluation import format_component_histogram

        # A non-blocked statistics dict must not be rendered as a histogram.
        with pytest.raises(ValueError, match="component-size distribution"):
            format_component_histogram({"columns": 3.0, "values": 120.0})
