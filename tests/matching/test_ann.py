"""Tests for the semantic ANN blocking channel (:mod:`repro.matching.ann`).

The workloads here are the adversarial case for surface blocking: planted
synonym pairs whose two surface forms are drawn from disjoint alphabet halves,
so they share no character n-gram and no token prefix — the surface channel
provably emits zero candidates, and every recovered match is the semantic
channel's doing.
"""

from __future__ import annotations

import random

import pytest

from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.embeddings.lexicon import SemanticLexicon
from repro.embeddings.transformer import SimulatedTransformerEmbedder
from repro.matching.ann import SemanticBlocker
from repro.matching.blocking import BlockedValueMatcher, ValueBlocker

LEFT_ALPHABET = "abcdefghijklm"
RIGHT_ALPHABET = "nopqrstuvwxyz"


def planted_synonyms(n_pairs: int, seed: int = 3, tokens: int = 2):
    """Surface-disjoint synonym pairs + the lexicon that anchors them."""
    rng = random.Random(seed)

    def word(alphabet):
        return "".join(rng.choice(alphabet) for _ in range(6))

    groups, left, right = {}, [], []
    seen = set()
    while len(left) < n_pairs:
        left_form = " ".join(word(LEFT_ALPHABET) for _ in range(tokens))
        right_form = " ".join(word(RIGHT_ALPHABET) for _ in range(tokens))
        if left_form in seen or right_form in seen:
            continue
        seen.update((left_form, right_form))
        groups[left_form] = [right_form]
        left.append(left_form)
        right.append(right_form)
    return left, right, SemanticLexicon(groups)


def full_coverage_embedder(lexicon: SemanticLexicon) -> SimulatedTransformerEmbedder:
    """An embedder that reliably knows every planted concept."""
    return SimulatedTransformerEmbedder(
        model_name="ann_test", lexicon_coverage=1.0, noise_level=0.1, lexicon=lexicon
    )


class CountingEmbedder(SimulatedTransformerEmbedder):
    """Counts raw (cache-missing) embedding computations."""

    def __init__(self, lexicon=None):
        super().__init__(
            model_name="ann_count", lexicon_coverage=1.0, noise_level=0.1, lexicon=lexicon
        )
        self.embed_calls = 0

    def _embed_text(self, text):
        self.embed_calls += 1
        return super()._embed_text(text)


class TestSemanticBlockerValidation:
    def test_rejects_bad_knobs(self):
        embedder = full_coverage_embedder(SemanticLexicon())
        with pytest.raises(ValueError):
            SemanticBlocker(embedder, top_k=0)
        with pytest.raises(ValueError):
            SemanticBlocker(embedder, n_tables=0)
        with pytest.raises(ValueError):
            SemanticBlocker(embedder, n_bits=0)
        with pytest.raises(ValueError):
            SemanticBlocker(embedder, n_bits=31)
        with pytest.raises(ValueError):
            SemanticBlocker(embedder, min_similarity=1.0)

    def test_empty_inputs_yield_no_pairs(self):
        embedder = full_coverage_embedder(SemanticLexicon())
        blocker = SemanticBlocker(embedder)
        assert blocker.candidate_pairs([], ["x"]) == []
        assert blocker.candidate_pairs(["x"], []) == []


class TestBruteForcePath:
    def test_recovers_all_planted_pairs(self):
        left, right, lexicon = planted_synonyms(40)
        blocker = SemanticBlocker(full_coverage_embedder(lexicon), top_k=3)
        pairs = blocker.candidate_pairs(left, right)
        assert not blocker.last_used_lsh
        assert {(index, index) for index in range(40)} <= set(pairs)

    def test_similarity_floor_prunes_unrelated_fillers(self):
        """Without the floor, top-k pads with garbage that welds components."""
        left, right, lexicon = planted_synonyms(30)
        embedder = full_coverage_embedder(lexicon)
        unfloored = SemanticBlocker(embedder, top_k=5).candidate_pairs(left, right)
        floored = SemanticBlocker(embedder, top_k=5, min_similarity=0.3).candidate_pairs(
            left, right
        )
        assert set(floored) <= set(unfloored)
        # Only the planted neighbours clear the floor on this vocabulary.
        assert set(floored) == {(index, index) for index in range(30)}
        assert len(unfloored) > len(floored)


class TestLshPath:
    def test_recovers_planted_pairs_at_high_recall(self):
        left, right, lexicon = planted_synonyms(120)
        blocker = SemanticBlocker(
            full_coverage_embedder(lexicon), top_k=3, brute_force_cells=0
        )
        pairs = blocker.candidate_pairs(left, right)
        assert blocker.last_used_lsh
        planted = {(index, index) for index in range(120)}
        recovered = planted & set(pairs)
        # LSH is approximate; the default 8 tables x 8 bits with single-bit
        # multiprobe must stay well above 80% on moderate-similarity pairs.
        assert len(recovered) >= 0.8 * len(planted)

    def test_same_seed_same_candidates(self):
        """The satellite determinism requirement: seed fixes the candidate set."""
        left, right, lexicon = planted_synonyms(60)
        embedder = full_coverage_embedder(lexicon)
        first = SemanticBlocker(embedder, brute_force_cells=0, seed=11)
        second = SemanticBlocker(embedder, brute_force_cells=0, seed=11)
        pairs = first.candidate_pairs(left, right)
        assert pairs == second.candidate_pairs(left, right)
        assert pairs == first.candidate_pairs(left, right)  # idempotent too

    def test_different_seed_may_differ_but_stays_sorted(self):
        left, right, lexicon = planted_synonyms(40)
        embedder = full_coverage_embedder(lexicon)
        pairs = SemanticBlocker(embedder, brute_force_cells=0, seed=99).candidate_pairs(
            left, right
        )
        assert pairs == sorted(pairs)

    def test_indexing_reuses_cached_embeddings(self):
        """ANN indexing over a warm cache performs zero new embeddings."""
        left, right, lexicon = planted_synonyms(30)
        embedder = CountingEmbedder(lexicon)
        embedder.embed_many(left)
        embedder.embed_many(right)
        warm_calls = embedder.embed_calls
        assert warm_calls == len(left) + len(right)
        SemanticBlocker(embedder, brute_force_cells=0).candidate_pairs(left, right)
        SemanticBlocker(embedder).candidate_pairs(left, right)
        assert embedder.embed_calls == warm_calls


class TestBlockedMatcherUnion:
    def test_surface_channel_alone_finds_nothing(self):
        left, right, lexicon = planted_synonyms(25)
        matcher = BlockedValueMatcher(
            full_coverage_embedder(lexicon), blocker=ValueBlocker(use_lexicon=False)
        )
        assert matcher.match(left, right) == []
        assert matcher.last_statistics.candidate_pairs == 0
        assert matcher.last_statistics.ann_pairs_added == 0

    def test_semantic_channel_recovers_the_matches(self):
        left, right, lexicon = planted_synonyms(25)
        embedder = full_coverage_embedder(lexicon)
        matcher = BlockedValueMatcher(
            embedder,
            blocker=ValueBlocker(use_lexicon=False),
            semantic_blocker=SemanticBlocker(embedder, min_similarity=0.3),
        )
        matches = matcher.match(left, right)
        matched = {(match.left, match.right) for match in matches}
        assert matched == set(zip(left, right))
        statistics = matcher.last_statistics
        assert statistics.ann_pairs_added > 0
        assert statistics.ann_pairs_duplicate == 0
        # The whole point of blocking: nowhere near the dense cross product.
        assert statistics.pairs_scored < len(left) * len(right)

    def test_duplicate_counter_counts_resurfaced_pairs(self):
        """Identical value lists: surface keys already propose every pair."""
        values = [f"shared value {index}" for index in range(12)]
        embedder = full_coverage_embedder(SemanticLexicon())
        matcher = BlockedValueMatcher(
            embedder,
            blocker=ValueBlocker(use_lexicon=False),
            semantic_blocker=SemanticBlocker(embedder, min_similarity=0.3),
        )
        matcher.match(values, list(values))
        statistics = matcher.last_statistics
        assert statistics.ann_pairs_duplicate > 0

    def test_auto_mode_skips_fully_covered_pairs(self):
        """With every value covered by surface keys, ``auto`` never indexes."""
        values = [f"covered value {index}" for index in range(10)]
        embedder = full_coverage_embedder(SemanticLexicon())
        matcher = BlockedValueMatcher(
            embedder,
            blocker=ValueBlocker(use_lexicon=False),
            semantic_blocker=SemanticBlocker(embedder, min_similarity=0.3),
            semantic_mode="auto",
        )
        matcher.match(values, list(values))
        statistics = matcher.last_statistics
        assert statistics.ann_pairs_added == 0
        assert statistics.ann_pairs_duplicate == 0

    def test_auto_mode_engages_on_uncovered_values(self):
        left, right, lexicon = planted_synonyms(20)
        embedder = full_coverage_embedder(lexicon)
        matcher = BlockedValueMatcher(
            embedder,
            blocker=ValueBlocker(use_lexicon=False),
            semantic_blocker=SemanticBlocker(embedder, min_similarity=0.3),
            semantic_mode="auto",
        )
        matches = matcher.match(left, right)
        assert len(matches) == 20

    def test_invalid_semantic_mode_rejected(self):
        embedder = full_coverage_embedder(SemanticLexicon())
        with pytest.raises(ValueError):
            BlockedValueMatcher(embedder, semantic_mode="sometimes")


class TestValueMatcherRecallProperty:
    """The satellite recall property, at the Match Values level."""

    def test_semantic_blocking_recovers_synonym_corrupted_vocabulary(self):
        left, right, lexicon = planted_synonyms(30)
        embedder = full_coverage_embedder(lexicon)

        surface_only = ValueMatcher(embedder, blocking="on")
        blind = surface_only.match_columns(
            [ColumnValues("A", left), ColumnValues("B", right)]
        )
        # Zero surface candidates: every value stays a singleton set.
        assert all(len(match_set) == 1 for match_set in blind.sets)

        semantic = ValueMatcher(embedder, blocking="on", semantic_blocking="on")
        result = semantic.match_columns(
            [ColumnValues("A", left), ColumnValues("B", right)]
        )
        merged = [match_set for match_set in result.sets if len(match_set) > 1]
        assert len(merged) == 30
        assert result.statistics["blocking_ann_pairs_added"] > 0

    def test_two_runs_produce_identical_match_sets(self):
        left, right, lexicon = planted_synonyms(40)

        def run():
            embedder = full_coverage_embedder(lexicon)
            matcher = ValueMatcher(
                embedder, blocking="on", semantic_blocking="on", ann_top_k=3
            )
            result = matcher.match_columns(
                [ColumnValues("A", left), ColumnValues("B", right)]
            )
            return [
                (match_set.representative, tuple(match_set.members))
                for match_set in result.sets
            ]

        assert run() == run()

    def test_semantic_on_requires_blocking(self):
        embedder = full_coverage_embedder(SemanticLexicon())
        with pytest.raises(ValueError):
            ValueMatcher(embedder, blocking="off", semantic_blocking="on")
        # "auto" is allowed with blocking off: it simply never engages (the
        # exhaustive matcher scores every pair anyway).
        ValueMatcher(embedder, blocking="off", semantic_blocking="auto")
