"""Tests for bipartite value matching and match-set building."""

from __future__ import annotations

import pytest

from repro.embeddings import ExactEmbedder, MistralEmbedder
from repro.matching.bipartite import BipartiteValueMatcher, ValueMatch
from repro.matching.clustering import MatchSetBuilder
from repro.matching.distance import EmbeddingDistance, LevenshteinDistance


@pytest.fixture(scope="module")
def mistral_matcher():
    return BipartiteValueMatcher(EmbeddingDistance(MistralEmbedder()), threshold=0.7)


class TestBipartiteMatcher:
    def test_matches_paper_country_example(self, mistral_matcher):
        left = ["Germany", "Canada", "Spain", "India"]
        right = ["CA", "US", "DE", "ES"]
        matches = {match.as_tuple() for match in mistral_matcher.match(left, right)}
        assert ("Germany", "DE") in matches
        assert ("Canada", "CA") in matches
        assert ("Spain", "ES") in matches
        # India/US is produced by the assignment but discarded by the threshold.
        assert ("India", "US") not in matches

    def test_distances_below_threshold(self, mistral_matcher):
        matches = mistral_matcher.match(["Berlin"], ["Berlinn"])
        assert len(matches) == 1
        assert matches[0].distance < 0.7

    def test_empty_inputs(self, mistral_matcher):
        assert mistral_matcher.match([], ["x"]) == []
        assert mistral_matcher.match(["x"], []) == []

    def test_each_value_matched_at_most_once(self, mistral_matcher):
        left = ["Berlin", "Berlin City"]
        right = ["Berlin"]
        matches = mistral_matcher.match(left, right)
        assert len(matches) <= 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BipartiteValueMatcher(LevenshteinDistance(), threshold=0.0)

    def test_exact_embedder_only_matches_identical(self):
        matcher = BipartiteValueMatcher(EmbeddingDistance(ExactEmbedder()), threshold=0.7)
        matches = matcher.match(["Berlin", "Boston"], ["Berlin", "barcelona"])
        assert {match.as_tuple() for match in matches} == {("Berlin", "Berlin")}

    def test_exact_first_fixes_identical_values(self, mistral_matcher):
        left = ["Toronto", "Barcelona"]
        right = ["Barcelona", "Toronto"]
        matches = mistral_matcher.match_exact_first(left, right)
        assert {match.as_tuple() for match in matches} == {
            ("Toronto", "Toronto"),
            ("Barcelona", "Barcelona"),
        }
        assert all(match.distance == 0.0 for match in matches)

    def test_exact_first_still_matches_fuzzy_remainder(self, mistral_matcher):
        left = ["Toronto", "Berlin"]
        right = ["Toronto", "Berlinn"]
        matches = mistral_matcher.match_exact_first(left, right)
        assert {match.as_tuple() for match in matches} == {
            ("Toronto", "Toronto"),
            ("Berlin", "Berlinn"),
        }

    def test_exact_first_keeps_duplicate_left_values(self, mistral_matcher):
        # An exact match consumes one left position, not every copy of the
        # value; the surviving duplicate still reaches the fuzzy stage.
        matches = mistral_matcher.match_exact_first(
            ["Berlin", "Berlin"], ["Berlin", "Berlinn"]
        )
        assert sorted(match.as_tuple() for match in matches) == [
            ("Berlin", "Berlin"),
            ("Berlin", "Berlinn"),
        ]

    def test_exact_first_keeps_duplicate_right_values(self, mistral_matcher):
        matches = mistral_matcher.match_exact_first(
            ["Berlin", "Berlinn"], ["Berlin", "Berlin"]
        )
        assert sorted(match.as_tuple() for match in matches) == [
            ("Berlin", "Berlin"),
            ("Berlinn", "Berlin"),
        ]

    def test_matches_sorted_by_distance(self, mistral_matcher):
        matches = mistral_matcher.match(["Berlin", "Toronto"], ["Berlinn", "Toronto"])
        distances = [match.distance for match in matches]
        assert distances == sorted(distances)


class TestMatchSetBuilder:
    def test_registered_values_start_as_singletons(self):
        builder = MatchSetBuilder()
        builder.add_column("c1", ["a", "b"])
        assert len(builder.sets()) == 2

    def test_matches_union_values(self):
        builder = MatchSetBuilder()
        builder.add_column("c1", ["Berlin"])
        builder.add_column("c2", ["Berlinn"])
        builder.add_matches("c1", "c2", [ValueMatch("Berlin", "Berlinn", 0.1)])
        sets = builder.sets()
        assert len(sets) == 1
        assert set(sets[0].members) == {("c1", "Berlin"), ("c2", "Berlinn")}

    def test_transitive_union_across_columns(self):
        builder = MatchSetBuilder()
        builder.add_matches("c1", "c2", [ValueMatch("a", "b", 0.1)])
        builder.add_matches("c2", "c3", [ValueMatch("b", "c", 0.1)])
        sets = builder.sets()
        assert len(sets) == 1
        assert len(sets[0]) == 3

    def test_same_string_in_different_columns_stays_distinct_until_matched(self):
        builder = MatchSetBuilder()
        builder.add_column("c1", ["x"])
        builder.add_column("c2", ["x"])
        assert len(builder.sets()) == 2

    def test_matched_pairs_enumeration(self):
        builder = MatchSetBuilder()
        builder.add_matches("c1", "c2", [ValueMatch("a", "b", 0.1)])
        builder.add_matches("c1", "c3", [ValueMatch("a", "c", 0.1)])
        pairs = builder.matched_pairs()
        assert len(pairs) == 3  # 3 items in one set -> 3 unordered pairs
