"""Equivalence tests for the vectorised ANN hot paths.

The PR that vectorised :mod:`repro.matching.ann` kept the original per-query
Python loops as module-level reference implementations
(:func:`~repro.matching.ann._probe_direction_reference` and
:func:`~repro.matching.ann._brute_force_reference`) precisely so this file
can assert the contract the vectorisation promised: **byte-identical
candidate sets and tie-break order** across seeds, table counts and
adversarial (duplicate-heavy, skewed) vocabularies.  The benchmark reuses the
same references as its speedup baseline.

Vocabularies are generated directly as unit vectors — the probe operates on
embeddings, so generating the vectors (instead of texts routed through an
embedder) lets the tests plant exact duplicates and tight clusters, the cases
where tie-breaking actually bites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching.ann import (
    IVF_PROBES,
    SemanticBlocker,
    _brute_force_reference,
    _probe_direction_reference,
)
from repro.embeddings.transformer import SimulatedTransformerEmbedder
from repro.storage.store import ArtifactStore


def _unit(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return vectors / norms


def random_vectors(n: int, dimension: int, seed: int) -> np.ndarray:
    """Generic vocabulary: i.i.d. unit vectors."""
    rng = np.random.default_rng(seed)
    return _unit(rng.standard_normal((n, dimension)))


def duplicate_heavy_vectors(n: int, dimension: int, seed: int) -> np.ndarray:
    """Few distinct vectors, many exact repeats — maximal tie pressure."""
    rng = np.random.default_rng(seed)
    base = _unit(rng.standard_normal((max(2, n // 8), dimension)))
    return base[rng.integers(0, base.shape[0], size=n)]


def skewed_vectors(n: int, dimension: int, seed: int) -> np.ndarray:
    """Most vectors huddle around one direction — degenerate LSH buckets."""
    rng = np.random.default_rng(seed)
    anchor = _unit(rng.standard_normal((1, dimension)))
    noise = 0.05 * rng.standard_normal((n, dimension))
    clustered = _unit(anchor + noise)
    outliers = _unit(rng.standard_normal((max(1, n // 10), dimension)))
    clustered[: outliers.shape[0]] = outliers
    return clustered


VOCABULARIES = {
    "random": random_vectors,
    "duplicate_heavy": duplicate_heavy_vectors,
    "skewed": skewed_vectors,
}


def _embedder():
    return SimulatedTransformerEmbedder(model_name="equiv", noise_level=0.1)


class TestProbeEquivalence:
    """Vectorised ``_probe_direction`` == the removed per-query loop."""

    @pytest.mark.parametrize("vocabulary", sorted(VOCABULARIES))
    @pytest.mark.parametrize("seed", [0, 7, 97])
    @pytest.mark.parametrize("n_tables,n_bits", [(1, 4), (4, 6), (8, 8)])
    def test_probe_matches_reference(self, vocabulary, seed, n_tables, n_bits):
        make = VOCABULARIES[vocabulary]
        queries = make(90, 24, seed)
        index = make(110, 24, seed + 1)
        blocker = SemanticBlocker(
            _embedder(),
            top_k=3,
            n_tables=n_tables,
            n_bits=n_bits,
            seed=seed,
            min_similarity=0.1,
        )
        planes = blocker._hyperplanes(queries.shape[1])
        query_codes = blocker._codes(queries, planes)
        index_codes = blocker._codes(index, planes)
        vectorised = blocker._probe_direction(queries, query_codes, index, index_codes)
        reference = _probe_direction_reference(
            queries,
            query_codes,
            index,
            index_codes,
            n_tables=n_tables,
            n_bits=n_bits,
            top_k=blocker.top_k,
            min_similarity=blocker.min_similarity,
        )
        assert vectorised == reference

    def test_exact_duplicate_ties_break_identically(self):
        """All-duplicate vocabularies put every rank boundary on a tie."""
        base = random_vectors(3, 16, seed=5)
        queries = base[np.zeros(40, dtype=np.int64)]
        index = base[np.tile(np.arange(3), 20)]
        blocker = SemanticBlocker(_embedder(), top_k=4, n_bits=4, seed=5)
        planes = blocker._hyperplanes(16)
        query_codes = blocker._codes(queries, planes)
        index_codes = blocker._codes(index, planes)
        vectorised = blocker._probe_direction(queries, query_codes, index, index_codes)
        assert vectorised == _probe_direction_reference(
            queries,
            query_codes,
            index,
            index_codes,
            n_tables=blocker.n_tables,
            n_bits=blocker.n_bits,
            top_k=blocker.top_k,
            min_similarity=blocker.min_similarity,
        )

    def test_wide_codes_match_reference(self):
        """``n_bits > 20`` routes around the dense offset table.

        The searchsorted fallback branch must stay byte-identical too — it is
        the path the dense-table property tests above never touch.
        """
        queries = random_vectors(60, 24, seed=11)
        index = random_vectors(80, 24, seed=12)
        blocker = SemanticBlocker(
            _embedder(), top_k=3, n_tables=2, n_bits=22, seed=11, min_similarity=0.1
        )
        planes = blocker._hyperplanes(24)
        query_codes = blocker._codes(queries, planes)
        index_codes = blocker._codes(index, planes)
        vectorised = blocker._probe_direction(queries, query_codes, index, index_codes)
        assert vectorised == _probe_direction_reference(
            queries,
            query_codes,
            index,
            index_codes,
            n_tables=2,
            n_bits=22,
            top_k=3,
            min_similarity=0.1,
        )

    def test_probe_counts_candidates(self):
        queries = random_vectors(50, 16, seed=1)
        index = random_vectors(50, 16, seed=2)
        blocker = SemanticBlocker(_embedder(), n_bits=4, seed=1)
        planes = blocker._hyperplanes(16)
        blocker._probe_direction(
            queries, blocker._codes(queries, planes), index, blocker._codes(index, planes)
        )
        assert blocker.last_probe_candidates > 0


class TestBruteForceEquivalence:
    """argpartition top-k == the removed row/column sort loops."""

    @pytest.mark.parametrize("vocabulary", sorted(VOCABULARIES))
    @pytest.mark.parametrize("seed", [0, 13])
    @pytest.mark.parametrize("top_k", [1, 3, 8])
    def test_brute_force_matches_reference(self, vocabulary, seed, top_k):
        make = VOCABULARIES[vocabulary]
        left = make(70, 24, seed)
        right = make(55, 24, seed + 1)
        blocker = SemanticBlocker(_embedder(), top_k=top_k, min_similarity=0.1)
        assert blocker._brute_force_pairs(left, right) == _brute_force_reference(
            left, right, top_k=top_k, min_similarity=0.1
        )

    def test_quantised_ties_break_identically(self):
        """Coarse-grid vectors force exact similarity ties across columns."""
        rng = np.random.default_rng(3)
        left = _unit(rng.integers(0, 2, size=(40, 6)).astype(np.float64) + 0.5)
        right = _unit(rng.integers(0, 2, size=(40, 6)).astype(np.float64) + 0.5)
        for top_k in (1, 2, 5):
            blocker = SemanticBlocker(_embedder(), top_k=top_k)
            assert blocker._brute_force_pairs(left, right) == _brute_force_reference(
                left, right, top_k=top_k, min_similarity=0.0
            )

    def test_top_k_wider_than_matrix(self):
        left = random_vectors(6, 8, seed=0)
        right = random_vectors(4, 8, seed=1)
        blocker = SemanticBlocker(_embedder(), top_k=50, min_similarity=0.05)
        assert blocker._brute_force_pairs(left, right) == _brute_force_reference(
            left, right, top_k=50, min_similarity=0.05
        )


class TestIvfIndex:
    def _blocker(self, **kwargs):
        kwargs.setdefault("brute_force_cells", 0)
        return SemanticBlocker(_embedder(), **kwargs)

    def test_forced_ivf_is_deterministic(self):
        values = [f"value number {index}" for index in range(120)]
        others = [f"entry number {index}" for index in range(120)]
        first = self._blocker(ann_index="ivf", seed=11)
        second = self._blocker(ann_index="ivf", seed=11)
        pairs = first.candidate_pairs(values, others)
        assert first.last_index_kind == "ivf"
        assert first.last_used_lsh  # "an index ran" compatibility flag
        assert pairs == second.candidate_pairs(values, others)
        assert pairs == first.candidate_pairs(values, others)

    def test_ivf_recovers_identity_neighbours(self):
        """Every value's own duplicate must survive IVF candidate pruning."""
        values = [f"shared city {index}" for index in range(150)]
        blocker = self._blocker(ann_index="ivf", top_k=3)
        pairs = blocker.candidate_pairs(values, list(values))
        assert {(index, index) for index in range(150)} <= set(pairs)

    def test_ivf_probe_matches_bruteforce_on_tight_clusters(self):
        """With every cluster probed, IVF degenerates to exact top-k."""
        vectors = random_vectors(IVF_PROBES, 16, seed=4)  # n_clusters <= IVF_PROBES
        blocker = self._blocker(ann_index="ivf", top_k=2, min_similarity=0.0)
        pairs = blocker._ivf_probe(vectors, vectors, None)
        exact = {
            (q, c)
            for q, c in _brute_force_reference(
                vectors, vectors, top_k=2, min_similarity=0.0
            )
            # reference probes both directions; _ivf_probe only one
            if (q, c)
            in _probe_rows(vectors, top_k=2)
        }
        assert pairs == exact

    def test_skew_fallback_engages_and_counts(self):
        # 200 near-identical strings: one dominant LSH bucket per table.
        values = ["the same repeated phrase"] * 200
        others = [f"distinct entry {index}" for index in range(200)]
        blocker = self._blocker(ann_index="lsh", top_k=2)
        blocker.candidate_pairs(values, others)
        assert blocker.last_bucket_skew > blocker.skew_threshold
        assert blocker.last_index_kind == "ivf"
        assert blocker.skew_fallbacks == 1

    def test_uniform_vocabulary_stays_on_lsh(self):
        values = [f"left item {index}" for index in range(100)]
        others = [f"right item {index}" for index in range(100)]
        blocker = self._blocker(ann_index="lsh")
        blocker.candidate_pairs(values, others)
        assert blocker.last_index_kind in ("lsh", "ivf")
        if blocker.last_index_kind == "lsh":
            assert blocker.skew_fallbacks == 0

    def test_skew_threshold_one_disables_fallback(self):
        values = ["the same repeated phrase"] * 200
        others = [f"distinct entry {index}" for index in range(200)]
        blocker = self._blocker(ann_index="lsh", skew_threshold=1.0)
        blocker.candidate_pairs(values, others)
        assert blocker.last_index_kind == "lsh"
        assert blocker.skew_fallbacks == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SemanticBlocker(_embedder(), ann_index="faiss")
        with pytest.raises(ValueError):
            SemanticBlocker(_embedder(), skew_threshold=0.0)
        with pytest.raises(ValueError):
            SemanticBlocker(_embedder(), skew_threshold=1.5)

    def test_ivf_store_round_trip(self, tmp_path):
        values = [f"stored value {index}" for index in range(90)]
        others = [f"stored entry {index}" for index in range(90)]
        embedder = _embedder()
        cold = SemanticBlocker(
            embedder, ann_index="ivf", brute_force_cells=0, store=ArtifactStore(tmp_path)
        )
        cold_pairs = cold.candidate_pairs(values, others)
        assert cold.index_builds == 2
        assert cold.index_saves == 2
        warm = SemanticBlocker(
            embedder, ann_index="ivf", brute_force_cells=0, store=ArtifactStore(tmp_path)
        )
        warm_pairs = warm.candidate_pairs(values, others)
        assert warm.index_loads == 2
        assert warm.index_builds == 0
        assert warm_pairs == cold_pairs

    def test_store_never_changes_ivf_candidates(self, tmp_path):
        values = [f"plain value {index}" for index in range(80)]
        others = [f"plain entry {index}" for index in range(80)]
        embedder = _embedder()
        plain = SemanticBlocker(embedder, ann_index="ivf", brute_force_cells=0)
        stored = SemanticBlocker(
            embedder, ann_index="ivf", brute_force_cells=0, store=ArtifactStore(tmp_path)
        )
        assert plain.candidate_pairs(values, others) == stored.candidate_pairs(
            values, others
        )


def _probe_rows(vectors: np.ndarray, *, top_k: int):
    """Row-direction exact top-k pairs (helper for the one-direction check)."""
    similarities = vectors @ vectors.T
    order = np.argsort(-similarities, axis=1, kind="stable")[:, :top_k]
    return {
        (row, int(column))
        for row in range(vectors.shape[0])
        for column in order[row]
    }
