"""Tests for the distance functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import FastTextEmbedder, MistralEmbedder
from repro.matching.distance import (
    EmbeddingDistance,
    JaccardTokenDistance,
    LevenshteinDistance,
    available_distances,
    cosine_distance_matrix,
)


class TestCosineDistanceMatrix:
    def test_identical_rows_have_zero_distance(self):
        matrix = np.eye(3)
        distances = cosine_distance_matrix(matrix, matrix)
        assert np.allclose(np.diag(distances), 0.0)

    def test_orthogonal_rows_have_distance_one(self):
        left = np.array([[1.0, 0.0]])
        right = np.array([[0.0, 1.0]])
        assert cosine_distance_matrix(left, right)[0, 0] == pytest.approx(1.0)

    def test_shape(self):
        left = np.random.default_rng(0).standard_normal((3, 8))
        right = np.random.default_rng(1).standard_normal((5, 8))
        assert cosine_distance_matrix(left, right).shape == (3, 5)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_distance_matrix(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            cosine_distance_matrix(np.zeros(3), np.zeros((2, 3)))


class TestLexicalDistances:
    def test_levenshtein_identity(self):
        assert LevenshteinDistance().distance("Berlin", "berlin") == 0.0

    def test_levenshtein_range(self):
        assert 0.0 < LevenshteinDistance().distance("Berlin", "Berlinn") < 0.3

    def test_jaccard_identity(self):
        assert JaccardTokenDistance().distance("New Delhi", "delhi new") == 0.0

    def test_jaccard_disjoint(self):
        assert JaccardTokenDistance().distance("Berlin", "Boston") == 1.0

    @given(st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_distances_bounded(self, left, right):
        for distance in (LevenshteinDistance(), JaccardTokenDistance()):
            assert 0.0 <= distance.distance(left, right) <= 1.0

    def test_matrix_matches_pointwise(self):
        distance = LevenshteinDistance()
        left = ["Berlin", "Boston"]
        right = ["Berlinn", "Toronto"]
        matrix = distance.matrix(left, right)
        assert matrix[0, 0] == pytest.approx(distance.distance("Berlin", "Berlinn"))
        assert matrix.shape == (2, 2)


class TestEmbeddingDistance:
    def test_matches_embedder_cosine(self, mistral_embedder):
        distance = EmbeddingDistance(mistral_embedder)
        direct = mistral_embedder.cosine_distance("Berlin", "Berlinn")
        assert distance.distance("Berlin", "Berlinn") == pytest.approx(min(1.0, direct), abs=1e-9)

    def test_matrix_shape_and_symmetric_values(self, fasttext_embedder):
        distance = EmbeddingDistance(fasttext_embedder)
        matrix = distance.matrix(["a", "b"], ["a", "b", "c"])
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_empty_inputs(self, fasttext_embedder):
        distance = EmbeddingDistance(fasttext_embedder)
        assert distance.matrix([], ["x"]).shape == (0, 1)

    def test_available_distances_includes_embedding(self, fasttext_embedder):
        names = [distance.name for distance in available_distances(fasttext_embedder)]
        assert any(name.startswith("cosine") for name in names)
        assert "levenshtein" in names
