"""Tests for the bipartite assignment solvers."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.matching.assignment import (
    GreedyAssignment,
    HungarianAssignment,
    ScipyAssignment,
    available_solvers,
    get_assignment_solver,
)

EXACT_SOLVERS = [ScipyAssignment, HungarianAssignment]
ALL_SOLVERS = EXACT_SOLVERS + [GreedyAssignment]


def brute_force_minimum(cost: np.ndarray) -> float:
    """Optimal assignment cost by enumerating permutations (small matrices only)."""
    rows, cols = cost.shape
    transposed = rows > cols
    matrix = cost.T if transposed else cost
    best = float("inf")
    size = matrix.shape[0]
    for permutation in itertools.permutations(range(matrix.shape[1]), size):
        total = sum(matrix[i, permutation[i]] for i in range(size))
        best = min(best, total)
    return best


class TestSolverRegistry:
    def test_available(self):
        assert set(available_solvers()) == {"scipy", "hungarian", "greedy"}

    def test_get_by_name(self):
        assert get_assignment_solver("hungarian").name == "hungarian"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_assignment_solver("magic")


class TestAssignmentBasics:
    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_identity_matrix_prefers_diagonal(self, solver_cls):
        cost = np.ones((3, 3)) - np.eye(3)
        pairs = solver_cls().solve(cost)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_rectangular_wide(self, solver_cls):
        cost = np.array([[0.1, 0.9, 0.5], [0.8, 0.2, 0.4]])
        pairs = solver_cls().solve(cost)
        assert len(pairs) == 2
        rows = [row for row, _ in pairs]
        cols = [col for _, col in pairs]
        assert len(set(rows)) == 2 and len(set(cols)) == 2

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_rectangular_tall(self, solver_cls):
        cost = np.array([[0.1, 0.9], [0.8, 0.2], [0.5, 0.6]])
        pairs = solver_cls().solve(cost)
        assert len(pairs) == 2

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_empty_matrix(self, solver_cls):
        assert solver_cls().solve(np.zeros((0, 3))) == []

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_single_cell(self, solver_cls):
        assert solver_cls().solve(np.array([[0.3]])) == [(0, 0)]

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_rejects_non_finite(self, solver_cls):
        with pytest.raises(ValueError):
            solver_cls().solve(np.array([[np.nan]]))

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_rejects_non_2d(self, solver_cls):
        with pytest.raises(ValueError):
            solver_cls().solve(np.zeros(3))


class TestOptimality:
    @pytest.mark.parametrize("solver_cls", EXACT_SOLVERS)
    def test_known_optimum(self, solver_cls):
        cost = np.array(
            [
                [4.0, 1.0, 3.0],
                [2.0, 0.0, 5.0],
                [3.0, 2.0, 2.0],
            ]
        )
        assert solver_cls().total_cost(cost) == pytest.approx(5.0)

    def test_greedy_can_be_suboptimal(self):
        cost = np.array([[1.0, 2.0], [1.0, 100.0]])
        greedy = GreedyAssignment().total_cost(cost)
        optimal = ScipyAssignment().total_cost(cost)
        assert greedy >= optimal

    @given(
        npst.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(0, 10, allow_nan=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_hungarian_matches_scipy_and_brute_force(self, cost):
        scipy_cost = ScipyAssignment().total_cost(cost)
        hungarian_cost = HungarianAssignment().total_cost(cost)
        brute = brute_force_minimum(cost)
        assert hungarian_cost == pytest.approx(scipy_cost, abs=1e-9)
        assert hungarian_cost == pytest.approx(brute, abs=1e-9)

    @given(
        npst.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_assignments_are_valid_matchings(self, cost):
        for solver_cls in ALL_SOLVERS:
            pairs = solver_cls().solve(cost)
            rows = [row for row, _ in pairs]
            cols = [col for _, col in pairs]
            assert len(set(rows)) == len(rows)
            assert len(set(cols)) == len(cols)
            assert len(pairs) == min(cost.shape)
