"""Smoke tests for the benchmark harnesses in ``benchmarks/``.

The real benchmarks run at paper scale; these tests import their harness
functions and run them at miniature scale to guarantee they stay executable as
the library evolves.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCHMARK_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load(module_name: str):
    path = BENCHMARK_DIR / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


class TestTable1Harness:
    def test_small_run_orders_models_sensibly(self):
        module = _load("bench_table1_value_matching")
        scores = module.run_table1(n_sets=4, values_per_column=25, models=("fasttext", "mistral"))
        assert set(scores) == {"fasttext", "mistral"}
        assert scores["mistral"].f1 >= scores["fasttext"].f1


class TestDownstreamEmHarness:
    def test_small_run_produces_both_methods(self):
        module = _load("bench_downstream_em")
        scores = module.run_downstream_em(n_sets=1, entities_per_set=20)
        assert set(scores) == {"regular_fd", "fuzzy_fd"}
        assert 0.0 <= scores["fuzzy_fd"].f1 <= 1.0


class TestFigure3Harness:
    def test_small_sweep_runs(self):
        module = _load("bench_fig3_runtime")
        points = module.run_runtime_sweep(sizes=[120])
        assert len(points) == 2


class TestAblationHarnesses:
    def test_threshold_ablation(self):
        module = _load("bench_ablation_threshold")
        results = module.run_threshold_ablation(
            thresholds=(0.5, 0.7), n_sets=3, values_per_column=20
        )
        assert set(results) == {0.5, 0.7}

    def test_fd_algorithm_ablation(self):
        module = _load("bench_ablation_fd_algorithms")
        results = module.run_fd_ablation(total_tuples=120, algorithms=("alite", "incremental"))
        assert set(results) == {"alite", "incremental"}
        counts = {stats["output_tuples"] for stats in results.values()}
        assert len(counts) == 1  # all algorithms agree on the result size

    def test_assignment_ablation(self):
        module = _load("bench_ablation_assignment")
        results = module.run_assignment_ablation(n_sets=3, values_per_column=20)
        assert set(results) == {"scipy", "hungarian", "greedy"}

    def test_representative_ablation(self):
        module = _load("bench_ablation_representatives")
        results = module.run_representative_ablation(n_sets=3, values_per_column=20)
        assert set(results) == {"frequency", "first_column", "longest", "shortest"}

    def test_blocking_ablation(self):
        module = _load("bench_ablation_blocking")
        results = module.run_blocking_ablation(n_sets=2, values_per_column=20)
        assert set(results) == {"exhaustive", "blocked"}
        assert results["blocked"]["scored_pair_fraction"] <= 1.0

    def test_blocking_scale_benchmark(self):
        module = _load("bench_ablation_blocking")
        scale = module.run_component_scale_benchmark(n_values=150)
        assert scale["identical_matches"] == 1.0
        assert scale["component_peak_matrix"] <= scale["dense_peak_matrix"]
        assert scale["components"] > 1.0
        assert module.scale_report(scale)


class TestParallelAblationHarness:
    def test_small_run_produces_identical_matches_everywhere(self, tmp_path):
        module = _load("bench_ablation_parallel")
        payload = module.run_all(
            n_values=150, group_size=4, n_requests=2, key_values=2500
        )
        assert payload["singleton_fastpath"]["identical_matches"] == 1.0
        assert payload["end_to_end"]["identical_matches"]
        assert all(run["identical_matches"] for run in payload["worker_scaling"]["runs"])
        assert payload["engine_pool"]["identical_results"] == 1.0
        assert all(run["identical_keys"] for run in payload["surface_keys"]["runs"])
        assert module.report(payload)
        written = module.write_json(payload, str(tmp_path / "BENCH_parallel.json"))
        assert written.exists()

    def test_workloads_are_deterministic(self):
        module = _load("bench_ablation_parallel")
        assert module.singleton_workload(50) == module.singleton_workload(50)
        assert module.component_workload(48) == module.component_workload(48)
        left, right = module.mixed_workload(60)
        assert len(left) == len(right) == 60


class TestServiceHarness:
    def test_small_run_records_the_serving_claims(self, tmp_path):
        module = _load("bench_service")
        payload = module.run_all(n_requests=6, n_values=30, concurrency=2)
        steady = payload["steady_state"]
        assert steady["served"] == steady["requests"]
        assert steady["requests_per_second"] > 0.0
        assert steady["latency_p99_seconds"] >= steady["latency_p50_seconds"]
        cycle = payload["warm_vs_cold"]
        # The acceptance claim: a warm-store service makes zero raw embeds.
        assert cycle["warm_raw_embeds"] == 0.0
        burst = payload["admission_burst"]
        assert burst["rejected"] > 0.0
        assert burst["only_ok_or_overloaded"] == 1.0
        assert burst["accounted"] == 1.0
        assert burst["max_rejection_seconds"] < 0.050
        assert module.report(payload)
        written = module.write_json(payload, str(tmp_path / "BENCH_service.json"))
        assert written.exists()

    def test_workload_cycles_a_distinct_pool(self):
        module = _load("bench_service")
        workload = module.request_workload(8, 20, distinct=2)
        assert len(workload) == 8
        assert workload[0] is workload[2] and workload[1] is workload[3]
        assert workload[0] is not workload[1]
        # Deterministic across calls — benchmarks must be re-runnable.
        again = module.request_workload(8, 20, distinct=2)
        assert workload[0][0].rows == again[0][0].rows


class TestStoreHarnessFloor:
    def test_warm_start_records_a_floor(self):
        module = _load("bench_store")
        warm_start = module.run_warm_start_benchmark(n_values=120)
        assert warm_start["floor_seconds"] >= warm_start["warm_seconds"]
        assert warm_start["floor_seconds"] >= 0.25
        assert warm_start["warm_raw_embeds"] == 0.0

    def test_check_floor_passes_on_a_fresh_record(self, tmp_path, capsys):
        module = _load("bench_store")
        payload = {
            "benchmark": "bench-store",
            "warm_start": module.run_warm_start_benchmark(n_values=120),
        }
        record = tmp_path / "BENCH_store.json"
        module.write_json(payload, str(record))
        assert module.check_floor(str(record)) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_floor_fails_on_a_stale_fast_floor(self, tmp_path):
        module = _load("bench_store")
        payload = {
            "benchmark": "bench-store",
            "warm_start": {"n_values": 120.0, "floor_seconds": 1e-9},
        }
        record = tmp_path / "BENCH_store.json"
        module.write_json(payload, str(record))
        assert module.check_floor(str(record)) == 1


class TestAnnAblationHarness:
    def test_small_run_records_the_acceptance_claims(self, tmp_path):
        module = _load("bench_ablation_ann")
        # probe_values stays small: the >= 5x speedup assert only arms at
        # full scale, and wall-clock ratios are too noisy for a unit test.
        payload = module.run_all(
            n_pairs=80, mixed_pairs=60, top_ks=(1, 3), probe_values=600
        )
        recall = payload["synonym_recall"]
        # Strict recall improvement at sub-dense cost — the PR's claim.
        assert recall["semantic"]["recall"] > recall["surface"]["recall"]
        assert recall["semantic"]["pairs_scored"] < recall["dense_cells"]
        mixed = payload["mixed_corruption"]
        assert mixed["modes"]["on"]["recall"] > mixed["modes"]["off"]["recall"]
        assert mixed["modes"]["on"]["pairs_scored"] < mixed["dense_cells"]
        probe = payload["probe_speedup"]
        # Byte-identity of the candidate sets is asserted inside the run;
        # the floor recorded here is what --check-floor guards in CI.
        assert probe["identical_pairs"]
        assert probe["floor_seconds"] >= probe["vectorised_seconds"]
        assert module.report(payload)
        written = module.write_json(payload, str(tmp_path / "BENCH_ann.json"))
        assert written.exists()

    def test_workloads_are_deterministic(self):
        module = _load("bench_ablation_ann")
        first = module.synonym_vocabulary(30)
        second = module.synonym_vocabulary(30)
        assert first[0] == second[0] and first[1] == second[1]
        mixed_first = module.corruption_workload(40)
        mixed_second = module.corruption_workload(40)
        assert mixed_first[0] == mixed_second[0] and mixed_first[1] == mixed_second[1]

    def test_planted_pairs_share_no_surface(self):
        """The workload's premise: zero surface candidates by construction."""
        from repro.matching.blocking import ValueBlocker

        module = _load("bench_ablation_ann")
        left, right, _ = module.synonym_vocabulary(30)
        blocker = ValueBlocker(use_lexicon=False)
        assert blocker.candidate_pairs(left, right) == []
