"""Chaos suite: corrupt store artifacts are quarantined, never fatal.

A truncated ``matrix.npy`` (torn write, disk fault) must not crash a load,
must not be retried forever, and must not block a healthy republish of the
same fingerprints.  The store counts the corruption, renames the artifact
directory into ``quarantine/`` and reports the segment as absent — the
caller re-embeds and republishes into the now-vacant path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.storage.store import ArtifactStore
from repro.table import Table
from repro.testing import corrupt_array_file

KEYS = ["alpha", "beta", "gamma"]
MATRIX = np.arange(12, dtype=np.float32).reshape(3, 4)


def _published_store(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    assert store.save_embedding_segment("emb-fp", "corpus-fp", KEYS, MATRIX)
    return store


class TestQuarantine:
    def test_corrupt_segment_is_quarantined_and_reported_absent(self, tmp_path):
        store = _published_store(tmp_path)
        segment_dir = store.root / "embeddings" / "emb-fp" / "corpus-fp"
        corrupt_array_file(segment_dir / "matrix.npy")

        assert store.load_embedding_segment("emb-fp", "corpus-fp") is None
        stats = store.statistics()
        assert stats["corrupt_entries"] == 1
        assert stats["corrupt_segments"] == 1
        # The artifact moved out of the way...
        assert not segment_dir.exists()
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert "corpus-fp" in quarantined[0].name
        # ...and is no longer listed.
        assert store.list_embedding_segments("emb-fp") == []

    def test_vacated_path_accepts_a_healing_republish(self, tmp_path):
        store = _published_store(tmp_path)
        segment_dir = store.root / "embeddings" / "emb-fp" / "corpus-fp"
        corrupt_array_file(segment_dir / "matrix.npy")
        assert store.load_embedding_segment("emb-fp", "corpus-fp") is None

        assert store.save_embedding_segment("emb-fp", "corpus-fp", KEYS, MATRIX)
        keys, matrix = store.load_embedding_segment("emb-fp", "corpus-fp")
        assert keys == KEYS
        np.testing.assert_array_equal(np.asarray(matrix), MATRIX)

    def test_read_only_store_counts_but_does_not_move(self, tmp_path):
        writable = _published_store(tmp_path)
        segment_dir = writable.root / "embeddings" / "emb-fp" / "corpus-fp"
        corrupt_array_file(segment_dir / "matrix.npy")

        reader = ArtifactStore(writable.root, mode="read")
        assert reader.load_embedding_segment("emb-fp", "corpus-fp") is None
        assert reader.statistics()["corrupt_segments"] == 1
        assert segment_dir.exists()  # a reader never mutates the tree

    def test_two_corrupt_segments_get_distinct_quarantine_names(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for corpus in ("corpus-a", "corpus-b"):
            assert store.save_embedding_segment("emb-fp", corpus, KEYS, MATRIX)
            corrupt_array_file(
                store.root / "embeddings" / "emb-fp" / corpus / "matrix.npy"
            )
            assert store.load_embedding_segment("emb-fp", corpus) is None
        assert store.statistics()["corrupt_segments"] == 2
        assert len(list((store.root / "quarantine").iterdir())) == 2


class TestEngineSurfacesCorruption:
    TABLES = [
        Table(
            "A",
            ["City"],
            [("Berlinn",), ("Toronto",), ("Barcelona",), ("Boston",)],
        ),
        Table(
            "B",
            ["City"],
            [("Berlin",), ("Toronto",), ("barcelona",), ("Chicago",)],
        ),
    ]

    def test_corruption_delta_lands_in_result_timings(self, tmp_path):
        config = FuzzyFDConfig(store_dir=tmp_path / "store", store_mode="readwrite")
        engine = IntegrationEngine(config)
        baseline = engine.integrate(self.TABLES)
        assert baseline.timings.get("store_corrupt_segments", 0.0) == 0.0

        # Publish an extra segment and corrupt it, then trip over it *inside*
        # the next request (the on_stage hook runs between pipeline stages,
        # exactly where the matcher's own store loads happen).
        assert engine.store.save_embedding_segment("other-fp", "corpus-fp", KEYS, MATRIX)
        corrupt_array_file(
            engine.store.root / "embeddings" / "other-fp" / "corpus-fp" / "matrix.npy"
        )

        def load_during_request(stage):
            if stage == "match":
                assert engine.store.load_embedding_segment("other-fp", "corpus-fp") is None

        tainted = engine.integrate(self.TABLES, on_stage=load_during_request)
        assert tainted.table.rows == baseline.table.rows
        assert tainted.timings.get("store_corrupt_segments", 0.0) == 1.0
        # A later clean request carries no stale delta.
        clean = engine.integrate(self.TABLES)
        assert clean.timings.get("store_corrupt_segments", 0.0) == 0.0

    def test_construction_time_corruption_counts_in_store_statistics(self, tmp_path):
        config = FuzzyFDConfig(store_dir=tmp_path / "store", store_mode="readwrite")
        baseline = IntegrationEngine(config).integrate(self.TABLES)
        for matrix_file in (tmp_path / "store").rglob("matrix.npy"):
            corrupt_array_file(matrix_file)
        # Embedding segments attach when the engine builds its tiered cache,
        # so this corruption is found before any request: it is counted in
        # the store statistics (not a request trace) and healed by re-embed
        # plus republish.
        restarted = IntegrationEngine(config)
        assert restarted.store.statistics()["corrupt_segments"] >= 1
        recovered = restarted.integrate(self.TABLES)
        assert recovered.table.rows == baseline.table.rows
        assert recovered.timings.get("store_published_rows", 0.0) > 0
