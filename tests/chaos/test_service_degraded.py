"""Chaos suite: the serving layer under a failing embedder.

An open breaker must never turn into an unhandled 500: under
``degraded_mode="surface"`` requests keep succeeding (marked degraded in
their trace, ``/healthz`` reports ``degraded``), under ``"fail"`` they get
a typed 503 with a ``Retry-After`` derived from the breaker's remaining
open window, and once the backend heals responses are byte-identical to a
never-failed service.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import FuzzyFDConfig
from repro.embeddings import MistralEmbedder
from repro.embeddings.resilient import ResilientEmbedder
from repro.service import (
    EmbedderUnavailableResponse,
    IntegrationResponse,
    IntegrationService,
)
from repro.service.http import start_http_server
from repro.table import Table
from repro.testing import FaultInjector, FaultyEmbedder

TABLES = [
    Table("T1", ["City"], [("Berlinn",), ("Toronto",), ("Barcelona",)]),
    Table("T2", ["City"], [("Berlin",), ("Toronto",), ("barcelona",)]),
]


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


def _service(degraded_mode, *, clock=None, fail=True, breaker_reset_ms=60_000.0):
    injector = FaultInjector()
    if fail:
        injector.script("embed_many", fail_all=True)
        injector.script("embed", fail_all=True)
    kwargs = dict(
        retry_max_attempts=1,
        retry_backoff_ms=0.01,
        breaker_failure_threshold=1,
        breaker_reset_ms=breaker_reset_ms,
        sleep=lambda seconds: None,
    )
    if clock is not None:
        kwargs["clock"] = clock
    embedder = ResilientEmbedder(FaultyEmbedder(MistralEmbedder(), injector), **kwargs)
    config = FuzzyFDConfig(embedder=embedder, degraded_mode=degraded_mode)
    return IntegrationService(config), injector


async def _http_request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\nContent-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    header_lines = header_blob.decode().split("\r\n")
    status = int(header_lines[0].split(" ", 2)[1])
    headers = {}
    for line in header_lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob.decode())


INTEGRATE_BODY = {
    "tables": [
        {"name": "T1", "columns": ["City"], "rows": [["Berlinn"], ["Toronto"]]},
        {"name": "T2", "columns": ["City"], "rows": [["Berlin"], ["Toronto"]]},
    ]
}


class TestSurfaceMode:
    def test_open_breaker_serves_degraded_not_errors(self):
        async def main():
            service, _ = _service("surface")
            async with service:
                response = await service.integrate(TABLES)
                stats = service.stats()
                return response, stats

        response, stats = asyncio.run(main())
        assert isinstance(response, IntegrationResponse)
        assert response.trace.degraded is True
        assert response.trace.breaker_opens >= 1.0
        assert stats.served == 1
        assert stats.degraded_served == 1
        assert stats.breaker_state == "open"

    def test_healthz_reports_degraded_while_integrate_stays_200(self):
        async def main():
            service, _ = _service("surface")
            async with service:
                server = await start_http_server(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    integrate = await _http_request(port, "POST", "/integrate", INTEGRATE_BODY)
                    health = await _http_request(port, "GET", "/healthz")
                    stats = await _http_request(port, "GET", "/stats")
                finally:
                    server.close()
                    await server.wait_closed()
                return integrate, health, stats

        integrate, health, stats = asyncio.run(main())
        status, _, body = integrate
        assert status == 200
        assert body["trace"]["degraded"] is True
        status, _, body = health
        assert status == 200
        assert body["status"] == "degraded"
        assert body["breaker"]["state"] in ("open", "half_open")
        status, _, body = stats
        assert body["breaker_state"] == "open"
        assert body["degraded_served"] == 1

    def test_recovery_is_byte_identical_to_clean_service(self):
        async def main():
            clean_service, _ = _service("surface", fail=False)
            async with clean_service:
                clean = await clean_service.integrate(TABLES)

            clock = FakeClock()
            service, injector = _service("surface", clock=clock, breaker_reset_ms=1000.0)
            async with service:
                degraded = await service.integrate(TABLES)
                injector.heal()
                clock.advance_ms(1001.0)
                recovered = await service.integrate(TABLES)
                breaker_state = service.stats().breaker_state
            return clean, degraded, recovered, breaker_state

        clean, degraded, recovered, breaker_state = asyncio.run(main())
        assert degraded.trace.degraded is True
        assert recovered.trace.degraded is False
        assert breaker_state == "closed"
        assert recovered.result.table.rows == clean.result.table.rows


class TestFailMode:
    def test_unavailable_response_with_retry_window(self):
        async def main():
            service, _ = _service("fail")
            async with service:
                first = await service.integrate(TABLES)
                second = await service.integrate(TABLES)
                stats = service.stats()
            return first, second, stats

        first, second, stats = asyncio.run(main())
        # The very first request trips the breaker mid-flight and surfaces
        # the typed outcome; later requests are short-circuited the same way.
        for response in (first, second):
            assert isinstance(response, EmbedderUnavailableResponse)
            assert response.status == "unavailable"
            assert response.retry_after_ms > 0.0
        assert stats.unavailable == 2
        assert stats.served == 0

    def test_http_503_with_retry_after_header(self):
        async def main():
            service, _ = _service("fail", breaker_reset_ms=45_000.0)
            async with service:
                server = await start_http_server(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    integrate = await _http_request(port, "POST", "/integrate", INTEGRATE_BODY)
                    health = await _http_request(port, "GET", "/healthz")
                finally:
                    server.close()
                    await server.wait_closed()
            return integrate, health

        integrate, health = asyncio.run(main())
        status, headers, body = integrate
        assert status == 503
        assert body["status"] == "unavailable"
        assert body["retry_after_ms"] > 0.0
        assert 1 <= int(headers["retry-after"]) <= 45
        status, headers, body = health
        assert status == 503
        assert body["status"] == "unhealthy"
        assert "retry-after" in headers
