"""Chaos suite: the process executor survives worker death.

A worker killed mid-batch (``os._exit`` — what a segfault or OOM-kill looks
like to the pool) breaks the whole ``ProcessPoolExecutor``.
``run_partitioned`` must not hang or lose work: the pool is rebuilt once
and only the failed batches re-run; a second breakage degrades to a serial
in-process finish.  Either way the merged result is byte-identical to the
serial backend.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.testing import crash_once
from repro.utils import executor as executor_module
from repro.utils.executor import ExecutorConfig, executor_statistics, run_partitioned

ITEMS = list(range(24))
EXPECTED = [float(item) * float(item) for item in ITEMS]

PROCESS_CONFIG = ExecutorConfig(
    backend="process", max_workers=2, batch_size=2, min_parallel_items=1
)


class TestWorkerDeath:
    def test_crashed_worker_never_changes_results(self, tmp_path):
        marker = tmp_path / "crash-marker"
        task = partial(crash_once, marker=str(marker))
        before = executor_statistics()
        results = run_partitioned(ITEMS, task, PROCESS_CONFIG)
        after = executor_statistics()
        assert results == EXPECTED
        assert marker.exists()  # the crash genuinely happened
        assert after["pool_rebuilds"] == before["pool_rebuilds"] + 1
        assert after["batches_retried"] > before["batches_retried"]

    def test_pool_is_healthy_again_after_recovery(self, tmp_path):
        marker = tmp_path / "crash-marker"
        run_partitioned(ITEMS, partial(crash_once, marker=str(marker)), PROCESS_CONFIG)
        before = executor_statistics()
        # The rebuilt pool serves subsequent runs without further recovery.
        results = run_partitioned(
            ITEMS, partial(crash_once, marker=str(marker)), PROCESS_CONFIG
        )
        assert results == EXPECTED
        assert executor_statistics() == before


class _DeadPool:
    """A pool whose submissions always fail — a pool broken beyond rebuild."""

    def submit(self, *args, **kwargs):
        raise RuntimeError("cannot schedule new futures after shutdown")

    def shutdown(self, *args, **kwargs):
        pass


class TestSerialFallback:
    def test_two_broken_pools_fall_back_to_in_process_execution(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_process_pool", lambda workers: _DeadPool())
        before = executor_statistics()
        results = run_partitioned(ITEMS, _square, PROCESS_CONFIG)
        after = executor_statistics()
        assert results == [item * item for item in ITEMS]
        assert after["serial_fallbacks"] == before["serial_fallbacks"] + 1


def _square(value: int) -> int:
    """Module-level so the (never-reached) process path could pickle it."""
    return value * value
