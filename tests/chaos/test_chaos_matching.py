"""Chaos suite: fault-injected embedders through the full pipeline.

The scenarios the fault-tolerance layer must hold up under:

* transient embedding failures masked by retries — output byte-identical to
  a clean run;
* a hard-down embedder with ``degraded_mode="surface"`` — answers keep
  flowing from exact + surface-blocking matching, marked degraded;
* breaker recovery — once the backend heals and the reset window elapses,
  results are byte-identical to a never-failed run.

Every scenario is deterministic (scripted :class:`FaultInjector`, fake
clock, no wall-time dependence) and runs under the executor backend named
by ``REPRO_CHAOS_BACKEND`` (the CI chaos job sets ``thread`` and
``process``; the default here is ``thread``).
"""

from __future__ import annotations

import os

import pytest

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.embeddings.resilient import EmbedderUnavailable, ResilientEmbedder
from repro.table import Table
from repro.testing import FaultInjector, FaultyEmbedder

BACKEND = os.environ.get("REPRO_CHAOS_BACKEND", "thread")


def _tables():
    return [
        Table(
            "T1",
            ["City", "Country"],
            [
                ("Berlinn", "Germany"),
                ("Toronto", "Canada"),
                ("Barcelona", "Spain"),
                ("New Delhi", "India"),
            ],
        ),
        Table(
            "T2",
            ["Country", "City", "VaxRate"],
            [
                ("CA", "Toronto", "83%"),
                ("US", "Boston", "62%"),
                ("DE", "Berlin", "63%"),
                ("ES", "Barcelona", "82%"),
            ],
        ),
        Table(
            "T3",
            ["City", "TotalCases"],
            [("Berlin", "1.4M"), ("barcelona", "2.68M"), ("Boston", "263K")],
        ),
    ]


def _config(**kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("parallel_backend", BACKEND)
    kwargs.setdefault("retry_backoff_ms", 0.01)
    return FuzzyFDConfig(**kwargs)


def _wrapped(injector, *, clock=None, **knobs):
    """A resilient embedder over a fault-injected Mistral embedder."""
    knobs.setdefault("retry_backoff_ms", 0.01)
    kwargs = dict(knobs, sleep=lambda seconds: None)
    if clock is not None:
        kwargs["clock"] = clock
    return ResilientEmbedder(FaultyEmbedder(MistralEmbedder(), injector), **kwargs)


class FakeClock:
    def __init__(self) -> None:
        self.now = 500.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


@pytest.fixture()
def clean_result():
    return IntegrationEngine(_config()).integrate(_tables())


class TestRetriesMaskTransientFailures:
    def test_output_byte_identical_to_clean_run(self, clean_result):
        injector = FaultInjector()
        injector.script("embed_many", fail_cycle=(2, 3))
        injector.script("embed", fail_cycle=(2, 3))
        engine = IntegrationEngine(
            _config(embedder=_wrapped(injector, retry_max_attempts=3))
        )
        result = engine.integrate(_tables())
        assert result.table.columns == clean_result.table.columns
        assert result.table.rows == clean_result.table.rows
        # Faults genuinely fired and were masked by retries.
        stats = injector.statistics()
        assert any(op["injected"] > 0 for op in stats.values())
        assert engine.resilience_state()["state"] == "closed"
        assert engine.resilience_state()["retries"] > 0

    def test_retry_counters_surface_in_match_statistics(self):
        injector = FaultInjector().script("embed_many", fail_cycle=(1, 2))
        engine = IntegrationEngine(
            _config(embedder=_wrapped(injector, retry_max_attempts=2))
        )
        result = engine.integrate(_tables())
        total_retries = sum(
            vm.statistics.get("embedder_retries", 0.0)
            for vm in result.value_matching.values()
        )
        assert total_retries > 0


class TestOpenBreakerDegradedMode:
    def test_surface_mode_serves_degraded_results(self):
        injector = FaultInjector()
        injector.script("embed_many", fail_all=True)
        injector.script("embed", fail_all=True)
        engine = IntegrationEngine(
            _config(
                embedder=_wrapped(
                    injector, retry_max_attempts=1, breaker_failure_threshold=1
                ),
                degraded_mode="surface",
            )
        )
        result = engine.integrate(_tables())
        # Exact matches still merge: Toronto/Boston/Barcelona appear once.
        city_values = {row[result.table.columns.index("City")] for row in result.table.rows}
        assert "Toronto" in city_values
        assert any(
            vm.statistics.get("degraded", 0.0) > 0
            for vm in result.value_matching.values()
        )
        assert engine.resilience_state()["state"] == "open"

    def test_off_mode_propagates_unavailability(self):
        injector = FaultInjector()
        injector.script("embed_many", fail_all=True)
        injector.script("embed", fail_all=True)
        engine = IntegrationEngine(
            _config(
                embedder=_wrapped(
                    injector, retry_max_attempts=1, breaker_failure_threshold=1
                ),
                degraded_mode="off",
            )
        )
        with pytest.raises(EmbedderUnavailable):
            engine.integrate(_tables())

    def test_per_request_override_enables_surface_mode(self):
        injector = FaultInjector()
        injector.script("embed_many", fail_all=True)
        injector.script("embed", fail_all=True)
        engine = IntegrationEngine(
            _config(
                embedder=_wrapped(
                    injector, retry_max_attempts=1, breaker_failure_threshold=1
                ),
                degraded_mode="off",
            )
        )
        result = engine.integrate(_tables(), degraded_mode="surface")
        assert any(
            vm.statistics.get("degraded", 0.0) > 0
            for vm in result.value_matching.values()
        )


class TestBreakerRecovery:
    def test_recovery_restores_byte_identical_results(self, clean_result):
        clock = FakeClock()
        injector = FaultInjector()
        injector.script("embed_many", fail_all=True)
        injector.script("embed", fail_all=True)
        engine = IntegrationEngine(
            _config(
                embedder=_wrapped(
                    injector,
                    clock=clock,
                    retry_max_attempts=1,
                    breaker_failure_threshold=1,
                    breaker_reset_ms=1000.0,
                ),
                degraded_mode="surface",
            )
        )
        degraded = engine.integrate(_tables())
        assert any(
            vm.statistics.get("degraded", 0.0) > 0
            for vm in degraded.value_matching.values()
        )
        # The backend heals; once the reset window elapses the half-open
        # probe succeeds and full-fidelity matching resumes.
        injector.heal()
        clock.advance_ms(1001.0)
        recovered = engine.integrate(_tables())
        assert engine.resilience_state()["state"] == "closed"
        assert recovered.table.columns == clean_result.table.columns
        assert recovered.table.rows == clean_result.table.rows
        assert not any(
            vm.statistics.get("degraded", 0.0) > 0
            for vm in recovered.value_matching.values()
        )


class TestBackendDeterminism:
    def test_fault_scenario_identical_across_serial_and_parallel(self):
        results = []
        for backend in ("serial", BACKEND):
            injector = FaultInjector()
            injector.script("embed_many", fail_cycle=(2, 3))
            injector.script("embed", fail_cycle=(2, 3))
            engine = IntegrationEngine(
                _config(
                    embedder=_wrapped(injector, retry_max_attempts=3),
                    parallel_backend=backend,
                )
            )
            results.append(engine.integrate(_tables()))
        assert results[0].table.columns == results[1].table.columns
        assert results[0].table.rows == results[1].table.rows
