"""ArtifactStore contract: round-trips, rejection, corruption recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.storage import FORMAT_VERSION, ArtifactStore
from repro.storage.fingerprint import corpus_fingerprint


def _segment(rows: int = 4, dimension: int = 8):
    keys = [f"value-{index}" for index in range(rows)]
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((rows, dimension))
    return keys, matrix, corpus_fingerprint(keys)


class TestEmbeddingSegments:
    def test_round_trip_is_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        assert store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        loaded = store.load_embedding_segment("m.d8", corpus_fp)
        assert loaded is not None
        loaded_keys, loaded_matrix = loaded
        assert loaded_keys == keys
        assert np.array_equal(np.asarray(loaded_matrix), matrix)

    def test_loaded_matrix_is_memmapped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        _, loaded_matrix = store.load_embedding_segment("m.d8", corpus_fp)
        assert isinstance(loaded_matrix, np.memmap)

    def test_list_segments(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.list_embedding_segments("m.d8") == []
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        assert store.list_embedding_segments("m.d8") == [corpus_fp]
        assert store.list_embedding_segments("other.d8") == []

    def test_missing_segment_is_a_silent_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_embedding_segment("m.d8", "0" * 16) is None
        assert store.statistics()["corrupt_entries"] == 0

    def test_duplicate_publish_is_counted_not_raised(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        assert store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        assert not store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        stats = store.statistics()
        assert stats["segment_saves"] == 1
        assert stats["duplicate_publishes"] == 1

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        # An artifact renamed (or hand-copied) under the wrong directory must
        # miss: its meta still carries the fingerprints it was written for.
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        source = tmp_path / "embeddings" / "m.d8" / corpus_fp
        target = tmp_path / "embeddings" / "m.d8" / ("f" * 16)
        source.rename(target)
        assert store.load_embedding_segment("m.d8", "f" * 16) is None
        assert store.statistics()["rejected_entries"] == 1

    def test_other_format_version_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        meta_path = tmp_path / "embeddings" / "m.d8" / corpus_fp / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        assert store.load_embedding_segment("m.d8", corpus_fp) is None
        assert store.statistics()["rejected_entries"] == 1

    @pytest.mark.parametrize("victim", ["meta.json", "keys.json", "matrix.npy"])
    def test_corrupt_file_degrades_to_miss(self, tmp_path, victim):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        (tmp_path / "embeddings" / "m.d8" / corpus_fp / victim).write_bytes(b"\x00garbage")
        assert store.load_embedding_segment("m.d8", corpus_fp) is None
        assert store.statistics()["corrupt_entries"] == 1

    def test_truncated_matrix_degrades_to_miss(self, tmp_path):
        # A partial write that somehow reached the final path (e.g. a copy
        # interrupted outside the store's atomic protocol).
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        matrix_path = tmp_path / "embeddings" / "m.d8" / corpus_fp / "matrix.npy"
        matrix_path.write_bytes(matrix_path.read_bytes()[:40])
        assert store.load_embedding_segment("m.d8", corpus_fp) is None
        assert store.statistics()["corrupt_entries"] == 1

    def test_missing_file_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        (tmp_path / "embeddings" / "m.d8" / corpus_fp / "keys.json").unlink()
        assert store.load_embedding_segment("m.d8", corpus_fp) is None
        assert store.statistics()["corrupt_entries"] == 1

    def test_row_count_mismatch_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        keys_path = tmp_path / "embeddings" / "m.d8" / corpus_fp / "keys.json"
        keys_path.write_text(json.dumps(keys + ["extra"]))
        assert store.load_embedding_segment("m.d8", corpus_fp) is None
        assert store.statistics()["corrupt_entries"] == 1


class TestAnnIndexes:
    def test_round_trip_is_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        rng = np.random.default_rng(3)
        planes = rng.standard_normal((4, 8, 16))
        codes = rng.integers(0, 256, size=(4, 10), dtype=np.int64)
        assert store.save_ann_index("m.d16", "t4.b8.s1", "a" * 16, planes, codes)
        loaded = store.load_ann_index("m.d16", "t4.b8.s1", "a" * 16)
        assert loaded is not None
        assert np.array_equal(np.asarray(loaded[0]), planes)
        assert np.array_equal(np.asarray(loaded[1]), codes)

    def test_inconsistent_shapes_raise_at_save(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save_ann_index(
                "m.d16", "t4.b8.s1", "a" * 16,
                np.zeros((4, 8, 16)), np.zeros((5, 10), dtype=np.int64),
            )

    def test_corrupt_codes_degrade_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        planes = np.zeros((2, 4, 8))
        codes = np.zeros((2, 6), dtype=np.int64)
        store.save_ann_index("m.d8", "t2.b4.s1", "b" * 16, planes, codes)
        (tmp_path / "ann" / "m.d8" / "t2.b4.s1" / ("b" * 16) / "codes.npy").write_bytes(b"bad")
        assert store.load_ann_index("m.d8", "t2.b4.s1", "b" * 16) is None
        assert store.statistics()["corrupt_entries"] == 1


class TestModes:
    def test_off_mode_rejected_at_construction(self, tmp_path):
        with pytest.raises(ValueError, match="off"):
            ArtifactStore(tmp_path, mode="off")

    def test_read_mode_never_writes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", mode="read")
        keys, matrix, corpus_fp = _segment()
        assert not store.can_write
        assert not store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        # Not even the directory skeleton is created.
        assert not (tmp_path / "store").exists()

    def test_read_view_shares_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        view = store.with_mode("read")
        assert view.load_embedding_segment("m.d8", corpus_fp) is not None
        assert store.statistics()["segment_loads"] == 1

    def test_with_same_mode_returns_self(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.with_mode("readwrite") is store

    def test_no_tmp_garbage_after_publish(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys, matrix, corpus_fp = _segment()
        store.save_embedding_segment("m.d8", corpus_fp, keys, matrix)
        assert list((tmp_path / ".tmp").iterdir()) == []
