"""StoreBackedEmbeddingCache: warm starts, promotion, publication."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.storage import ArtifactStore, StoreBackedEmbeddingCache


def _fill(cache: StoreBackedEmbeddingCache, texts, dimension=8):
    rng = np.random.default_rng(11)
    for text in texts:
        vector = rng.standard_normal(dimension)
        cache.put(cache.model_name, text, vector / np.linalg.norm(vector))


class TestWarmStart:
    def test_restart_serves_published_vectors(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(first, ["alpha", "beta", "gamma"])
        assert first.publish() == 3

        # A brand-new cache over the same directory — the "restarted engine".
        second = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert second.cold_rows == 3
        for text in ["alpha", "beta", "gamma"]:
            warm = second.get("mistral", text)
            assert warm is not None
            assert np.allclose(warm, first.get("mistral", text))
        assert second.store_hits == 3
        assert second.store_misses == 0

    def test_cold_hit_promotes_to_hot_tier(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(first, ["alpha"])
        first.publish()

        second = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert second.get("mistral", "alpha") is not None
        assert second.store_hits == 1
        # The second lookup is a plain hot hit — the memmap read paid once.
        assert second.get("mistral", "alpha") is not None
        assert second.store_hits == 1
        assert second.hits >= 1

    def test_fill_many_serves_from_cold_tier(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(first, ["alpha", "beta"])
        first.publish()

        second = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        out = np.empty((3, 8))
        missing = second.fill_many("mistral", ["alpha", "beta", "new"], out)
        assert missing == [2]
        assert second.store_hits == 2
        assert second.store_misses == 1
        assert np.allclose(out[0], first.get("mistral", "alpha"))

    def test_other_models_bypass_the_cold_tier(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(first, ["alpha"])
        first.publish()

        second = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert second.get("fasttext", "alpha") is None
        assert second.store_misses == 0  # foreign model: not a store miss

    def test_wrong_dimension_segments_skipped(self, tmp_path):
        # Same model name published at a different dimension lives under a
        # different embedder fingerprint, so it is simply not listed.
        store = ArtifactStore(tmp_path)
        eight = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(eight, ["alpha"], dimension=8)
        eight.publish()
        sixteen = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 16)
        assert sixteen.cold_rows == 0


class TestPublication:
    def test_publish_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(cache, ["alpha", "beta"])
        assert cache.publish() == 2
        assert cache.publish() == 0  # nothing new
        assert store.statistics()["segment_saves"] == 1

    def test_incremental_publish_creates_new_segment(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = StoreBackedEmbeddingCache(store, "mistral", 8)
        _fill(cache, ["alpha"])
        cache.publish()
        _fill(cache, ["beta"])
        assert cache.publish() == 1
        restarted = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert restarted.cold_rows == 2

    def test_read_mode_publish_is_a_noop(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        cache = StoreBackedEmbeddingCache(writer.with_mode("read"), "mistral", 8)
        _fill(cache, ["alpha"])
        assert cache.publish() == 0
        assert writer.statistics()["segment_saves"] == 0

    def test_racing_identical_publishes_resolve_to_one_segment(self, tmp_path):
        left = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        right = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        _fill(left, ["alpha", "beta"])
        _fill(right, ["alpha", "beta"])
        published = sorted([left.publish(), right.publish()])
        assert published == [0, 2]  # exactly one of them wins
        restarted = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert restarted.cold_rows == 2

    def test_eviction_of_persisted_entry_is_recoverable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = StoreBackedEmbeddingCache(store, "mistral", 8, max_entries=2)
        _fill(cache, ["alpha", "beta"])
        cache.publish()  # publication also attaches the segment as cold tier
        vector_alpha = np.asarray(cache.get("mistral", "alpha"))
        _fill(cache, ["gamma", "delta"])  # evicts alpha/beta from the hot tier
        recovered = cache.get("mistral", "alpha")
        assert recovered is not None
        assert np.allclose(recovered, vector_alpha)


class TestConcurrency:
    def test_two_caches_attach_concurrently(self, tmp_path):
        seed = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        _fill(seed, [f"value-{index}" for index in range(40)])
        seed.publish()

        def build(_):
            cache = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
            return cache.cold_rows

        with ThreadPoolExecutor(max_workers=4) as pool:
            rows = list(pool.map(build, range(4)))
        assert rows == [40, 40, 40, 40]

    def test_refresh_picks_up_segments_published_by_another_cache(self, tmp_path):
        reader = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        assert reader.cold_rows == 0
        writer = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        _fill(writer, ["alpha", "beta"])
        writer.publish()
        assert reader.refresh() == 2
        assert reader.cold_rows == 2
        assert reader.refresh() == 0  # idempotent

    def test_concurrent_attach_on_one_cache_is_single_counted(self, tmp_path):
        seed = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        _fill(seed, ["alpha", "beta", "gamma"])
        seed.publish()
        cache = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda _: cache.refresh(), range(8)))
        assert cache.stats()["store_segments"] == 1
        assert cache.cold_rows == 3


class TestStats:
    def test_stats_extend_base_counters(self, tmp_path):
        cache = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        stats = cache.stats()
        for key in ("hits", "misses", "fills", "size",
                    "store_hits", "store_misses", "store_rows",
                    "store_segments", "published_rows"):
            assert key in stats

    def test_clear_keeps_cold_tier(self, tmp_path):
        cache = StoreBackedEmbeddingCache(ArtifactStore(tmp_path), "mistral", 8)
        _fill(cache, ["alpha"])
        cache.publish()
        cache.clear()
        assert len(cache) == 0
        assert cache.cold_rows == 1
        assert cache.get("mistral", "alpha") is not None
