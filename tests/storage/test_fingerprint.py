"""Fingerprint scheme: injectivity, ordering semantics, stability."""

from __future__ import annotations

from repro.storage.fingerprint import (
    ann_params_fingerprint,
    corpus_fingerprint,
    embedder_fingerprint,
)


class TestEmbedderFingerprint:
    def test_contains_name_and_dimension(self):
        assert embedder_fingerprint("mistral", 256) == "mistral.d256"

    def test_unsafe_characters_sanitised(self):
        fingerprint = embedder_fingerprint("my/model:v2", 16)
        assert "/" not in fingerprint
        assert ":" not in fingerprint
        assert fingerprint.endswith(".d16")

    def test_dimension_distinguishes(self):
        assert embedder_fingerprint("m", 8) != embedder_fingerprint("m", 16)


class TestCorpusFingerprint:
    def test_deterministic(self):
        assert corpus_fingerprint(["a", "b"]) == corpus_fingerprint(["a", "b"])

    def test_set_semantics_by_default(self):
        # Order and duplicates do not matter for a cache segment: the keys
        # table maps text -> row whatever the insertion history was.
        assert corpus_fingerprint(["b", "a", "a"]) == corpus_fingerprint(["a", "b"])

    def test_ordered_mode_is_positional(self):
        # ANN codes are positional (column i codes value i), so the ordered
        # fingerprint must distinguish permutations.
        assert corpus_fingerprint(["a", "b"], ordered=True) != corpus_fingerprint(
            ["b", "a"], ordered=True
        )

    def test_length_prefix_prevents_concatenation_collisions(self):
        assert corpus_fingerprint(["ab", "c"]) != corpus_fingerprint(["a", "bc"])

    def test_distinct_corpora_distinct_fingerprints(self):
        assert corpus_fingerprint(["a"]) != corpus_fingerprint(["b"])

    def test_short_hex(self):
        fingerprint = corpus_fingerprint(["x"])
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # parses as hex


class TestAnnParamsFingerprint:
    def test_encodes_all_knobs(self):
        assert ann_params_fingerprint(8, 12, 97) == "t8.b12.s97"

    def test_distinct_params_distinct_keys(self):
        base = ann_params_fingerprint(8, 12, 97)
        assert ann_params_fingerprint(9, 12, 97) != base
        assert ann_params_fingerprint(8, 13, 97) != base
        assert ann_params_fingerprint(8, 12, 98) != base
