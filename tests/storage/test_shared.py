"""Zero-copy shared-array hand-off to process workers."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.storage.shared import (
    ArrayHandle,
    SharedArrayBinding,
    SharedArrays,
    attach_array,
    publish_array,
)
from repro.utils.executor import ExecutorConfig, run_partitioned


def _row_sum(index, matrix):
    """Sum one row of the shared matrix (module-level: process-picklable)."""
    return float(matrix[index].sum())


def _describe_matrix(index, matrix):
    """Report what the worker actually received for the shared array."""
    return (type(matrix).__name__, float(matrix[index].sum()))


class TestPublishAttach:
    def test_round_trip(self, tmp_path):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        handle = publish_array(array, tmp_path, "matrix")
        attached = attach_array(handle)
        assert isinstance(attached, np.memmap)
        assert np.array_equal(np.asarray(attached), array)

    def test_attach_is_memoized(self, tmp_path):
        array = np.ones((2, 2))
        handle = publish_array(array, tmp_path, "matrix")
        assert attach_array(handle) is attach_array(handle)

    def test_attach_verifies_shape(self, tmp_path):
        array = np.ones((2, 2))
        handle = publish_array(array, tmp_path, "matrix")
        lying = ArrayHandle(path=handle.path, shape=(3, 3), dtype=handle.dtype)
        with pytest.raises(ValueError):
            attach_array(lying)


class TestSharedArrays:
    def test_context_manager_cleans_up(self):
        with SharedArrays({"matrix": np.ones((4, 4))}) as region:
            handle = region.handles["matrix"]
            assert np.array_equal(np.asarray(attach_array(handle)), np.ones((4, 4)))

    def test_binding_calls_through_with_kwargs(self):
        arrays = {"matrix": np.arange(6, dtype=np.float64).reshape(2, 3)}
        with SharedArrays(arrays) as region:
            binding = SharedArrayBinding(_row_sum, arrays, region.handles)
            assert binding(0) == 3.0
            assert binding(1) == 12.0

    def test_pickled_binding_is_small_and_correct(self):
        # The whole point: a binding over a multi-megabyte array pickles to
        # handles (paths + shapes), not the array bytes.
        big = np.ones((1000, 256))  # ~2 MB as float64
        with SharedArrays({"matrix": big}) as region:
            binding = SharedArrayBinding(_row_sum, {"matrix": big}, region.handles)
            payload = pickle.dumps(binding)
            assert len(payload) < 2048
            restored = pickle.loads(payload)
            assert restored(3) == 256.0


class TestExecutorHandOff:
    def _items(self):
        return list(range(32))

    def _matrix(self):
        rng = np.random.default_rng(5)
        return rng.standard_normal((32, 16))

    def test_serial_thread_process_agree(self):
        matrix = self._matrix()
        expected = [float(matrix[index].sum()) for index in self._items()]
        for backend, workers in (("serial", 1), ("thread", 4), ("process", 2)):
            config = ExecutorConfig(
                backend=backend, max_workers=workers, batch_size=4, min_parallel_items=2
            )
            result = run_partitioned(
                self._items(), _row_sum, config, shared={"matrix": matrix}
            )
            assert result == expected, backend

    def test_process_workers_receive_memmaps(self):
        # The acceptance criterion: process workers never receive pickled
        # embedding rows — they attach the published file as a memmap.
        matrix = self._matrix()
        config = ExecutorConfig(
            backend="process", max_workers=2, batch_size=4, min_parallel_items=2
        )
        results = run_partitioned(
            self._items(), _describe_matrix, config, shared={"matrix": matrix}
        )
        assert {type_name for type_name, _ in results} == {"memmap"}
        sums = [value for _, value in results]
        assert sums == [float(matrix[index].sum()) for index in self._items()]

    def test_small_workloads_bind_in_memory(self):
        # Below min_parallel_items nothing is published to disk: the arrays
        # are bound directly even on the process backend.
        matrix = self._matrix()
        config = ExecutorConfig(
            backend="process", max_workers=2, batch_size=4, min_parallel_items=64
        )
        results = run_partitioned(
            [0, 1], _describe_matrix, config, shared={"matrix": matrix}
        )
        assert [type_name for type_name, _ in results] == ["ndarray", "ndarray"]
