"""Store-backed engine lifecycle: warm starts, durable ANN, result identity."""

from __future__ import annotations

import pytest

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.matching.ann import SemanticBlocker
from repro.storage import ArtifactStore
from repro.table import Table


class CountingEmbedder(MistralEmbedder):
    """MistralEmbedder that counts raw (uncached, unstored) embed calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.raw_embeds = 0

    def _embed_text(self, text):
        self.raw_embeds += 1
        return super()._embed_text(text)


@pytest.fixture()
def tables():
    t1 = Table(
        "T1",
        ["City", "Country"],
        [("Berlinn", "Germany"), ("Toronto", "Canada"), ("Barcelona", "Spain")],
    )
    t2 = Table(
        "T2",
        ["City", "Country"],
        [("Berlin", "DE"), ("Toronto", "CA"), ("barcelona", "ES")],
    )
    return [t1, t2]


def _engine(store_dir, store_mode="readwrite", **knobs):
    config = FuzzyFDConfig(
        embedder=CountingEmbedder(),
        store_dir=str(store_dir) if store_dir is not None else None,
        store_mode=store_mode,
        **knobs,
    )
    return IntegrationEngine(config)


class TestWarmStart:
    def test_restarted_engine_makes_zero_raw_embed_calls(self, tmp_path, tables):
        cold = _engine(tmp_path / "store")
        cold_result = cold.integrate(tables)
        assert cold.embedder.raw_embeds > 0
        assert cold_result.timings.get("store_published_rows", 0) > 0

        warm = _engine(tmp_path / "store")
        warm_result = warm.integrate(tables)
        assert warm.embedder.raw_embeds == 0  # the acceptance criterion
        assert warm_result.table.rows == cold_result.table.rows
        assert warm_result.timings["cache_store_hits"] > 0
        assert warm_result.timings["cache_misses"] == 0

    def test_second_concurrent_engine_attaches(self, tmp_path, tables):
        first = _engine(tmp_path / "store")
        first.integrate(tables)
        # Not a restart: both engines alive, second attaches the first's
        # published segments at construction.
        second = _engine(tmp_path / "store")
        assert second.embedding_cache.cold_rows > 0
        second.integrate(tables)
        assert second.embedder.raw_embeds == 0

    def test_save_publishes_pending_embeddings(self, tmp_path):
        engine = _engine(tmp_path / "store")
        engine.embedder.embed("standalone value")  # outside any request
        assert engine.save() == {"embedding_rows": 1}
        assert engine.save() == {"embedding_rows": 0}  # idempotent
        restarted = _engine(tmp_path / "store")
        assert restarted.embedding_cache.cold_rows == 1

    def test_no_store_engine_unchanged(self, tables):
        engine = _engine(None, store_mode="off")
        assert engine.store is None
        assert engine.save() == {"embedding_rows": 0}
        assert engine.store_statistics() == {}
        result = engine.integrate(tables)
        assert "store_published_rows" not in result.timings


class TestResultIdentity:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 4), ("process", 2)])
    def test_store_on_off_cold_warm_identical(self, tmp_path, tables, backend, workers):
        knobs = dict(
            blocking="on",
            semantic_blocking="on",
            max_workers=workers,
            parallel_backend=backend,
        )
        baseline = _engine(None, store_mode="off", **knobs).integrate(tables)
        cold = _engine(tmp_path / "store", **knobs).integrate(tables)
        warm = _engine(tmp_path / "store", **knobs).integrate(tables)
        assert cold.table.rows == baseline.table.rows
        assert warm.table.rows == baseline.table.rows
        for group, matching in baseline.value_matching.items():
            assert cold.value_matching[group].sets == matching.sets
            assert warm.value_matching[group].sets == matching.sets


class TestStoreModeOverride:
    def test_read_override_suppresses_publication(self, tmp_path, tables):
        engine = _engine(tmp_path / "store")
        read_only = engine.integrate(tables, store_mode="read")
        assert engine.store_statistics()["segment_saves"] == 0
        assert "store_published_rows" not in read_only.timings
        # The next plain request runs readwrite again and publishes the
        # vectors the read-only request left pending.
        again = engine.integrate(tables)
        assert engine.store_statistics()["segment_saves"] == 1
        assert again.timings["store_published_rows"] > 0
        assert again.table.rows == read_only.table.rows

    def test_off_override_bypasses_matcher_store(self, tmp_path, tables):
        engine = _engine(tmp_path / "store", blocking="on", semantic_blocking="on")
        with_store = engine.integrate(tables)
        without = engine.integrate(tables, store_mode="off")
        assert without.table.rows == with_store.table.rows
        assert "store_published_rows" not in without.timings
        assert "ann_index_loads" not in without.timings or (
            without.timings["ann_index_loads"] == 0.0
        )

    def test_store_mode_validated(self, tmp_path, tables):
        engine = _engine(tmp_path / "store")
        with pytest.raises(ValueError, match="store_mode"):
            engine.integrate(tables, store_mode="sideways")


class TestDurableAnnIndexes:
    def _values(self):
        left = [f"city number {index}" for index in range(12)]
        right = [f"town number {index}" for index in range(12)]
        return left, right

    def test_cold_builds_warm_loads_identical_pairs(self, tmp_path):
        left, right = self._values()
        embedder = MistralEmbedder()
        # brute_force_cells=1 forces the LSH path on tiny inputs, making the
        # build/load counters observable without huge corpora.
        cold = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(tmp_path)
        )
        cold_pairs = cold.candidate_pairs(left, right)
        assert cold.last_used_lsh
        assert cold.index_builds == 2  # one code matrix per side
        assert cold.index_saves == 2
        assert cold.index_loads == 0

        warm = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(tmp_path)
        )
        warm_pairs = warm.candidate_pairs(left, right)
        assert warm.index_loads == 2
        assert warm.index_builds == 0  # zero ANN rebuilds
        assert warm_pairs == cold_pairs

    def test_different_params_do_not_share_indexes(self, tmp_path):
        left, right = self._values()
        embedder = MistralEmbedder()
        SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(tmp_path)
        ).candidate_pairs(left, right)
        other = SemanticBlocker(
            embedder, brute_force_cells=1, n_bits=6, store=ArtifactStore(tmp_path)
        )
        other.candidate_pairs(left, right)
        assert other.index_loads == 0
        assert other.index_builds == 2

    def test_retrieval_knobs_share_indexes(self, tmp_path):
        # top_k is retrieval-only: one stored index serves every k.
        left, right = self._values()
        embedder = MistralEmbedder()
        SemanticBlocker(
            embedder, brute_force_cells=1, top_k=3, store=ArtifactStore(tmp_path)
        ).candidate_pairs(left, right)
        wider = SemanticBlocker(
            embedder, brute_force_cells=1, top_k=7, store=ArtifactStore(tmp_path)
        )
        wider.candidate_pairs(left, right)
        assert wider.index_loads == 2
        assert wider.index_builds == 0

    def test_read_only_store_builds_without_saving(self, tmp_path):
        left, right = self._values()
        embedder = MistralEmbedder()
        blocker = SemanticBlocker(
            embedder,
            brute_force_cells=1,
            store=ArtifactStore(tmp_path).with_mode("read"),
        )
        blocker.candidate_pairs(left, right)
        assert blocker.index_builds == 2
        assert blocker.index_saves == 0

    def test_store_never_changes_candidates(self, tmp_path):
        left, right = self._values()
        embedder = MistralEmbedder()
        plain = SemanticBlocker(embedder, brute_force_cells=1)
        stored = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(tmp_path)
        )
        assert plain.candidate_pairs(left, right) == stored.candidate_pairs(left, right)
        # And again from the store:
        rewarmed = SemanticBlocker(
            embedder, brute_force_cells=1, store=ArtifactStore(tmp_path)
        )
        assert rewarmed.candidate_pairs(left, right) == plain.candidate_pairs(left, right)
