"""HTTP adapter: routing, JSON table round-trips, status-code mapping."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import IntegrationService
from repro.service.http import (
    BadRequest,
    start_http_server,
    table_to_json,
    tables_from_json,
)
from repro.table import Table
from repro.table.nulls import NULL, LabeledNull


async def _request(port: int, method: str, path: str, body: dict | None = None):
    """One HTTP/1.1 exchange against localhost; returns (status, json body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\nContent-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(body_blob.decode())


def _run(scenario):
    """Run an async scenario against a fresh service + bound server."""

    async def main():
        async with IntegrationService("fast") as service:
            server = await start_http_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await scenario(port, service)
            finally:
                server.close()
                await server.wait_closed()

    return asyncio.run(main())


INTEGRATE_BODY = {
    "tables": [
        {"name": "a", "columns": ["name", "city"], "rows": [["alice", "nyc"], ["bob", None]]},
        {"name": "b", "columns": ["name", "country"], "rows": [["alice", "usa"]]},
    ]
}


class TestEndpoints:
    def test_healthz(self):
        async def scenario(port, service):
            return await _request(port, "GET", "/healthz")

        status, body = _run(scenario)
        assert status == 200
        assert body["status"] == "healthy"
        assert body["requests_served"] == 0
        assert body["breaker"]["state"] == "closed"

    def test_integrate_round_trip_with_trace(self):
        async def scenario(port, service):
            return await _request(port, "POST", "/integrate", INTEGRATE_BODY)

        status, body = _run(scenario)
        assert status == 200
        assert body["status"] == "ok"
        trace = body["trace"]
        assert set(trace["stage_seconds"]) == {"align", "match", "integrate"}
        assert trace["total_seconds"] > 0
        table = body["table"]
        assert set(table["columns"]) == {"name", "city", "country"}
        merged = [row for row in table["rows"] if row[table["columns"].index("name")] == "alice"]
        assert merged and "usa" in merged[0]
        # bob had a null city on the way in; nulls survive the round trip.
        bob = [row for row in table["rows"] if "bob" in row]
        assert bob and None in bob[0]

    def test_stats_reflects_served_requests(self):
        async def scenario(port, service):
            await _request(port, "POST", "/integrate", INTEGRATE_BODY)
            return await _request(port, "GET", "/stats")

        status, body = _run(scenario)
        assert status == 200
        assert body["served"] == 1
        assert body["submitted"] == 1

    def test_unknown_route_is_404(self):
        async def scenario(port, service):
            return await _request(port, "GET", "/nope")

        status, body = _run(scenario)
        assert status == 404
        assert body["status"] == "error"

    def test_malformed_json_is_400(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            blob = b"not json"
            writer.write(
                b"POST /integrate HTTP/1.1\r\nContent-Length: "
                + str(len(blob)).encode()
                + b"\r\n\r\n"
                + blob
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split(b" ", 2)[1])

        assert _run(scenario) == 400

    def test_missing_tables_is_400(self):
        async def scenario(port, service):
            return await _request(port, "POST", "/integrate", {"tables": []})

        status, body = _run(scenario)
        assert status == 400
        assert "tables" in body["error"]

    def test_bad_deadline_is_400(self):
        async def scenario(port, service):
            return await _request(
                port, "POST", "/integrate", {**INTEGRATE_BODY, "deadline_ms": -5}
            )

        status, body = _run(scenario)
        assert status == 400
        assert "deadline_ms" in body["error"]

    def test_overloaded_maps_to_503(self):
        async def scenario(port, service):
            # Shrink the admission window after construction: in_flight(0)
            # can never be < capacity... so force capacity to zero requests
            # by taking the gauge over the limit directly.
            service.max_pending = 0
            with service._lock:
                service._in_flight = service.max_concurrency
            try:
                return await _request(port, "POST", "/integrate", INTEGRATE_BODY)
            finally:
                with service._lock:
                    service._in_flight = 0

        status, body = _run(scenario)
        assert status == 503
        assert body["status"] == "overloaded"
        assert body["max_pending"] == 0


class TestJsonTables:
    def test_nulls_serialise_as_none(self):
        table = Table("t", ["a", "b"], [(NULL, 1), (LabeledNull(7), "x")])
        payload = table_to_json(table)
        assert payload["rows"] == [[None, 1], [None, "x"]]

    def test_none_cells_parse_to_null(self):
        [table] = tables_from_json(
            [{"name": "t", "columns": ["a"], "rows": [[None], ["x"]]}]
        )
        assert table.rows[0][0] is NULL
        assert table.rows[1][0] == "x"

    def test_default_table_names(self):
        [table] = tables_from_json([{"columns": ["a"], "rows": []}])
        assert table.name == "table_0"

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            ["not an object"],
            [{"rows": []}],
            [{"columns": []}],
            [{"columns": ["a"], "rows": "nope"}],
            [{"columns": ["a"], "rows": [["too", "wide"]]}],
        ],
    )
    def test_invalid_payloads_raise_bad_request(self, payload):
        with pytest.raises(BadRequest):
            tables_from_json(payload)
