"""IntegrationService behaviour: equivalence, admission, deadlines, tracing.

No pytest-asyncio here on purpose: every test drives the service with a
fresh ``asyncio.run``, which doubles as a regression test that the service
holds no loop-bound state (a second event loop must work as well as the
first).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.service import (
    DeadlineExceeded,
    IntegrationResponse,
    IntegrationService,
    ServiceFailure,
    ServiceOverloaded,
)
from repro.service.http import table_to_json
from repro.table import Table


class CountingEmbedder(MistralEmbedder):
    """MistralEmbedder that counts raw (uncached, unstored) embed calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.raw_embeds = 0

    def _embed_text(self, text):
        self.raw_embeds += 1
        return super()._embed_text(text)


class SlowEmbedder(MistralEmbedder):
    """Embedder whose every raw embed sleeps — makes the match stage overrun."""

    def __init__(self, delay_seconds: float, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay_seconds = delay_seconds

    def _embed_text(self, text):
        time.sleep(self.delay_seconds)
        return super()._embed_text(text)


class GatedEmbedder(MistralEmbedder):
    """Embedder that blocks on an event — holds a request mid-flight on demand."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.started = threading.Event()
        self.release = threading.Event()

    def _embed_text(self, text):
        self.started.set()
        self.release.wait(timeout=30)
        return super()._embed_text(text)


def _tables():
    t1 = Table("T1", ["City", "Country"], [("Berlinn", "Germany"), ("Toronto", "Canada")])
    t2 = Table("T2", ["City", "VaxRate"], [("Berlin", "63%"), ("Toronto", "83%")])
    return [t1, t2]


def _serialise(table: Table) -> bytes:
    return json.dumps(table_to_json(table), sort_keys=True, default=str).encode()


class TestServiceEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("with_store", [False, True])
    def test_response_is_byte_identical_to_direct_engine(
        self, tmp_path, backend, with_store
    ):
        """The serving layer adds admission/deadlines/tracing — never results."""

        def config(suffix):
            return FuzzyFDConfig(
                max_workers=2 if backend != "serial" else 1,
                parallel_backend=backend,
                store_dir=str(tmp_path / f"store_{suffix}") if with_store else None,
                store_mode="readwrite" if with_store else "off",
            )

        direct = IntegrationEngine(config("direct")).integrate(_tables())

        async def serve():
            async with IntegrationService(config("served")) as service:
                return await service.integrate(_tables())

        response = asyncio.run(serve())
        assert isinstance(response, IntegrationResponse)
        assert response.status == "ok"
        assert _serialise(response.result.table) == _serialise(direct.table)

    def test_request_overrides_reach_the_engine(self, covid_tables):
        engine = IntegrationEngine()
        direct = engine.integrate(covid_tables, threshold=0.95)

        async def serve():
            async with IntegrationService() as service:
                return await service.integrate(covid_tables, threshold=0.95)

        response = asyncio.run(serve())
        assert _serialise(response.result.table) == _serialise(direct.table)


class TestTrace:
    def test_successful_response_carries_a_full_trace(self, covid_tables):
        async def serve():
            async with IntegrationService() as service:
                return await service.integrate(covid_tables)

        response = asyncio.run(serve())
        trace = response.trace
        assert trace is not None
        assert set(trace.stage_seconds) == {"align", "match", "integrate"}
        assert all(seconds >= 0.0 for seconds in trace.stage_seconds.values())
        assert trace.queue_wait_seconds >= 0.0
        assert trace.total_seconds > 0.0
        # Cache deltas and ANN counters are always present (0 when idle).
        payload = trace.to_dict()
        for key in (
            "ann_pairs_added",
            "ann_probe_candidates",
            "ann_bucket_skew",
            "cache_hits",
            "cache_misses",
            "raw_embed_calls",
        ):
            assert key in payload
        assert trace.cache_misses > 0  # cold cache: the values were embedded

    def test_second_request_hits_the_warm_in_memory_cache(self, covid_tables):
        async def serve():
            async with IntegrationService() as service:
                first = await service.integrate(covid_tables)
                second = await service.integrate(covid_tables)
                return first, second

        first, second = asyncio.run(serve())
        assert first.trace.cache_misses > 0
        assert second.trace.cache_misses == 0
        assert second.trace.raw_embed_calls == 0
        assert second.trace.cache_hits > 0

    def test_warm_store_restart_serves_with_zero_raw_embeds(self, tmp_path, covid_tables):
        """The acceptance criterion: warm restart -> raw_embed_calls == 0."""

        def config():
            return FuzzyFDConfig(
                embedder=CountingEmbedder(),
                store_dir=str(tmp_path / "store"),
                store_mode="readwrite",
            )

        async def serve_once(cfg):
            async with IntegrationService(cfg) as service:
                return await service.integrate(covid_tables)

        cold = asyncio.run(serve_once(config()))
        assert cold.trace.raw_embed_calls > 0
        assert cold.trace.store_published_rows > 0

        warm_config = config()
        warm = asyncio.run(serve_once(warm_config))
        assert warm.trace.raw_embed_calls == 0
        assert warm_config.embedder.raw_embeds == 0
        assert warm.trace.cache_store_hits > 0
        assert warm.result.table.rows == cold.result.table.rows

    def test_latency_quantiles_populate(self, covid_tables):
        async def serve():
            async with IntegrationService() as service:
                for _ in range(3):
                    await service.integrate(covid_tables)
                return service.stats()

        stats = asyncio.run(serve())
        assert stats.latency_p50_seconds > 0.0
        assert stats.latency_p99_seconds >= stats.latency_p50_seconds


class TestDeadline:
    def test_slow_match_stage_exceeds_the_budget_with_a_partial_trace(self):
        # Four raw embeds at 40 ms each put the match stage at >= 160 ms,
        # far past the 75 ms budget; align (name-based) stays well under it.
        config = FuzzyFDConfig(embedder=SlowEmbedder(delay_seconds=0.04))

        async def serve():
            async with IntegrationService(config) as service:
                response = await service.integrate(_tables(), deadline_ms=75.0)
                return response, service.stats()

        response, stats = asyncio.run(serve())
        assert isinstance(response, DeadlineExceeded)
        assert response.status == "deadline_exceeded"
        # The budget ran out while matching, so the overrun is detected at
        # the next boundary: the integrate stage never starts.
        assert response.stage == "integrate"
        trace = response.trace
        assert trace is not None and trace.status == "deadline_exceeded"
        assert "match" in trace.stage_seconds
        assert "integrate" not in trace.stage_seconds
        assert stats.deadline_exceeded == 1
        assert stats.served == 0

    def test_generous_budget_completes_normally(self, covid_tables):
        async def serve():
            async with IntegrationService(deadline_ms=60_000.0) as service:
                return await service.integrate(covid_tables)

        response = asyncio.run(serve())
        assert response.status == "ok"
        assert response.trace.deadline_ms == 60_000.0

    def test_default_deadline_comes_from_the_config(self):
        config = FuzzyFDConfig(
            embedder=SlowEmbedder(delay_seconds=0.04), service_deadline_ms=75.0
        )

        async def serve():
            async with IntegrationService(config) as service:
                return await service.integrate(_tables())

        assert asyncio.run(serve()).status == "deadline_exceeded"


class TestAdmissionControl:
    def test_saturation_rejects_fast_and_counters_reconcile(self):
        embedder = GatedEmbedder()
        config = FuzzyFDConfig(embedder=embedder)

        async def scenario():
            service = IntegrationService(config, max_pending=1, max_concurrency=1)
            in_flight = [
                asyncio.ensure_future(service.integrate(_tables())) for _ in range(2)
            ]
            # Let both coroutines through admission (their admission check is
            # synchronous, before their first await).
            await asyncio.sleep(0)
            saturated = service.stats()
            started = time.perf_counter()
            rejected = await service.integrate(_tables())
            rejection_seconds = time.perf_counter() - started
            embedder.release.set()
            served = await asyncio.gather(*in_flight)
            return service, saturated, rejected, rejection_seconds, served

        service, saturated, rejected, rejection_seconds, served = asyncio.run(scenario())
        assert saturated.in_flight == 2  # 1 executing + 1 pending == capacity
        assert isinstance(rejected, ServiceOverloaded)
        assert rejected.max_pending == 1
        assert rejection_seconds < 0.050  # the acceptance criterion
        assert all(response.status == "ok" for response in served)

        stats = service.stats()
        assert stats.submitted == 3
        assert (
            stats.served
            + stats.rejected
            + stats.deadline_exceeded
            + stats.failed
            + stats.in_flight
            == stats.submitted
        )
        assert stats.served == 2 and stats.rejected == 1 and stats.in_flight == 0

    def test_zero_pending_rejects_whenever_the_slot_is_busy(self):
        embedder = GatedEmbedder()
        config = FuzzyFDConfig(embedder=embedder)

        async def scenario():
            service = IntegrationService(config, max_pending=0, max_concurrency=1)
            first = asyncio.ensure_future(service.integrate(_tables()))
            await asyncio.sleep(0)
            rejected = await service.integrate(_tables())
            embedder.release.set()
            return rejected, await first

        rejected, served = asyncio.run(scenario())
        assert rejected.status == "overloaded"
        assert served.status == "ok"

    def test_queue_wait_lands_in_the_trace(self):
        embedder = GatedEmbedder()
        config = FuzzyFDConfig(embedder=embedder)

        async def scenario():
            service = IntegrationService(config, max_pending=4, max_concurrency=1)
            first = asyncio.ensure_future(service.integrate(_tables()))
            await asyncio.sleep(0)

            def _release_when_started():
                embedder.started.wait(timeout=30)
                time.sleep(0.05)
                embedder.release.set()

            threading.Thread(target=_release_when_started, daemon=True).start()
            second = asyncio.ensure_future(service.integrate(_tables()))
            return await asyncio.gather(first, second)

        first, second = asyncio.run(scenario())
        assert first.status == "ok" and second.status == "ok"
        # The second request waited for the first's slot; the wait is charged
        # to its trace, not hidden.
        assert second.trace.queue_wait_seconds > 0.0


class TestFailuresAndLifecycle:
    def test_pipeline_error_becomes_a_service_failure(self, covid_tables):
        async def serve():
            async with IntegrationService() as service:
                response = await service.integrate(covid_tables, not_a_knob=1)
                return response, service.stats()

        response, stats = asyncio.run(serve())
        assert isinstance(response, ServiceFailure)
        assert "not_a_knob" in response.error
        assert stats.failed == 1 and stats.served == 0

    def test_closed_service_fails_new_requests(self, covid_tables):
        async def serve():
            service = IntegrationService()
            await service.integrate(covid_tables)
            service.close()
            return await service.integrate(covid_tables)

        response = asyncio.run(serve())
        assert response.status == "error"
        assert "closed" in response.error

    def test_service_shares_the_engine_worker_pool(self, covid_tables):
        engine = IntegrationEngine()

        async def serve():
            service = IntegrationService(engine, max_concurrency=2)
            await service.integrate(covid_tables)
            # The executor the service ran on IS the engine-owned pool that
            # integrate_many batches over — one set of warm threads.
            return engine.worker_pool(2)

        pool = asyncio.run(serve())
        assert pool is engine.worker_pool()
        engine.close()

    def test_invalid_knobs_fail_fast(self):
        with pytest.raises(ValueError, match="max_pending"):
            IntegrationService(max_pending=-1)
        with pytest.raises(ValueError, match="max_concurrency"):
            IntegrationService(max_concurrency=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            IntegrationService(deadline_ms=0.0)
