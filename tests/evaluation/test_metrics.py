"""Tests for evaluation metrics, runtime sweep and reporting."""

from __future__ import annotations

import pytest

from repro.core import FuzzyFDConfig
from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.datasets import ImdbBenchmark
from repro.embeddings import MistralEmbedder
from repro.evaluation import (
    MatchingScores,
    format_cache_statistics,
    format_markdown_table,
    format_scores_table,
    macro_average,
    score_integration_set,
    score_match_sets,
)
from repro.evaluation.reporting import format_runtime_series
from repro.evaluation.runtime import RuntimePoint, overhead_ratio, runtime_sweep


class TestMatchingScores:
    def test_perfect_match(self):
        sets = [[("a", "x"), ("b", "y")]]
        scores = score_match_sets(sets, sets)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_partial_prediction(self):
        predicted = [[("a", "x"), ("b", "y")], [("c", "z")]]
        gold = [[("a", "x"), ("b", "y"), ("c", "z")]]
        scores = score_match_sets(predicted, gold)
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(1 / 3)

    def test_wrong_prediction(self):
        predicted = [[("a", "x"), ("c", "z")]]
        gold = [[("a", "x"), ("b", "y")]]
        scores = score_match_sets(predicted, gold)
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_empty_prediction_convention(self):
        scores = score_match_sets([], [[("a", "x"), ("b", "y")]])
        assert scores.precision == 1.0
        assert scores.recall == 0.0

    def test_score_integration_set_accepts_matcher_result(self):
        matcher = ValueMatcher(MistralEmbedder(), threshold=0.7)
        columns = [ColumnValues("c1", ["Germany", "Canada"]), ColumnValues("c2", ["DE", "CA"])]
        result = matcher.match_columns(columns)
        gold = [
            [("c1", "Germany"), ("c2", "DE")],
            [("c1", "Canada"), ("c2", "CA")],
        ]
        scores = score_integration_set(result, gold)
        assert scores.f1 == 1.0

    def test_macro_average(self):
        scores = macro_average(
            [
                MatchingScores(precision=1.0, recall=0.5, f1=2 / 3),
                MatchingScores(precision=0.5, recall=1.0, f1=2 / 3),
            ]
        )
        assert scores.precision == pytest.approx(0.75)
        assert scores.recall == pytest.approx(0.75)

    def test_macro_average_empty(self):
        assert macro_average([]).f1 == 0.0


class TestRuntimeSweep:
    def test_sweep_produces_point_per_size_and_method(self):
        bench = ImdbBenchmark(seed=2)
        points = runtime_sweep(bench.tables, sizes=[60], config=FuzzyFDConfig())
        assert len(points) == 2
        methods = {point.method for point in points}
        assert methods == {"regular_fd", "fuzzy_fd"}
        assert all(point.seconds >= 0.0 for point in points)
        assert all(point.output_tuples > 0 for point in points)

    def test_unknown_method_raises(self):
        bench = ImdbBenchmark(seed=2)
        with pytest.raises(ValueError):
            runtime_sweep(bench.tables, sizes=[60], methods=("teleport",))

    def test_overhead_ratio(self):
        points = [
            RuntimePoint(100, "regular_fd", 2.0, 10),
            RuntimePoint(100, "fuzzy_fd", 2.2, 10),
        ]
        ratios = overhead_ratio(points)
        assert ratios[100] == pytest.approx(1.1)

    def test_point_as_dict(self):
        point = RuntimePoint(100, "fuzzy_fd", 1.23456, 42)
        assert point.as_dict()["seconds"] == 1.2346


class TestReporting:
    def test_markdown_table_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_scores_table_contains_models(self):
        table = format_scores_table(
            {"mistral": MatchingScores(precision=0.81, recall=0.86, f1=0.82)}
        )
        assert "mistral" in table
        assert "0.82" in table

    def test_runtime_series_table(self):
        points = [
            RuntimePoint(100, "regular_fd", 2.0, 10),
            RuntimePoint(100, "fuzzy_fd", 2.2, 10),
        ]
        text = format_runtime_series(points)
        assert "100" in text and "2.00" in text and "2.20" in text

    def test_cache_statistics_table(self):
        text = format_cache_statistics(
            {
                "value_matching_seconds": 1.5,  # non-counter keys are ignored
                "cache_hits": 120.0,
                "cache_store_hits": 80.0,
                "cache_misses": 0.0,
                "ann_index_loads": 2.0,
                "store_published_rows": 40.0,
            }
        )
        assert "120" in text and "80" in text
        assert "ANN indexes loaded" in text
        # 200 of 200 lookups served without a raw embed — the warm-start row.
        assert "100.0%" in text
        assert "1.5" not in text

    def test_cache_statistics_rejects_counterless_dicts(self):
        with pytest.raises(ValueError, match="no cache or store counters"):
            format_cache_statistics({"alignment_seconds": 0.1})
