"""Tests for the programmatic experiment runners (miniature scale)."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    run_downstream_em_experiment,
    run_figure3_experiment,
    run_table1_experiment,
)


class TestTable1Experiment:
    def test_returns_scores_for_requested_models(self):
        scores = run_table1_experiment(
            n_sets=3, values_per_column=20, models=("fasttext", "mistral")
        )
        assert set(scores) == {"fasttext", "mistral"}
        for model_scores in scores.values():
            assert 0.0 <= model_scores.precision <= 1.0
            assert 0.0 <= model_scores.recall <= 1.0

    def test_mistral_not_worse_than_fasttext(self):
        scores = run_table1_experiment(
            n_sets=4, values_per_column=25, models=("fasttext", "mistral")
        )
        assert scores["mistral"].f1 >= scores["fasttext"].f1


class TestDownstreamEmExperiment:
    def test_returns_both_methods(self):
        scores = run_downstream_em_experiment(n_sets=1, entities_per_set=20)
        assert set(scores) == {"regular_fd", "fuzzy_fd"}
        assert scores["fuzzy_fd"].recall >= scores["regular_fd"].recall


class TestFigure3Experiment:
    def test_returns_points_for_each_size_and_method(self):
        points = run_figure3_experiment(sizes=(80, 160))
        assert len(points) == 4
        assert {point.method for point in points} == {"regular_fd", "fuzzy_fd"}
        sizes = sorted({point.input_tuples for point in points})
        assert len(sizes) == 2
