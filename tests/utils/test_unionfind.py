"""Unit and property tests for the union-find structure."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils import UnionFind


class TestUnionFindBasics:
    def test_new_items_are_singletons(self):
        uf = UnionFind(["a", "b"])
        assert uf.find("a") == "a"
        assert uf.find("b") == "b"
        assert not uf.connected("a", "b")

    def test_union_connects_items(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.connected("a", "b")

    def test_union_same_set_returns_false(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.union("b", "a") is False

    def test_union_is_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_find_adds_unknown_items(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_set_size(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.add("d")
        assert uf.set_size("a") == 3
        assert uf.set_size("d") == 1

    def test_groups_partition_all_items(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        groups = uf.groups()
        flattened = sorted(item for group in groups for item in group)
        assert flattened == ["a", "b", "c", "d"]
        assert len(groups) == 3

    def test_cluster_labels_are_dense(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "c")
        labels = uf.to_cluster_labels()
        assert set(labels) == {"a", "b", "c"}
        assert labels["a"] == labels["c"]
        assert labels["a"] != labels["b"]
        assert set(labels.values()) == {0, 1}

    def test_len_and_iter(self):
        uf = UnionFind(["x", "y"])
        assert len(uf) == 2
        assert sorted(uf) == ["x", "y"]


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80))
    def test_groups_form_a_partition(self, pairs):
        uf = UnionFind()
        for left, right in pairs:
            uf.union(left, right)
        groups = uf.groups()
        seen = [item for group in groups for item in group]
        assert len(seen) == len(set(seen)) == len(uf)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_connected_iff_same_root(self, pairs):
        uf = UnionFind()
        for left, right in pairs:
            uf.union(left, right)
        items = list(uf)
        for left in items[:10]:
            for right in items[:10]:
                assert uf.connected(left, right) == (uf.find(left) == uf.find(right))

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_union_count_matches_group_reduction(self, pairs):
        uf = UnionFind()
        successful_unions = sum(1 for left, right in pairs if uf.union(left, right))
        assert len(uf.groups()) == len(uf) - successful_unions
