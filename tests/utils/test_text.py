"""Tests for text normalisation and string distances."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.text import (
    character_ngrams,
    damerau_levenshtein,
    is_abbreviation_of,
    jaccard_similarity,
    levenshtein,
    normalize_value,
    normalized_edit_similarity,
    tokenize,
)


class TestNormalize:
    def test_lowercases_and_strips(self):
        assert normalize_value("  Berlin ") == "berlin"

    def test_collapses_internal_whitespace(self):
        assert normalize_value("New   Delhi") == "new delhi"

    def test_strips_accents(self):
        assert normalize_value("Berlín") == "berlin"

    def test_none_becomes_empty(self):
        assert normalize_value(None) == ""

    def test_numbers_pass_through(self):
        assert normalize_value(42) == "42"


class TestTokenize:
    def test_splits_on_punctuation(self):
        assert tokenize("New Delhi (IN)") == ["new", "delhi", "in"]

    def test_empty_value(self):
        assert tokenize("") == []

    def test_alphanumeric_tokens(self):
        assert tokenize("Route 66") == ["route", "66"]


class TestCharacterNgrams:
    def test_padding_markers(self):
        assert character_ngrams("ab", n=3) == ["<ab", "ab>"]

    def test_short_string_returns_whole(self):
        assert character_ngrams("a", n=3) == ["<a>"]

    def test_empty_returns_nothing(self):
        assert character_ngrams("", n=3) == []

    def test_count_matches_length(self):
        grams = character_ngrams("berlin", n=3)
        # "<berlin>" has 8 characters -> 6 trigrams.
        assert len(grams) == 6


class TestLevenshtein:
    @pytest.mark.parametrize(
        "left, right, expected",
        [
            ("berlin", "berlin", 0),
            ("berlin", "berlinn", 1),
            ("kitten", "sitting", 3),
            ("", "abc", 3),
            ("abc", "", 3),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert levenshtein(left, right) == expected

    def test_case_insensitive(self):
        assert levenshtein("Berlin", "berlin") == 0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetry(self, left, right):
        assert levenshtein(left, right) == levenshtein(right, left)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=15))
    def test_identity(self, text):
        assert levenshtein(text, text) == 0


class TestDamerauLevenshtein:
    def test_transposition_counts_once(self):
        assert damerau_levenshtein("berlin", "eberlin"[1:] + "") >= 0
        assert damerau_levenshtein("abcd", "abdc") == 1
        assert levenshtein("abcd", "abdc") == 2

    @given(st.text(max_size=10), st.text(max_size=10))
    def test_never_exceeds_levenshtein(self, left, right):
        assert damerau_levenshtein(left, right) <= levenshtein(left, right)


class TestSimilarities:
    def test_jaccard_identical(self):
        assert jaccard_similarity(["a", "b"], ["b", "a"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity(["a"], ["b"]) == 0.0

    def test_jaccard_empty_both(self):
        assert jaccard_similarity([], []) == 1.0

    def test_edit_similarity_range(self):
        assert normalized_edit_similarity("berlin", "berlinn") == pytest.approx(1 - 1 / 7)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_edit_similarity_bounds(self, left, right):
        assert 0.0 <= normalized_edit_similarity(left, right) <= 1.0


class TestAbbreviation:
    @pytest.mark.parametrize(
        "short, long",
        [
            ("US", "United States"),
            ("Corp", "Corporation"),
            ("Blvd", "Boulevard"),
            ("WHO", "World Health Organization"),
        ],
    )
    def test_positive_cases(self, short, long):
        assert is_abbreviation_of(short, long)

    @pytest.mark.parametrize(
        "short, long",
        [
            ("Paris", "London"),
            ("Germany", "DE"),  # short must be the abbreviation
            ("", "Anything"),
        ],
    )
    def test_negative_cases(self, short, long):
        assert not is_abbreviation_of(short, long)
