"""Tests for the shared parallel execution layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.executor import (
    EXECUTOR_BACKENDS,
    ExecutorConfig,
    contiguous_ranges,
    partition_batches,
    run_partitioned,
)


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


class TestExecutorConfig:
    def test_defaults_are_serial(self):
        config = ExecutorConfig()
        assert config.backend == "serial"
        assert not config.is_parallel
        assert not config.should_parallelise(10_000)

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_known_backends_accepted(self, backend):
        assert ExecutorConfig(backend=backend).backend == backend

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutorConfig(backend="gpu")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"batch_size": 0},
            {"min_parallel_items": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="thread", **kwargs)

    def test_single_worker_never_parallelises(self):
        config = ExecutorConfig(backend="thread", max_workers=1)
        assert not config.should_parallelise(1000)

    def test_tiny_workloads_stay_serial(self):
        config = ExecutorConfig(backend="thread", max_workers=4, min_parallel_items=10)
        assert not config.should_parallelise(9)
        assert config.should_parallelise(10)


class TestPartitionBatches:
    def test_flattening_restores_input_order(self):
        items = list(range(100))
        config = ExecutorConfig(backend="thread", max_workers=4, batch_size=7)
        batches = partition_batches(items, config)
        assert [item for batch in batches for item in batch] == items

    def test_batch_size_respected(self):
        config = ExecutorConfig(backend="thread", max_workers=2, batch_size=5)
        batches = partition_batches(list(range(23)), config)
        assert all(len(batch) <= 5 for batch in batches)

    def test_weights_split_heavy_items_apart(self):
        # One heavy item per batch once its weight exceeds the target.
        config = ExecutorConfig(backend="thread", max_workers=2, batch_size=64)
        batches = partition_batches([1000, 1000, 1000, 1000], config, weight=lambda w: w)
        assert len(batches) == 4

    def test_empty_items(self):
        assert partition_batches([], ExecutorConfig()) == []


class TestRunPartitioned:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_in_input_order(self, backend):
        config = ExecutorConfig(backend=backend, max_workers=2, batch_size=3,
                                min_parallel_items=0)
        items = list(range(20))
        assert run_partitioned(items, _square, config) == [_square(item) for item in items]

    def test_serial_default(self):
        assert run_partitioned([1, 2, 3], _square) == [1, 4, 9]

    def test_empty(self):
        assert run_partitioned([], _square, ExecutorConfig(backend="thread", max_workers=4)) == []

    def test_worker_exception_propagates(self):
        def explode(value: int) -> int:
            raise RuntimeError(f"boom {value}")

        config = ExecutorConfig(backend="thread", max_workers=2, batch_size=1,
                                min_parallel_items=0)
        with pytest.raises(RuntimeError, match="boom"):
            run_partitioned([1, 2, 3, 4], explode, config)

    def test_closures_allowed_on_thread_backend(self):
        offset = 7
        config = ExecutorConfig(backend="thread", max_workers=2, batch_size=1,
                                min_parallel_items=0)
        assert run_partitioned([1, 2], lambda value: value + offset, config) == [8, 9]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=40),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_thread_backend_equals_serial_loop(self, items, workers, batch_size):
        config = ExecutorConfig(backend="thread", max_workers=workers,
                                batch_size=batch_size, min_parallel_items=0)
        assert run_partitioned(items, _square, config) == [_square(item) for item in items]


class TestContiguousRanges:
    def test_empty_and_negative_counts(self):
        config = ExecutorConfig(max_workers=4)
        assert contiguous_ranges(0, config) == []
        assert contiguous_ranges(-3, config) == []

    def test_spans_cover_exactly_once_in_order(self):
        config = ExecutorConfig(backend="process", max_workers=3)
        spans = contiguous_ranges(10_000, config, min_chunk=128)
        flattened = [i for start, stop in spans for i in range(start, stop)]
        assert flattened == list(range(10_000))

    def test_min_chunk_respected(self):
        config = ExecutorConfig(backend="process", max_workers=8)
        spans = contiguous_ranges(1_000, config, min_chunk=256)
        assert all(stop - start <= 256 for start, stop in spans)
        assert all(stop - start == 256 for start, stop in spans[:-1])

    def test_small_counts_collapse_to_single_span(self):
        config = ExecutorConfig(max_workers=2)
        assert contiguous_ranges(10, config, min_chunk=256) == [(0, 10)]

    def test_invalid_min_chunk_rejected(self):
        with pytest.raises(ValueError, match="min_chunk"):
            contiguous_ranges(10, ExecutorConfig(), min_chunk=0)
