"""Tests for deterministic hashing and vector derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.hashing import stable_hash, stable_hash_floats, stable_rng, stable_vector


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("berlin") == stable_hash("berlin")

    def test_seed_changes_value(self):
        assert stable_hash("berlin", seed=1) != stable_hash("berlin", seed=2)

    def test_different_text_different_hash(self):
        assert stable_hash("berlin") != stable_hash("boston")

    @given(st.text(max_size=30))
    def test_always_64_bit_unsigned(self, text):
        value = stable_hash(text)
        assert 0 <= value < 2**64


class TestStableFloats:
    def test_length(self):
        assert len(stable_hash_floats("x", 10)) == 10

    def test_range(self):
        values = stable_hash_floats("value", 64)
        assert all(-1.0 <= value < 1.0 for value in values)

    def test_deterministic(self):
        assert stable_hash_floats("v", 16) == stable_hash_floats("v", 16)


class TestStableVector:
    def test_unit_norm(self):
        vector = stable_vector("berlin", 128)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_deterministic_across_calls(self):
        assert np.array_equal(stable_vector("berlin", 64), stable_vector("berlin", 64))

    def test_distinct_texts_nearly_orthogonal(self):
        left = stable_vector("berlin", 256)
        right = stable_vector("boston", 256)
        assert abs(float(np.dot(left, right))) < 0.35

    def test_dimension_respected(self):
        assert stable_vector("x", 17).shape == (17,)

    def test_stable_rng_reproducible(self):
        assert stable_rng("seed-text").integers(0, 1000) == stable_rng("seed-text").integers(0, 1000)
