"""Concurrent stress tests for the thread-safe EmbeddingCache."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.embeddings import MistralEmbedder
from repro.embeddings.base import EmbeddingCache


class TestCacheUnderConcurrency:
    def test_counters_consistent_under_concurrent_get_put(self):
        cache = EmbeddingCache()
        vector = np.ones(4)
        operations_per_worker = 500
        workers = 8

        def hammer(worker: int) -> None:
            for index in range(operations_per_worker):
                text = f"value-{index % 50}"
                if cache.get("model", text) is None:
                    cache.put("model", text, vector)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))

        stats = cache.stats()
        # Every get incremented exactly one counter — no lost updates.
        assert stats["hits"] + stats["misses"] == workers * operations_per_worker
        assert stats["size"] == 50

    def test_bounded_cache_never_exceeds_capacity_under_races(self):
        cache = EmbeddingCache(max_entries=16)
        vector = np.ones(2)

        def insert(worker: int) -> None:
            for index in range(300):
                cache.put("model", f"{worker}-{index}", vector)
                assert len(cache) <= 16

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(insert, range(6)))
        assert len(cache) <= 16

    def test_fill_many_counts_each_text_once(self):
        cache = EmbeddingCache()
        cache.put("m", "a", np.ones(3))
        out = np.empty((3, 3))
        missing = cache.fill_many("m", ["a", "b", "a"], out)
        assert missing == [1]
        assert cache.stats() == {"hits": 2, "misses": 1, "fills": 1, "size": 1}
        assert np.array_equal(out[0], np.ones(3))
        assert np.array_equal(out[2], np.ones(3))

    def test_fill_many_duplicate_cold_text_is_one_miss(self):
        # Same semantics as the old embed()-per-value loop: the second
        # occurrence is served from the first computation, i.e. a hit.
        cache = EmbeddingCache()
        out = np.empty((2, 3))
        missing = cache.fill_many("m", ["a", "a"], out)
        assert missing == [0, 1]
        assert cache.stats() == {"hits": 1, "misses": 1, "fills": 0, "size": 0}

    def test_embed_many_embeds_duplicate_texts_once(self):
        calls = []

        class Counting(MistralEmbedder):
            def _embed_text(self, text):
                calls.append(text)
                return super()._embed_text(text)

        embedder = Counting()
        matrix = embedder.embed_many(["a", "a", "b", "a"])
        assert calls == ["a", "b"]
        assert np.array_equal(matrix[0], matrix[1])
        assert np.array_equal(matrix[0], matrix[3])

    def test_concurrent_embed_many_agrees_with_serial(self):
        serial = MistralEmbedder()
        concurrent = MistralEmbedder()
        values = [f"city {index}" for index in range(60)]
        expected = serial.embed_many(values)

        barrier = threading.Barrier(4)

        def embed_all(_: int):
            barrier.wait()
            return concurrent.embed_many(values)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(embed_all, range(4)))
        for matrix in results:
            assert np.array_equal(matrix, expected)
        stats = concurrent.cache.stats()
        assert stats["size"] == len(values)
