"""Tests for the semantic lexicon."""

from __future__ import annotations

import pytest

from repro.embeddings.lexicon import SemanticLexicon, default_lexicon, domain_groups


class TestSemanticLexicon:
    def test_lookup_normalises(self):
        lexicon = SemanticLexicon({"united states": ["US", "USA"]})
        assert lexicon.lookup("usa") == "united states"
        assert lexicon.lookup("U.S. ") is None  # punctuation is preserved in forms

    def test_concept_is_its_own_form(self):
        lexicon = SemanticLexicon({"germany": ["de"]})
        assert lexicon.lookup("Germany") == "germany"

    def test_same_concept(self):
        lexicon = SemanticLexicon({"canada": ["ca"]})
        assert lexicon.same_concept("Canada", "CA")
        assert not lexicon.same_concept("Canada", "US")

    def test_unknown_value(self):
        assert SemanticLexicon().lookup("zzz") is None

    def test_canonicalize_full_form(self):
        lexicon = SemanticLexicon({"spain": ["es"]})
        assert lexicon.canonicalize("ES") == "spain"

    def test_canonicalize_token_level(self):
        lexicon = SemanticLexicon({"street": ["st"]})
        assert lexicon.canonicalize("Main St") == "main street"

    def test_token_concept_only_for_single_token_groups(self):
        lexicon = SemanticLexicon({"new york": ["ny"], "street": ["st"]})
        assert lexicon.token_concept("st") == "street"
        assert lexicon.token_concept("ny") is None  # group has a multi-token form

    def test_ambiguous_form_first_registration_wins(self):
        lexicon = SemanticLexicon()
        lexicon.add_group("germany", ["de"])
        lexicon.add_group("delaware", ["de"])
        assert lexicon.lookup("de") == "germany"

    def test_merge(self):
        left = SemanticLexicon({"germany": ["de"]})
        right = SemanticLexicon({"spain": ["es"]})
        merged = left.merge(right)
        assert merged.lookup("de") == "germany"
        assert merged.lookup("es") == "spain"

    def test_variant_pairs(self):
        lexicon = SemanticLexicon({"canada": ["ca"]})
        assert ("ca", "canada") in lexicon.variant_pairs()

    def test_forms_sorted(self):
        lexicon = SemanticLexicon({"canada": ["ca", "can"]})
        assert lexicon.forms("canada") == ["ca", "can", "canada"]


class TestDefaultLexicon:
    @pytest.fixture(scope="class")
    def lexicon(self):
        return default_lexicon()

    @pytest.mark.parametrize(
        "left, right",
        [
            ("United States", "US"),
            ("Germany", "DE"),
            ("Massachusetts", "MA"),
            ("World Health Organization", "WHO"),
            ("Massachusetts Institute of Technology", "MIT"),
            ("Doctor", "Dr"),
            ("Incorporated", "Inc"),
            ("car", "automobile"),
            ("Science Fiction", "Sci-Fi"),
            ("kilometer", "km"),
        ],
    )
    def test_knows_common_equivalences(self, lexicon, left, right):
        assert lexicon.same_concept(left, right)

    def test_has_many_concepts(self, lexicon):
        assert len(lexicon) > 200

    def test_domain_groups_exposed(self):
        groups = domain_groups()
        assert "countries" in groups
        assert "us" in groups["countries"]["united states"]

    def test_unrelated_values_not_same_concept(self, lexicon):
        assert not lexicon.same_concept("Germany", "Canada")
