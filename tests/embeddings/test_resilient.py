"""Unit tests for the retry/circuit-breaker embedder wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FuzzyFDConfig, IntegrationEngine
from repro.embeddings import MistralEmbedder
from repro.embeddings.resilient import (
    DelegatingEmbedder,
    EmbedderUnavailable,
    ResilientEmbedder,
    validate_resilience_knobs,
)
from repro.testing import FaultInjector, FaultyEmbedder, TransientFault

VALUES = ["Berlin", "Toronto", "Barcelona"]


class FakeClock:
    """Monotonic clock under test control (milliseconds advance explicitly)."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


def _resilient(injector=None, *, sleeps=None, clock=None, **knobs):
    """A ResilientEmbedder over a (possibly faulty) MistralEmbedder."""
    inner = MistralEmbedder()
    if injector is not None:
        inner = FaultyEmbedder(inner, injector)
    kwargs = dict(knobs)
    kwargs.setdefault("retry_backoff_ms", 0.01)
    if sleeps is not None:
        kwargs["sleep"] = sleeps.append
    else:
        kwargs["sleep"] = lambda seconds: None
    if clock is not None:
        kwargs["clock"] = clock
    return ResilientEmbedder(inner, **kwargs)


class TestDelegation:
    def test_mirrors_identity_and_cache(self):
        inner = MistralEmbedder()
        wrapped = ResilientEmbedder(inner)
        assert wrapped.name == inner.name
        assert wrapped.dimension == inner.dimension
        assert wrapped.cache is inner.cache

    def test_unknown_attributes_reach_the_inner_embedder(self):
        inner = MistralEmbedder()
        inner.custom_marker = 42
        wrapped = ResilientEmbedder(inner)
        assert wrapped.custom_marker == 42

    def test_delegating_embedder_is_transparent_for_embedding(self):
        inner = MistralEmbedder()
        wrapped = DelegatingEmbedder(inner)
        np.testing.assert_array_equal(
            wrapped.embed_many(VALUES), MistralEmbedder().embed_many(VALUES)
        )

    def test_double_wrap_rejected(self):
        wrapped = ResilientEmbedder(MistralEmbedder())
        with pytest.raises(ValueError, match="another"):
            ResilientEmbedder(wrapped)


class TestValidation:
    @pytest.mark.parametrize(
        "knobs",
        [
            {"retry_max_attempts": 0},
            {"retry_backoff_ms": -1.0},
            {"breaker_failure_threshold": 0},
            {"breaker_reset_ms": 0.0},
        ],
    )
    def test_bad_knobs_rejected_eagerly(self, knobs):
        with pytest.raises(ValueError):
            validate_resilience_knobs(**knobs)
        with pytest.raises(ValueError):
            ResilientEmbedder(MistralEmbedder(), **knobs)


class TestRetries:
    def test_retries_mask_transient_failures_byte_identical(self):
        injector = FaultInjector().script("embed_many", fail_cycle=(2, 3))
        wrapped = _resilient(injector, retry_max_attempts=3)
        result = wrapped.embed_many(VALUES)
        np.testing.assert_array_equal(result, MistralEmbedder().embed_many(VALUES))
        stats = wrapped.resilience_stats()
        assert stats["retries"] == 2
        assert wrapped.state() == "closed"

    def test_exhausted_retries_reraise_the_original_error(self):
        injector = FaultInjector().script("embed_many", fail_all=True)
        wrapped = _resilient(injector, retry_max_attempts=2, breaker_failure_threshold=5)
        with pytest.raises(TransientFault):
            wrapped.embed_many(VALUES)
        # The breaker did not trip, so no EmbedderUnavailable — callers see
        # exactly what the backend raised.
        assert wrapped.state() == "closed"
        assert wrapped.resilience_stats()["failures"] == 1

    def test_backoff_sequence_is_deterministic_and_capped(self):
        runs = []
        for _ in range(2):
            sleeps: list = []
            injector = FaultInjector().script("embed_many", fail_all=True)
            wrapped = _resilient(
                injector,
                sleeps=sleeps,
                retry_max_attempts=6,
                retry_backoff_ms=100.0,
                breaker_failure_threshold=10,
            )
            with pytest.raises(TransientFault):
                wrapped.embed_many(VALUES)
            runs.append(sleeps)
        assert runs[0] == runs[1]
        assert len(runs[0]) == 5
        # Pre-jitter schedule is 100, 200, 400, 800, 800 ms (capped at 8x);
        # jitter scales each by [0.5, 1.0).
        for observed, base_ms in zip(runs[0], [100, 200, 400, 800, 800]):
            assert base_ms * 0.5 / 1000.0 <= observed < base_ms / 1000.0


class TestBreaker:
    def test_opens_after_threshold_and_short_circuits(self):
        injector = FaultInjector().script("embed_many", fail_all=True)
        clock = FakeClock()
        wrapped = _resilient(
            injector,
            clock=clock,
            retry_max_attempts=1,
            breaker_failure_threshold=2,
            breaker_reset_ms=1000.0,
        )
        with pytest.raises(TransientFault):
            wrapped.embed_many(VALUES)
        with pytest.raises(EmbedderUnavailable) as tripped:
            wrapped.embed_many(VALUES)
        assert tripped.value.retry_after_ms == pytest.approx(1000.0)
        assert isinstance(tripped.value.__cause__, TransientFault)
        assert wrapped.state() == "open"

        calls_before = injector.statistics()["embed_many"]["calls"]
        with pytest.raises(EmbedderUnavailable) as short:
            wrapped.embed_many(VALUES)
        # Short-circuited: the inner embedder was never touched.
        assert injector.statistics()["embed_many"]["calls"] == calls_before
        assert 0.0 < short.value.retry_after_ms <= 1000.0
        assert wrapped.resilience_stats()["breaker_short_circuits"] == 1

    def test_half_open_probe_success_closes(self):
        injector = FaultInjector().script("embed_many", fail_all=True)
        clock = FakeClock()
        wrapped = _resilient(
            injector,
            clock=clock,
            retry_max_attempts=1,
            breaker_failure_threshold=1,
            breaker_reset_ms=1000.0,
        )
        with pytest.raises(EmbedderUnavailable):
            wrapped.embed_many(VALUES)
        injector.heal()
        clock.advance_ms(1001.0)
        assert wrapped.state() == "half_open"
        result = wrapped.embed_many(VALUES)
        np.testing.assert_array_equal(result, MistralEmbedder().embed_many(VALUES))
        stats = wrapped.resilience_stats()
        assert wrapped.state() == "closed"
        assert stats["half_open_probes"] == 1
        assert stats["breaker_closes"] == 1

    def test_half_open_probe_failure_reopens_full_window(self):
        injector = FaultInjector().script("embed_many", fail_all=True)
        clock = FakeClock()
        wrapped = _resilient(
            injector,
            clock=clock,
            retry_max_attempts=1,
            breaker_failure_threshold=1,
            breaker_reset_ms=1000.0,
        )
        with pytest.raises(EmbedderUnavailable):
            wrapped.embed_many(VALUES)
        clock.advance_ms(1001.0)
        with pytest.raises(EmbedderUnavailable):
            wrapped.embed_many(VALUES)  # the probe fails
        assert wrapped.state() == "open"
        assert wrapped.retry_after_ms() == pytest.approx(1000.0)

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        wrapped = _resilient(
            None,
            clock=clock,
            retry_max_attempts=1,
            breaker_failure_threshold=1,
            breaker_reset_ms=1000.0,
        )
        injector = FaultInjector().script("embed_many", fail_all=True)
        wrapped.inner = FaultyEmbedder(wrapped.inner, injector)
        with pytest.raises(EmbedderUnavailable):
            wrapped.embed_many(VALUES)
        clock.advance_ms(1001.0)
        # First admission wins the probe slot; a concurrent second caller is
        # short-circuited until the probe resolves.
        assert wrapped._admit() is True
        with pytest.raises(EmbedderUnavailable):
            wrapped._admit()


class TestOverrides:
    def test_thread_local_override_applies_inside_context_only(self):
        injector = FaultInjector().script("embed_many", fail_all=True)
        sleeps: list = []
        wrapped = _resilient(
            injector, sleeps=sleeps, retry_max_attempts=3, breaker_failure_threshold=99
        )
        with wrapped.overrides(retry_max_attempts=1):
            with pytest.raises(TransientFault):
                wrapped.embed_many(VALUES)
        assert sleeps == []  # single attempt, no backoff
        with pytest.raises(TransientFault):
            wrapped.embed_many(VALUES)
        assert len(sleeps) == 2  # back to three attempts

    def test_unknown_and_invalid_overrides_rejected(self):
        wrapped = _resilient(None)
        with pytest.raises(TypeError):
            with wrapped.overrides(degraded_mode="surface"):
                pass
        with pytest.raises(ValueError):
            with wrapped.overrides(retry_max_attempts=0):
                pass


class TestEngineIntegration:
    def test_engine_auto_wraps_with_config_knobs(self):
        engine = IntegrationEngine(FuzzyFDConfig(retry_max_attempts=7))
        assert isinstance(engine.embedder, ResilientEmbedder)
        assert engine.embedder.retry_max_attempts == 7
        assert engine.resilience_state()["state"] == "closed"

    def test_caller_supplied_wrapper_passes_through(self):
        wrapped = ResilientEmbedder(MistralEmbedder(), retry_max_attempts=9)
        engine = IntegrationEngine(FuzzyFDConfig(embedder=wrapped))
        assert engine.embedder is wrapped
        assert engine.embedder.retry_max_attempts == 9
