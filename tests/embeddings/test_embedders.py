"""Tests for the simulated embedding models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import (
    BertEmbedder,
    EmbeddingCache,
    ExactEmbedder,
    FastTextEmbedder,
    Llama3Embedder,
    MistralEmbedder,
    RobertaEmbedder,
    available_embedders,
    get_embedder,
)
from repro.embeddings.registry import TABLE1_MODELS, register_embedder

ALL_EMBEDDERS = [
    ExactEmbedder,
    FastTextEmbedder,
    BertEmbedder,
    RobertaEmbedder,
    Llama3Embedder,
    MistralEmbedder,
]


class TestRegistry:
    def test_table1_models_are_registered(self):
        assert set(TABLE1_MODELS) <= set(available_embedders())

    def test_get_embedder(self):
        assert get_embedder("fasttext").name == "fasttext"

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            get_embedder("gpt-17")

    def test_register_custom(self):
        register_embedder("custom-exact", ExactEmbedder)
        assert get_embedder("custom-exact").name == "exact"


class TestEmbedderContract:
    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_unit_norm(self, embedder_cls):
        embedder = embedder_cls()
        vector = embedder.embed("Berlin")
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_deterministic(self, embedder_cls):
        first = embedder_cls().embed("Toronto")
        second = embedder_cls().embed("Toronto")
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_dimension(self, embedder_cls):
        embedder = embedder_cls()
        assert embedder.embed("x").shape == (embedder.dimension,)

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_embed_many_shape(self, embedder_cls):
        embedder = embedder_cls()
        matrix = embedder.embed_many(["a", "b", "c"])
        assert matrix.shape == (3, embedder.dimension)

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_empty_and_none_values_handled(self, embedder_cls):
        embedder = embedder_cls()
        assert embedder.embed("").shape == (embedder.dimension,)
        assert embedder.embed(None).shape == (embedder.dimension,)

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_identical_values_have_zero_distance(self, embedder_cls):
        embedder = embedder_cls()
        assert embedder.cosine_distance("Boston", "Boston") == pytest.approx(0.0, abs=1e-9)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            FastTextEmbedder(dimension=0)

    @given(st.text(min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_mistral_embeddings_always_unit_norm(self, text):
        embedder = MistralEmbedder()
        assert np.linalg.norm(embedder.embed(text)) == pytest.approx(1.0, abs=1e-6)


class TestSemanticBehaviour:
    def test_typos_are_close_for_all_models(self):
        for embedder_cls in (FastTextEmbedder, BertEmbedder, MistralEmbedder):
            embedder = embedder_cls()
            assert embedder.cosine_distance("Berlinn", "Berlin") < 0.7

    def test_case_changes_are_free(self):
        embedder = MistralEmbedder()
        assert embedder.cosine_distance("Barcelona", "barcelona") == pytest.approx(0.0, abs=1e-9)

    def test_unrelated_values_are_far(self):
        for embedder_cls in (FastTextEmbedder, MistralEmbedder):
            embedder = embedder_cls()
            assert embedder.cosine_distance("Toronto", "Boston") > 0.7

    def test_llm_resolves_country_codes_fasttext_does_not(self):
        mistral = MistralEmbedder()
        fasttext = FastTextEmbedder()
        assert mistral.cosine_distance("Canada", "CA") < 0.7
        assert fasttext.cosine_distance("Canada", "CA") > 0.7

    def test_exact_embedder_is_case_sensitive(self):
        embedder = ExactEmbedder()
        assert embedder.cosine_distance("Berlin", "berlin") > 0.7

    def test_concept_knowledge_is_deterministic(self):
        embedder = MistralEmbedder()
        assert embedder.knows_concept("spain") == embedder.knows_concept("spain")

    def test_coverage_bounds_validated(self):
        from repro.embeddings.transformer import SimulatedTransformerEmbedder

        with pytest.raises(ValueError):
            SimulatedTransformerEmbedder(lexicon_coverage=1.5)

    def test_token_level_abbreviation_resolved_by_llm(self):
        embedder = MistralEmbedder()
        assert embedder.cosine_distance("Main Street", "Main St") < 0.3


class TestEmbeddingCache:
    def test_hits_and_misses_counted(self):
        cache = EmbeddingCache()
        embedder = MistralEmbedder(cache=cache)
        embedder.embed("Berlin")
        embedder.embed("Berlin")
        assert cache.hits == 1
        assert cache.misses >= 1
        assert len(cache) == 1

    def test_eviction_at_capacity(self):
        cache = EmbeddingCache(max_entries=2)
        embedder = FastTextEmbedder(cache=cache)
        for value in ("a", "b", "c"):
            embedder.embed(value)
        assert len(cache) == 2

    def test_overwrite_at_capacity_does_not_evict(self):
        import numpy as np

        cache = EmbeddingCache(max_entries=2)
        cache.put("m", "a", np.zeros(2))
        cache.put("m", "b", np.zeros(2))
        cache.put("m", "a", np.ones(2))
        assert len(cache) == 2
        assert cache.get("m", "b") is not None
        assert cache.get("m", "a")[0] == 1.0

    def test_zero_capacity_does_not_crash(self):
        import numpy as np

        cache = EmbeddingCache(max_entries=0)
        cache.put("m", "a", np.zeros(2))
        cache.put("m", "b", np.zeros(2))
        assert len(cache) == 1

    def test_clear(self):
        cache = EmbeddingCache()
        embedder = FastTextEmbedder(cache=cache)
        embedder.embed("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_cache_is_per_model_name(self):
        cache = EmbeddingCache()
        mistral = MistralEmbedder(cache=cache)
        bert = BertEmbedder(cache=cache)
        mistral.embed("Berlin")
        bert.embed("Berlin")
        assert len(cache) == 2
