"""Tests for the fine-tuned embedder (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FuzzyFDConfig, FuzzyFullDisjunction
from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.embeddings import FastTextEmbedder, FineTunedEmbedder, MistralEmbedder
from repro.table import Table


class TestFineTunedEmbedder:
    def test_unfitted_behaves_like_base(self):
        base = FastTextEmbedder()
        tuned = FineTunedEmbedder(base)
        assert not tuned.is_fitted
        assert tuned.cosine_distance("Berlin", "Boston") == pytest.approx(
            base.cosine_distance("Berlin", "Boston"), abs=1e-9
        )

    def test_positive_pairs_become_close(self):
        base = FastTextEmbedder()
        tuned = FineTunedEmbedder(base).fit(positive_pairs=[("WHO", "World Health Organization")])
        before = base.cosine_distance("WHO", "World Health Organization")
        after = tuned.cosine_distance("WHO", "World Health Organization")
        assert after < before
        assert after < 0.5

    def test_transitive_positive_closure(self):
        tuned = FineTunedEmbedder(FastTextEmbedder()).fit(
            positive_pairs=[("US", "United States"), ("United States", "USA")]
        )
        assert tuned.cosine_distance("US", "USA") < 0.5

    def test_negative_pairs_become_more_distant(self):
        base = MistralEmbedder()
        # The base simulator considers these close (shared tokens); declare
        # them non-matches and verify they move apart.
        left, right = "Springfield Illinois", "Springfield Massachusetts"
        before = base.cosine_distance(left, right)
        tuned = FineTunedEmbedder(base).fit(positive_pairs=[], negative_pairs=[(left, right)])
        after = tuned.cosine_distance(left, right)
        assert after > before

    def test_fit_returns_self_and_counts_values(self):
        tuned = FineTunedEmbedder(FastTextEmbedder())
        result = tuned.fit(positive_pairs=[("a", "b"), ("c", "d")])
        assert result is tuned
        assert tuned.known_values() == 4
        assert tuned.is_fitted

    def test_refit_replaces_previous_state(self):
        tuned = FineTunedEmbedder(FastTextEmbedder()).fit(positive_pairs=[("WHO", "World Health Organization")])
        tuned.fit(positive_pairs=[("MIT", "Massachusetts Institute of Technology")])
        assert tuned.cosine_distance("WHO", "World Health Organization") > 0.5
        assert tuned.cosine_distance("MIT", "Massachusetts Institute of Technology") < 0.5

    def test_embeddings_stay_unit_norm(self):
        tuned = FineTunedEmbedder(FastTextEmbedder()).fit(positive_pairs=[("a", "b")])
        assert np.linalg.norm(tuned.embed("a")) == pytest.approx(1.0, abs=1e-9)

    def test_unrelated_values_unaffected(self):
        base = FastTextEmbedder()
        tuned = FineTunedEmbedder(base).fit(positive_pairs=[("WHO", "World Health Organization")])
        assert tuned.cosine_distance("Berlin", "Boston") == pytest.approx(
            base.cosine_distance("Berlin", "Boston"), abs=1e-9
        )


class TestFineTunedInPipeline:
    def test_value_matcher_uses_learned_matches(self):
        # FastText alone cannot match the acronym; after fitting it can.
        columns = [
            ColumnValues("c1", ["World Health Organization", "Berlin"]),
            ColumnValues("c2", ["WHO", "Boston"]),
        ]
        plain = ValueMatcher(FastTextEmbedder(), threshold=0.7).match_columns(columns)
        assert all(len(match_set) == 1 for match_set in plain.sets)

        tuned = FineTunedEmbedder(FastTextEmbedder()).fit(
            positive_pairs=[("WHO", "World Health Organization")]
        )
        fitted = ValueMatcher(tuned, threshold=0.7).match_columns(columns)
        who_set = next(
            match_set for match_set in fitted.sets
            if ("c2", "WHO") in match_set.members
        )
        assert ("c1", "World Health Organization") in who_set.members

    def test_fuzzy_fd_accepts_finetuned_embedder(self, covid_tables):
        tuned = FineTunedEmbedder(MistralEmbedder()).fit(
            positive_pairs=[("Berlinn", "Berlin"), ("barcelona", "Barcelona")]
        )
        config = FuzzyFDConfig(embedder=tuned)
        result = FuzzyFullDisjunction(config).integrate(covid_tables)
        assert result.table.num_rows == 5
