"""Tests for the three benchmark generators (Auto-Join, ALITE EM, IMDB)."""

from __future__ import annotations

import pytest

from repro.datasets import AliteEmBenchmark, AutoJoinBenchmark, ImdbBenchmark


class TestAutoJoinBenchmark:
    @pytest.fixture(scope="class")
    def sets(self):
        return AutoJoinBenchmark(n_sets=6, values_per_column=30, seed=3).generate()

    def test_number_of_sets(self, sets):
        assert len(sets) == 6

    def test_default_configuration_covers_31_sets_and_17_topics(self):
        bench = AutoJoinBenchmark()
        assert bench.n_sets == 31
        assert len(bench._topics_cycle()) == 17

    def test_each_set_has_two_or_three_columns(self, sets):
        for integration_set in sets:
            assert len(integration_set.columns) in (2, 3)

    def test_values_within_column_are_distinct(self, sets):
        for integration_set in sets:
            for values in integration_set.columns.values():
                assert len(values) == len(set(values))

    def test_gold_sets_reference_existing_values(self, sets):
        for integration_set in sets:
            for gold_set in integration_set.gold_sets:
                for column_id, value in gold_set:
                    assert value in integration_set.columns[column_id]

    def test_gold_sets_are_disjoint(self, sets):
        for integration_set in sets:
            seen = set()
            for gold_set in integration_set.gold_sets:
                for member in gold_set:
                    assert member not in seen
                    seen.add(member)

    def test_some_gold_sets_span_columns(self, sets):
        for integration_set in sets:
            assert any(len(gold_set) >= 2 for gold_set in integration_set.gold_sets)

    def test_generation_is_deterministic(self):
        first = AutoJoinBenchmark(n_sets=2, values_per_column=20, seed=9).generate()
        second = AutoJoinBenchmark(n_sets=2, values_per_column=20, seed=9).generate()
        assert [s.columns for s in first] == [s.columns for s in second]
        assert [s.gold_sets for s in first] == [s.gold_sets for s in second]

    def test_column_values_and_tables_views(self, sets):
        integration_set = sets[0]
        columns = integration_set.column_values()
        assert len(columns) == len(integration_set.columns)
        tables = integration_set.tables()
        assert all(table.num_columns == 1 for table in tables)
        assert integration_set.total_values == sum(len(v) for v in integration_set.columns.values())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoJoinBenchmark(n_sets=0)
        with pytest.raises(ValueError):
            AutoJoinBenchmark(overlap=0.0)


class TestAliteEmBenchmark:
    @pytest.fixture(scope="class")
    def sets(self):
        return AliteEmBenchmark(n_sets=2, entities_per_set=20, seed=5).generate()

    def test_number_of_sets_and_tables(self, sets):
        assert len(sets) == 2
        assert all(len(integration_set.tables) == 3 for integration_set in sets)

    def test_every_table_has_name_column(self, sets):
        for integration_set in sets:
            for table in integration_set.tables:
                assert "Name" in table.schema

    def test_gold_clusters_reference_existing_rows(self, sets):
        for integration_set in sets:
            tables = {table.name: table for table in integration_set.tables}
            for cluster in integration_set.gold_clusters:
                for source in cluster:
                    table_name, row_id = source.rsplit(":", 1)
                    assert table_name in tables
                    assert int(row_id) < tables[table_name].num_rows

    def test_gold_clusters_cover_every_row_exactly_once(self, sets):
        for integration_set in sets:
            sources = [source for cluster in integration_set.gold_clusters for source in cluster]
            assert len(sources) == len(set(sources)) == integration_set.total_tuples

    def test_multi_table_entities_exist(self, sets):
        assert all(integration_set.multi_table_entities() > 0 for integration_set in sets)

    def test_deterministic(self):
        first = AliteEmBenchmark(n_sets=1, entities_per_set=15, seed=2).generate()[0]
        second = AliteEmBenchmark(n_sets=1, entities_per_set=15, seed=2).generate()[0]
        assert first.gold_clusters == second.gold_clusters
        assert [t.rows for t in first.tables] == [t.rows for t in second.tables]

    def test_requires_two_tables(self):
        with pytest.raises(ValueError):
            AliteEmBenchmark(tables_per_set=1)


class TestImdbBenchmark:
    @pytest.fixture(scope="class")
    def tables(self):
        return ImdbBenchmark(seed=1).tables(600)

    def test_six_tables_in_imdb_schema(self, tables):
        names = {table.name for table in tables}
        assert names == {
            "title_basics",
            "title_ratings",
            "title_akas",
            "title_principals",
            "name_basics",
            "title_crew",
        }

    def test_total_tuples_close_to_requested(self, tables):
        total = sum(table.num_rows for table in tables)
        assert 0.8 * 600 <= total <= 1.05 * 600

    def test_keys_are_referentially_consistent(self, tables):
        by_name = {table.name: table for table in tables}
        titles = set(by_name["title_basics"].column("tconst"))
        people = set(by_name["name_basics"].column("nconst"))
        assert set(by_name["title_ratings"].column("tconst")) <= titles
        assert set(by_name["title_principals"].column("tconst")) <= titles
        assert set(by_name["title_principals"].column("nconst")) <= people
        assert set(by_name["title_crew"].column("tconst")) <= titles

    def test_sweep_sizes_match_paper(self):
        assert ImdbBenchmark().sweep_sizes() == [5000, 10000, 15000, 20000, 25000, 30000]

    def test_deterministic(self):
        first = ImdbBenchmark(seed=4).tables(200)
        second = ImdbBenchmark(seed=4).tables(200)
        assert [t.rows for t in first] == [t.rows for t in second]

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            ImdbBenchmark().tables(5)
