"""Tests for the corruption generators and topic vocabularies."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.corruptions import CORRUPTION_KINDS, CorruptionProfile, Corruptor, DEFAULT_PROFILES
from repro.datasets.vocabularies import (
    SEMANTIC_TOPICS,
    SURFACE_TOPICS,
    topic_category,
    topic_names,
    topic_vocabulary,
)
from repro.embeddings.lexicon import default_lexicon


class TestVocabularies:
    def test_topic_names_cover_both_categories(self):
        names = topic_names()
        assert set(SEMANTIC_TOPICS) <= set(names)
        assert set(SURFACE_TOPICS) <= set(names)

    def test_topic_category(self):
        assert topic_category("countries") == "semantic"
        assert topic_category("cities") == "surface"
        with pytest.raises(ValueError):
            topic_category("unknown")

    def test_unknown_topic_raises(self):
        with pytest.raises(ValueError):
            topic_vocabulary("nonexistent")

    @pytest.mark.parametrize("topic", ["cities", "companies", "songs", "countries", "street_addresses"])
    def test_vocabularies_have_distinct_entities(self, topic):
        vocabulary = topic_vocabulary(topic)
        assert len(vocabulary.entities) == len(set(vocabulary.entities))
        assert len(vocabulary) >= 8

    def test_sample_is_deterministic(self):
        vocabulary = topic_vocabulary("companies")
        assert vocabulary.sample(10, seed=3) == vocabulary.sample(10, seed=3)
        assert vocabulary.sample(10, seed=3) != vocabulary.sample(10, seed=4)

    def test_sample_larger_than_pool_returns_pool(self):
        vocabulary = topic_vocabulary("music_genres")
        assert len(vocabulary.sample(10_000)) == len(vocabulary)


class TestCorruptor:
    @pytest.fixture(scope="class")
    def corruptor(self):
        return Corruptor(seed=1)

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_kind_returns_non_empty_string(self, corruptor, kind):
        rng = random.Random(0)
        result = corruptor.corrupt("United States", kind, rng)
        assert isinstance(result, str) and result

    def test_unknown_kind_raises(self, corruptor):
        with pytest.raises(ValueError):
            corruptor.corrupt("x", "explode")

    def test_typo_is_single_edit(self, corruptor):
        from repro.utils.text import levenshtein

        rng = random.Random(5)
        for _ in range(20):
            corrupted = corruptor.corrupt("Barcelona", "typo", rng)
            assert levenshtein("Barcelona", corrupted) <= 2

    def test_case_changes_only_case(self, corruptor):
        rng = random.Random(2)
        corrupted = corruptor.corrupt("Berlin", "case", rng)
        assert corrupted.lower() == "berlin"

    def test_abbreviation_uses_lexicon_forms(self, corruptor):
        lexicon = default_lexicon()
        rng = random.Random(3)
        corrupted = corruptor.corrupt("United States", "abbreviation", rng)
        assert lexicon.same_concept("United States", corrupted) or corrupted != "United States"

    def test_abbreviation_falls_back_to_initialism(self, corruptor):
        rng = random.Random(4)
        corrupted = corruptor.corrupt("Random Person Name", "abbreviation", rng)
        assert corrupted  # never empty; typically "RPN" or a token-level change

    def test_synonym_replaces_known_concepts(self, corruptor):
        lexicon = default_lexicon()
        rng = random.Random(6)
        corrupted = corruptor.corrupt("car", "synonym", rng)
        assert lexicon.same_concept("car", corrupted)

    def test_format_preserves_letters(self, corruptor):
        rng = random.Random(7)
        for _ in range(10):
            corrupted = corruptor.corrupt("John Smith", "format", rng)
            letters = sorted(ch for ch in corrupted.lower() if ch.isalpha())
            assert letters == sorted("johnsmith")

    def test_deterministic_for_same_seed(self):
        rng_a = random.Random(9)
        rng_b = random.Random(9)
        first = Corruptor(seed=1).corrupt("Boston", "typo", rng_a)
        second = Corruptor(seed=1).corrupt("Boston", "typo", rng_b)
        assert first == second

    @given(st.sampled_from(list(CORRUPTION_KINDS)), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_corruptions_never_crash(self, kind, seed):
        corruptor = Corruptor(seed=0)
        rng = random.Random(seed)
        for value in ("Berlin", "a", "World Health Organization", "42 Main Street"):
            assert corruptor.corrupt(value, kind, rng)


class TestProfiles:
    def test_default_profiles_have_distinct_names(self):
        names = [profile.name for profile in DEFAULT_PROFILES]
        assert len(names) == len(set(names))

    def test_profile_sampling_respects_zero_weights(self):
        profile = CorruptionProfile("only_case", {"case": 1.0})
        rng = random.Random(0)
        assert all(profile.sample_kind(rng) == "case" for _ in range(20))

    def test_all_zero_weights_fall_back_to_identity(self):
        profile = CorruptionProfile("nothing", {"case": 0.0})
        assert profile.sample_kind(random.Random(0)) == "identity"

    def test_kinds_listing(self):
        profile = CorruptionProfile("p", {"typo": 0.5, "case": 0.0})
        assert profile.kinds() == ["typo"]

    def test_corrupt_with_profile_reports_kind(self):
        corruptor = Corruptor(seed=0)
        profile = CorruptionProfile("only_case", {"case": 1.0})
        corrupted, kind = corruptor.corrupt_with_profile("Berlin", profile, random.Random(1))
        assert kind == "case"
        assert corrupted.lower() == "berlin"
