"""Tests for the Table/Row/Schema substrate."""

from __future__ import annotations

import pytest

from repro.table import NULL, Schema, Table, is_null


class TestSchema:
    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Schema(["a", "a"])

    def test_position_lookup(self):
        schema = Schema(["a", "b", "c"])
        assert schema.position("b") == 1
        with pytest.raises(KeyError):
            schema.position("missing")

    def test_union_preserves_order(self):
        left = Schema(["a", "b"])
        right = Schema(["b", "c"])
        assert list(left.union(right)) == ["a", "b", "c"]

    def test_intersection_and_difference(self):
        left = Schema(["a", "b", "c"])
        right = Schema(["c", "a"])
        assert left.intersection(right) == ["a", "c"]
        assert left.difference(right) == ["b"]

    def test_renamed(self):
        schema = Schema(["a", "b"]).renamed({"a": "x"})
        assert list(schema) == ["x", "b"]

    def test_equality_with_sequences(self):
        assert Schema(["a", "b"]) == ["a", "b"]
        assert Schema(["a", "b"]) == ("a", "b")


class TestTableConstruction:
    def test_rows_from_sequences(self):
        table = Table("t", ["a", "b"], [(1, 2), (3, 4)])
        assert table.num_rows == 2
        assert table.cell(1, "b") == 4

    def test_rows_from_mappings_fill_nulls(self):
        table = Table("t", ["a", "b"], [{"a": 1}])
        assert is_null(table.cell(0, "b"))

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Table("t", ["a", "b"], [(1,)])

    def test_from_dicts_infers_columns(self):
        table = Table.from_dicts("t", [{"a": 1}, {"b": 2}])
        assert set(table.columns) == {"a", "b"}
        assert table.num_rows == 2

    def test_from_columns(self):
        table = Table.from_columns("t", {"a": [1, 2], "b": [3, 4]})
        assert table.column("a") == [1, 2]

    def test_from_columns_unequal_lengths(self):
        with pytest.raises(ValueError):
            Table.from_columns("t", {"a": [1], "b": [1, 2]})

    def test_provenance_length_checked(self):
        with pytest.raises(ValueError):
            Table("t", ["a"], [(1,), (2,)], provenance=[{"x"}])


class TestTableAccess:
    @pytest.fixture()
    def table(self):
        return Table("t", ["City", "Cases"], [("Berlin", 5), ("Boston", NULL), ("Berlin", 7)])

    def test_row_view(self, table):
        row = table.row(0)
        assert row["City"] == "Berlin"
        assert row[1] == 5
        assert row.as_dict() == {"City": "Berlin", "Cases": 5}

    def test_column_values_drop_nulls(self, table):
        assert table.column_values("Cases") == [5, 7]
        assert len(table.column_values("Cases", dropna=False)) == 3

    def test_distinct_values_preserve_order(self, table):
        assert table.distinct_values("City") == ["Berlin", "Boston"]

    def test_null_fraction(self, table):
        assert table.null_fraction("Cases") == pytest.approx(1 / 3)
        assert table.null_fraction("City") == 0.0

    def test_iteration_yields_rows(self, table):
        assert [row["City"] for row in table] == ["Berlin", "Boston", "Berlin"]


class TestTableTransforms:
    @pytest.fixture()
    def table(self):
        return Table("t", ["City", "Country"], [("Berlin", "DE"), ("Boston", "US")])

    def test_project(self, table):
        projected = table.project(["Country"])
        assert projected.columns == ("Country",)
        assert projected.column("Country") == ["DE", "US"]

    def test_rename(self, table):
        renamed = table.rename({"City": "Town"})
        assert "Town" in renamed.schema
        assert renamed.column("Town") == ["Berlin", "Boston"]

    def test_filter_rows(self, table):
        filtered = table.filter_rows(lambda row: row["Country"] == "US")
        assert filtered.num_rows == 1
        assert filtered.cell(0, "City") == "Boston"

    def test_map_column_skips_nulls(self):
        table = Table("t", ["a"], [(1,), (NULL,)])
        mapped = table.map_column("a", lambda value: value * 10)
        assert mapped.column("a", )[0] == 10
        assert is_null(mapped.column("a")[1])

    def test_replace_values(self, table):
        replaced = table.replace_values("Country", {"DE": "Germany"})
        assert replaced.column("Country") == ["Germany", "US"]

    def test_add_column(self, table):
        extended = table.add_column("Flag", ["x", "y"])
        assert extended.columns[-1] == "Flag"
        assert extended.column("Flag") == ["x", "y"]

    def test_add_column_length_mismatch(self, table):
        with pytest.raises(ValueError):
            table.add_column("Flag", ["only-one"])

    def test_drop_columns(self, table):
        assert table.drop_columns(["Country"]).columns == ("City",)

    def test_head_and_sample(self, table):
        assert table.head(1).num_rows == 1
        assert table.sample_rows(1, seed=3).num_rows == 1
        assert table.sample_rows(10).num_rows == 2

    def test_distinct_rows(self):
        table = Table("t", ["a"], [(1,), (1,), (2,)])
        assert table.distinct_rows().num_rows == 2

    def test_sorted_rows_orders_nulls_first(self):
        table = Table("t", ["a"], [("b",), (NULL,), ("a",)])
        values = table.sorted_rows().column("a", )
        assert is_null(values[0])
        assert values[1:] == ["a", "b"]

    def test_with_default_provenance(self, table):
        with_prov = table.with_default_provenance()
        assert with_prov.provenance == [frozenset({"t:0"}), frozenset({"t:1"})]

    def test_same_rows_order_insensitive(self, table):
        shuffled = Table("other", ["Country", "City"], [("US", "Boston"), ("DE", "Berlin")])
        assert table.same_rows(shuffled)

    def test_pretty_string_renders_nulls(self):
        table = Table("t", ["a"], [(NULL,)])
        assert "⊥" in table.to_pretty_string()


class TestNulls:
    def test_null_is_falsy_and_equal_to_itself(self):
        assert not NULL
        assert NULL == NULL

    def test_is_null_variants(self):
        from repro.table.nulls import LabeledNull

        assert is_null(None)
        assert is_null(NULL)
        assert is_null(LabeledNull())
        assert is_null(float("nan"))
        assert not is_null(0)
        assert not is_null("")

    def test_labeled_nulls_distinct(self):
        from repro.table.nulls import LabeledNull

        assert LabeledNull(1) == LabeledNull(1)
        assert LabeledNull(1) != LabeledNull(2)
        assert LabeledNull() != LabeledNull()
