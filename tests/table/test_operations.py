"""Tests for relational operations (joins, outer union, subsumption)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.table import (
    NULL,
    Table,
    concat_rows,
    cross_product,
    full_outer_join,
    inner_join,
    is_null,
    left_outer_join,
    outer_union,
    remove_subsumed,
    subsumes,
)
from repro.table.nulls import LabeledNull
from repro.table.operations import join_consistent, merge_rows
from repro.table.schema import Schema


@pytest.fixture()
def cities():
    return Table("cities", ["City", "Country"], [("Berlin", "DE"), ("Boston", "US"), ("Lyon", "FR")])


@pytest.fixture()
def stats():
    return Table("stats", ["City", "Cases"], [("Berlin", 10), ("Boston", 20), ("Madrid", 30)])


class TestInnerJoin:
    def test_joins_on_shared_column(self, cities, stats):
        joined = inner_join(cities, stats)
        assert set(joined.columns) == {"City", "Country", "Cases"}
        assert joined.num_rows == 2
        by_city = {row["City"]: row for row in joined}
        assert by_city["Berlin"]["Cases"] == 10

    def test_no_shared_columns_yields_empty(self):
        left = Table("l", ["a"], [(1,)])
        right = Table("r", ["b"], [(2,)])
        assert inner_join(left, right).num_rows == 0

    def test_null_join_values_do_not_match(self):
        left = Table("l", ["k", "x"], [(NULL, 1)])
        right = Table("r", ["k", "y"], [(NULL, 2)])
        assert inner_join(left, right).num_rows == 0

    def test_multi_match_produces_all_combinations(self):
        left = Table("l", ["k", "x"], [("a", 1)])
        right = Table("r", ["k", "y"], [("a", 2), ("a", 3)])
        assert inner_join(left, right).num_rows == 2


class TestOuterJoins:
    def test_left_outer_preserves_unmatched_left(self, cities, stats):
        joined = left_outer_join(cities, stats)
        assert joined.num_rows == 3
        lyon = next(row for row in joined if row["City"] == "Lyon")
        assert is_null(lyon["Cases"])

    def test_full_outer_preserves_both_sides(self, cities, stats):
        joined = full_outer_join(cities, stats)
        assert joined.num_rows == 4
        madrid = next(row for row in joined if row["City"] == "Madrid")
        assert is_null(madrid["Country"])

    def test_full_outer_without_shared_columns_keeps_everything(self):
        left = Table("l", ["a"], [(1,)])
        right = Table("r", ["b"], [(2,)])
        joined = full_outer_join(left, right)
        assert joined.num_rows == 2

    def test_provenance_merged_on_join(self, cities, stats):
        joined = full_outer_join(cities.with_default_provenance(), stats.with_default_provenance())
        berlin = next(i for i, row in enumerate(joined) if row["City"] == "Berlin")
        assert joined.provenance[berlin] == frozenset({"cities:0", "stats:0"})


class TestJoinHelpers:
    def test_join_consistent_requires_agreement(self):
        shared = [(0, 0)]
        assert join_consistent(("a",), ("a",), shared)
        assert not join_consistent(("a",), ("b",), shared)

    def test_join_consistent_requires_some_non_null(self):
        shared = [(0, 0)]
        assert not join_consistent((NULL,), ("a",), shared)

    def test_merge_rows_prefers_non_null(self):
        left_schema = Schema(["a", "b"])
        right_schema = Schema(["b", "c"])
        output = left_schema.union(right_schema)
        merged = merge_rows(("x", NULL), ("y", "z"), left_schema, right_schema, output)
        assert merged == ("x", "y", "z")


class TestOuterUnion:
    def test_schema_is_union(self, cities, stats):
        union = outer_union([cities, stats])
        assert set(union.columns) == {"City", "Country", "Cases"}
        assert union.num_rows == 6

    def test_missing_attributes_are_null(self, cities, stats):
        union = outer_union([cities, stats])
        assert is_null(union.cell(0, "Cases"))

    def test_labeled_nulls_are_unique(self, cities, stats):
        union = outer_union([cities, stats], labeled_nulls=True)
        first = union.cell(0, "Cases")
        second = union.cell(1, "Cases")
        assert isinstance(first, LabeledNull)
        assert first != second

    def test_provenance_defaults_to_table_row(self, cities, stats):
        union = outer_union([cities, stats])
        assert union.provenance[0] == frozenset({"cities:0"})
        assert union.provenance[3] == frozenset({"stats:0"})

    def test_requires_at_least_one_table(self):
        with pytest.raises(ValueError):
            outer_union([])


class TestCrossProductAndConcat:
    def test_cross_product_sizes(self):
        left = Table("l", ["a"], [(1,), (2,)])
        right = Table("r", ["b"], [(3,), (4,), (5,)])
        assert cross_product(left, right).num_rows == 6

    def test_cross_product_rejects_shared_columns(self, cities, stats):
        with pytest.raises(ValueError):
            cross_product(cities, stats)

    def test_concat_requires_same_schema(self, cities, stats):
        with pytest.raises(ValueError):
            concat_rows("x", [cities, stats])

    def test_concat_appends_rows(self, cities):
        doubled = concat_rows("x", [cities, cities])
        assert doubled.num_rows == 6


class TestSubsumption:
    def test_tuple_subsumes_itself(self):
        assert subsumes(("a", "b"), ("a", "b"))

    def test_more_informative_subsumes_less(self):
        assert subsumes(("a", "b"), ("a", NULL))
        assert not subsumes(("a", NULL), ("a", "b"))

    def test_conflicting_values_do_not_subsume(self):
        assert not subsumes(("a", "b"), ("a", "c"))

    def test_remove_subsumed_drops_partial_tuples(self):
        table = Table("t", ["a", "b"], [("x", "y"), ("x", NULL), (NULL, "y")])
        reduced = remove_subsumed(table)
        assert reduced.num_rows == 1
        assert reduced.rows[0] == ("x", "y")

    def test_remove_subsumed_merges_provenance(self):
        table = Table(
            "t",
            ["a", "b"],
            [("x", "y"), ("x", NULL)],
            provenance=[{"p:0"}, {"q:0"}],
        )
        reduced = remove_subsumed(table)
        assert reduced.num_rows == 1
        assert reduced.provenance[0] == frozenset({"p:0", "q:0"})

    def test_exact_duplicates_collapse(self):
        table = Table("t", ["a"], [("x",), ("x",)])
        assert remove_subsumed(table).num_rows == 1

    def test_incomparable_tuples_are_kept(self):
        table = Table("t", ["a", "b"], [("x", NULL), (NULL, "y")])
        assert remove_subsumed(table).num_rows == 2

    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.sampled_from(["a", "b"])),
                st.one_of(st.none(), st.sampled_from(["c", "d"])),
                st.one_of(st.none(), st.sampled_from(["e", "f"])),
            ),
            max_size=14,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_remove_subsumed_is_minimal_and_complete(self, raw_rows):
        rows = [tuple(NULL if cell is None else cell for cell in row) for row in raw_rows]
        table = Table("t", ["a", "b", "c"], rows)
        reduced = remove_subsumed(table)
        kept = reduced.rows
        # Minimality: no kept tuple is subsumed by a different kept tuple
        # (duplicates have been collapsed, so distinct kept tuples must be
        # incomparable under subsumption).
        for i, left in enumerate(kept):
            for j, right in enumerate(kept):
                if i != j:
                    assert not subsumes(left, right)
        # Every original tuple is subsumed by some kept tuple.
        for row in rows:
            assert any(subsumes(keeper, row) for keeper in kept)
