"""Tests for CSV / JSON table I/O."""

from __future__ import annotations

import pytest

from repro.table import NULL, Table, is_null, read_csv, write_csv
from repro.table.io import load_directory, read_json_records, write_json_records


@pytest.fixture()
def table():
    return Table(
        "covid",
        ["City", "Cases", "Rate"],
        [("Berlin", "1.4M", NULL), ("Boston", NULL, "335")],
    )


class TestCsvRoundTrip:
    def test_round_trip_preserves_rows(self, table, tmp_path):
        path = write_csv(table, tmp_path / "covid.csv")
        loaded = read_csv(path)
        assert loaded.columns == table.columns
        assert loaded.num_rows == table.num_rows
        assert loaded.cell(0, "City") == "Berlin"

    def test_nulls_round_trip_as_empty_cells(self, table, tmp_path):
        loaded = read_csv(write_csv(table, tmp_path / "covid.csv"))
        assert is_null(loaded.cell(0, "Rate"))
        assert is_null(loaded.cell(1, "Cases"))

    def test_table_name_defaults_to_stem(self, table, tmp_path):
        loaded = read_csv(write_csv(table, tmp_path / "my_table.csv"))
        assert loaded.name == "my_table"

    def test_read_missing_header_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_csv(empty)

    def test_short_rows_padded_with_nulls(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b,c\n1,2\n")
        loaded = read_csv(path)
        assert is_null(loaded.cell(0, "c"))

    def test_custom_delimiter(self, table, tmp_path):
        path = write_csv(table, tmp_path / "covid.tsv", delimiter="\t")
        loaded = read_csv(path, delimiter="\t")
        assert loaded.num_rows == 2


class TestJsonRoundTrip:
    def test_round_trip(self, table, tmp_path):
        path = write_json_records(table, tmp_path / "covid.json")
        loaded = read_json_records(path)
        assert loaded.num_rows == table.num_rows
        assert is_null(loaded.cell(0, "Rate"))

    def test_rejects_non_list_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}')
        with pytest.raises(ValueError):
            read_json_records(path)


class TestDirectoryLoading:
    def test_loads_all_csvs_sorted(self, table, tmp_path):
        write_csv(table, tmp_path / "b.csv")
        write_csv(table.with_name("other"), tmp_path / "a.csv")
        tables = load_directory(tmp_path)
        assert [t.name for t in tables] == ["a", "b"]
