"""Programmatic experiment runners.

The benchmark harnesses under ``benchmarks/`` and the ``repro benchmark`` CLI
subcommand both need to run the paper's experiments; this module holds the
shared logic so the experiments can also be reproduced from a notebook or any
other Python program:

* :func:`run_table1_experiment` — Table 1 (value-matching effectiveness per
  embedding model over the Auto-Join benchmark);
* :func:`run_downstream_em_experiment` — Sec. 3.2 (entity matching over the
  integrated tables, regular vs fuzzy FD);
* :func:`run_figure3_experiment` — Figure 3 (runtime sweep over the IMDB
  benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import FuzzyFDConfig, integrate
from repro.core.value_matching import ValueMatcher
from repro.datasets import AliteEmBenchmark, AutoJoinBenchmark, ImdbBenchmark
from repro.em import EntityMatchingPipeline
from repro.em.metrics import EntityMatchingScores
from repro.embeddings.registry import TABLE1_MODELS, get_embedder
from repro.evaluation.metrics import MatchingScores, macro_average, score_integration_set
from repro.evaluation.runtime import RuntimePoint, runtime_sweep


def run_table1_experiment(
    n_sets: int = 31,
    values_per_column: int = 100,
    threshold: float = 0.7,
    models: Sequence[str] = tuple(TABLE1_MODELS),
    seed: int = 42,
) -> Dict[str, MatchingScores]:
    """Macro-averaged value-matching P/R/F1 per embedding model (Table 1)."""
    integration_sets = AutoJoinBenchmark(
        n_sets=n_sets, values_per_column=values_per_column, seed=seed
    ).generate()
    scores: Dict[str, MatchingScores] = {}
    for model in models:
        matcher = ValueMatcher(get_embedder(model), threshold=threshold)
        per_set = [
            score_integration_set(matcher.match_columns(s.column_values()), s.gold_sets)
            for s in integration_sets
        ]
        scores[model] = macro_average(per_set)
    return scores


def run_downstream_em_experiment(
    n_sets: int = 4,
    entities_per_set: int = 50,
    match_threshold: float = 0.65,
    seed: int = 7,
) -> Dict[str, EntityMatchingScores]:
    """Entity-matching P/R/F1 over regular-FD and Fuzzy-FD integration (Sec. 3.2)."""
    integration_sets = AliteEmBenchmark(
        n_sets=n_sets, entities_per_set=entities_per_set, seed=seed
    ).generate()
    pipeline = EntityMatchingPipeline(match_threshold=match_threshold)
    per_method: Dict[str, List[EntityMatchingScores]] = {"regular_fd": [], "fuzzy_fd": []}
    for integration_set in integration_sets:
        for method, fuzzy in (("regular_fd", False), ("fuzzy_fd", True)):
            integrated = integrate(integration_set.tables, fuzzy=fuzzy)
            result = pipeline.run(integrated.table, gold_clusters=integration_set.gold_clusters)
            per_method[method].append(result.scores)
    averaged: Dict[str, EntityMatchingScores] = {}
    for method, scores in per_method.items():
        count = len(scores)
        averaged[method] = EntityMatchingScores(
            precision=sum(score.precision for score in scores) / count,
            recall=sum(score.recall for score in scores) / count,
            f1=sum(score.f1 for score in scores) / count,
            true_positives=sum(score.true_positives for score in scores),
            false_positives=sum(score.false_positives for score in scores),
            false_negatives=sum(score.false_negatives for score in scores),
        )
    return averaged


def run_figure3_experiment(
    sizes: Sequence[int] = (500, 1000, 1500, 2000),
    seed: int = 13,
) -> List[RuntimePoint]:
    """Runtime of regular FD vs Fuzzy FD over IMDB samples (Figure 3)."""
    benchmark = ImdbBenchmark(seed=seed)
    return runtime_sweep(benchmark.tables, sizes=list(sizes), config=FuzzyFDConfig())
