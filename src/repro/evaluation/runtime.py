"""Runtime sweep harness (Figure 3).

Runs regular Full Disjunction (ALITE) and Fuzzy Full Disjunction over
integration sets of increasing size and records the wall-clock time of each,
producing the two series of the paper's Figure 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import FuzzyFDConfig
from repro.core.fuzzy_fd import FuzzyFullDisjunction, RegularFullDisjunction
from repro.table.table import Table


@dataclass
class RuntimePoint:
    """One measurement of the Figure 3 sweep."""

    input_tuples: int
    method: str
    seconds: float
    output_tuples: int

    def as_dict(self) -> Dict[str, object]:
        """The point as a dictionary (used by the report formatter)."""
        return {
            "input_tuples": self.input_tuples,
            "method": self.method,
            "seconds": round(self.seconds, 4),
            "output_tuples": self.output_tuples,
        }


def runtime_sweep(
    table_factory: Callable[[int], Sequence[Table]],
    sizes: Sequence[int],
    config: Optional[FuzzyFDConfig] = None,
    methods: Sequence[str] = ("regular_fd", "fuzzy_fd"),
) -> List[RuntimePoint]:
    """Measure integration runtime for each size and method.

    Parameters
    ----------
    table_factory:
        Builds the integration set for a given total input-tuple count
        (e.g. ``ImdbBenchmark().tables``).
    sizes:
        Input-tuple counts to sweep (the paper uses 5K–30K).
    config:
        Pipeline configuration shared by both methods.
    methods:
        Which of ``"regular_fd"`` (ALITE) and ``"fuzzy_fd"`` to measure.
    """
    config = config if config is not None else FuzzyFDConfig()
    points: List[RuntimePoint] = []
    for size in sizes:
        tables = list(table_factory(size))
        actual_input = sum(table.num_rows for table in tables)
        for method in methods:
            if method == "regular_fd":
                operator = RegularFullDisjunction(config)
            elif method == "fuzzy_fd":
                operator = FuzzyFullDisjunction(config)
            else:
                raise ValueError(f"unknown method {method!r}")
            start = time.perf_counter()
            result = operator.integrate(tables)
            elapsed = time.perf_counter() - start
            points.append(
                RuntimePoint(
                    input_tuples=actual_input,
                    method=method,
                    seconds=elapsed,
                    output_tuples=result.table.num_rows,
                )
            )
    return points


def overhead_ratio(points: Sequence[RuntimePoint]) -> Dict[int, float]:
    """Per-size ratio fuzzy/regular runtime (≈ 1.0 means no significant overhead)."""
    by_size: Dict[int, Dict[str, float]] = {}
    for point in points:
        by_size.setdefault(point.input_tuples, {})[point.method] = point.seconds
    ratios: Dict[int, float] = {}
    for size, methods in sorted(by_size.items()):
        if "regular_fd" in methods and "fuzzy_fd" in methods and methods["regular_fd"] > 0:
            ratios[size] = methods["fuzzy_fd"] / methods["regular_fd"]
    return ratios
