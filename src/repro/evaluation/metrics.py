"""Value-matching effectiveness metrics (the quantities of Table 1).

A value-matching prediction and its ground truth are both collections of
disjoint sets of ``(column id, value)`` items; effectiveness is measured
pairwise: a predicted pair (two items placed in the same set) is correct when
the gold clustering also places the two items together.  Per-benchmark results
are macro-averaged over the integration sets, matching the paper's "average
performance ... over 31 sets of aligning columns".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.value_matching import ValueMatchingResult
from repro.matching.clustering import ValueMatchSet

ValueKey = Tuple[object, object]


@dataclass(frozen=True)
class MatchingScores:
    """Precision, recall and F1 of one value-matching run."""

    precision: float
    recall: float
    f1: float
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Scores as a dictionary (used by the report formatter)."""
        return {"precision": self.precision, "recall": self.recall, "f1": self.f1}


def _pairs_from_sets(sets: Iterable[Iterable[ValueKey]]) -> Set[FrozenSet[ValueKey]]:
    pairs: Set[FrozenSet[ValueKey]] = set()
    for members in sets:
        ordered = sorted(members, key=lambda key: (str(key[0]), str(key[1])))
        for index, left in enumerate(ordered):
            for right in ordered[index + 1 :]:
                if left != right:
                    pairs.add(frozenset((left, right)))
    return pairs


def score_match_sets(
    predicted: Iterable[Iterable[ValueKey]],
    gold: Iterable[Iterable[ValueKey]],
) -> MatchingScores:
    """Pairwise precision/recall/F1 of predicted vs gold value-match sets."""
    predicted_pairs = _pairs_from_sets(predicted)
    gold_pairs = _pairs_from_sets(gold)
    true_positives = len(predicted_pairs & gold_pairs)
    false_positives = len(predicted_pairs - gold_pairs)
    false_negatives = len(gold_pairs - predicted_pairs)
    precision = true_positives / len(predicted_pairs) if predicted_pairs else 1.0
    recall = true_positives / len(gold_pairs) if gold_pairs else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return MatchingScores(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )


def score_integration_set(
    result: ValueMatchingResult | Sequence[ValueMatchSet],
    gold_sets: Iterable[Iterable[ValueKey]],
) -> MatchingScores:
    """Score a :class:`ValueMatchingResult` (or raw match sets) against gold sets."""
    if isinstance(result, ValueMatchingResult):
        predicted = [match_set.members for match_set in result.sets]
    else:
        predicted = [match_set.members for match_set in result]
    return score_match_sets(predicted, gold_sets)


def macro_average(scores: Sequence[MatchingScores]) -> MatchingScores:
    """Unweighted mean of per-set scores (the aggregation Table 1 reports)."""
    if not scores:
        return MatchingScores(precision=0.0, recall=0.0, f1=0.0)
    precision = sum(score.precision for score in scores) / len(scores)
    recall = sum(score.recall for score in scores) / len(scores)
    f1 = sum(score.f1 for score in scores) / len(scores)
    return MatchingScores(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=sum(score.true_positives for score in scores),
        false_positives=sum(score.false_positives for score in scores),
        false_negatives=sum(score.false_negatives for score in scores),
    )
