"""Plain-text / markdown report formatting for the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.evaluation.metrics import MatchingScores


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple GitHub-flavoured markdown table."""
    cells = [[str(header) for header in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[index]) for row in cells) for index in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "| " + " | ".join(value.ljust(width) for value, width in zip(row, widths)) + " |"

    lines = [render(cells[0]), "|" + "|".join("-" * (width + 2) for width in widths) + "|"]
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def format_scores_table(scores_by_model: Mapping[str, MatchingScores]) -> str:
    """Render Table 1's layout: Model | Precision | Recall | F1-Score."""
    rows: List[List[object]] = []
    for model, scores in scores_by_model.items():
        rows.append(
            [model, f"{scores.precision:.2f}", f"{scores.recall:.2f}", f"{scores.f1:.2f}"]
        )
    return format_markdown_table(["Model", "Precision", "Recall", "F1-Score"], rows)


def format_runtime_series(points: Sequence) -> str:
    """Render the Figure 3 series: size | regular FD seconds | fuzzy FD seconds."""
    by_size: Dict[int, Dict[str, float]] = {}
    for point in points:
        by_size.setdefault(point.input_tuples, {})[point.method] = point.seconds
    rows = []
    for size in sorted(by_size):
        methods = by_size[size]
        rows.append(
            [
                size,
                f"{methods.get('regular_fd', float('nan')):.2f}",
                f"{methods.get('fuzzy_fd', float('nan')):.2f}",
            ]
        )
    return format_markdown_table(
        ["Input tuples", "ALITE (regular FD) seconds", "Fuzzy FD seconds"], rows
    )
