"""Plain-text / markdown report formatting for the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.evaluation.metrics import MatchingScores


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple GitHub-flavoured markdown table."""
    cells = [[str(header) for header in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[index]) for row in cells) for index in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "| " + " | ".join(value.ljust(width) for value, width in zip(row, widths)) + " |"

    lines = [render(cells[0]), "|" + "|".join("-" * (width + 2) for width in widths) + "|"]
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def format_scores_table(scores_by_model: Mapping[str, MatchingScores]) -> str:
    """Render Table 1's layout: Model | Precision | Recall | F1-Score."""
    rows: List[List[object]] = []
    for model, scores in scores_by_model.items():
        rows.append(
            [model, f"{scores.precision:.2f}", f"{scores.recall:.2f}", f"{scores.f1:.2f}"]
        )
    return format_markdown_table(["Model", "Precision", "Recall", "F1-Score"], rows)


def format_component_histogram(source, width: int = 30) -> str:
    """Render the blocked matcher's component-size distribution.

    ``source`` is a :class:`~repro.matching.blocking.BlockingStatistics`
    (its :meth:`component_size_histogram` is used), a ``label -> count``
    mapping, or a :class:`~repro.core.value_matching.ValueMatchingResult`-style
    statistics dict carrying ``blocking_component_size_<label>`` keys.  The
    distribution tells you where the matching work lives: a mass of 1-cell
    components favours the vectorised singleton path, a fat tail means the
    assignment solver (and the executor's batch balancing) dominates — which
    is what guides ``blocking_cutoff`` and batch-size tuning.
    """
    from repro.matching.blocking import COMPONENT_SIZE_BUCKETS

    bucket_labels = [label for label, _ in COMPONENT_SIZE_BUCKETS]
    histogram = getattr(source, "component_size_histogram", None)
    if callable(histogram):
        counts: Dict[str, int] = histogram()
    elif isinstance(source, Mapping) and any(
        str(key).startswith("blocking_component_size_") for key in source
    ):
        counts = {
            str(key)[len("blocking_component_size_") :]: int(value)
            for key, value in source.items()
            if str(key).startswith("blocking_component_size_")
        }
    elif isinstance(source, Mapping) and set(map(str, source)) <= set(bucket_labels):
        counts = {str(label): int(count) for label, count in source.items()}
    else:
        # A statistics dict from a non-blocked run (or any other mapping)
        # has no component distribution; rendering its unrelated counters as
        # a histogram would be actively misleading.
        raise ValueError(
            "source carries no component-size distribution: expected "
            "BlockingStatistics, a statistics dict with "
            "'blocking_component_size_*' keys, or a mapping over the buckets "
            f"{bucket_labels}"
        )
    total = sum(counts.values())
    peak = max(counts.values(), default=0)
    rows = []
    # Render in bucket order (smallest to largest), not the mapping's
    # iteration order — a stats dict reloaded from sorted JSON iterates
    # alphabetically — and keep every bucket present even when empty.
    for label in bucket_labels:
        count = counts.get(label, 0)
        bar = "#" * (round(width * count / peak) if peak else 0)
        share = f"{100.0 * count / total:.1f}%" if total else "-"
        rows.append([label, count, share, bar])
    return format_markdown_table(["Component cells", "Count", "Share", "Histogram"], rows)


def format_cache_statistics(source: Mapping[str, float]) -> str:
    """Render the cache / durable-index counters of one request.

    ``source`` is a timings dict from
    :class:`~repro.core.engine.FuzzyIntegrationResult` (or a
    :class:`~repro.core.value_matching.ValueMatchingResult` statistics dict):
    the ``cache_*`` and ``ann_index_*`` counters it carries, plus the
    ``store_published_rows`` entry, are the request's storage story — how
    many vector lookups the hot tier answered, how many the memmapped store
    tier answered (a warm start shows every lookup here and zero misses),
    how many had to be embedded raw, and whether ANN indexes were loaded or
    rebuilt.  Counters absent from ``source`` render as 0 rows only when at
    least one storage counter is present at all; a dict with no storage
    counters raises, as rendering it would silently claim "no cache
    activity" for a run that simply predates the counters.
    """
    rows_spec = [
        ("Hot-tier hits", "cache_hits"),
        ("Store-tier hits (memmap)", "cache_store_hits"),
        ("Misses (raw embeds)", "cache_misses"),
        ("Cache fills", "cache_fills"),
        ("Store-tier misses", "cache_store_misses"),
        ("ANN indexes loaded", "ann_index_loads"),
        ("ANN indexes built", "ann_index_builds"),
        ("ANN indexes published", "ann_index_saves"),
        ("Embedding rows published", "store_published_rows"),
    ]
    if not any(key in source for _, key in rows_spec):
        raise ValueError(
            "source carries no cache or store counters (cache_*, ann_index_*, "
            "store_published_rows); pass a FuzzyIntegrationResult.timings or "
            "ValueMatchingResult.statistics dict from a storage-aware run"
        )
    rows = [[label, f"{float(source.get(key, 0.0)):,.0f}"] for label, key in rows_spec]
    lookups = float(source.get("cache_hits", 0.0)) + float(
        source.get("cache_store_hits", 0.0)
    ) + float(source.get("cache_misses", 0.0))
    if lookups:
        served = lookups - float(source.get("cache_misses", 0.0))
        rows.append(["Lookups served without raw embed", f"{100.0 * served / lookups:.1f}%"])
    return format_markdown_table(["Counter", "Value"], rows)


def format_request_trace(trace) -> str:
    """Render a service :class:`~repro.service.RequestTrace` as markdown.

    ``trace`` is the trace object itself or its :meth:`to_dict` form.  The
    report has two sections: the latency breakdown (queue wait, then each
    pipeline stage in execution order, then the total) and the work counters
    (ANN channel activity, cache tiers, raw embeds, published rows).  A
    partial trace from a ``DeadlineExceeded`` response renders the stages
    that finished — the report never invents entries for stages that did
    not run.
    """
    data = trace.to_dict() if hasattr(trace, "to_dict") else dict(trace)
    if "stage_seconds" not in data:
        raise ValueError(
            "trace carries no stage_seconds — pass a RequestTrace (or its "
            "to_dict()) from a service response"
        )
    rows: List[List[object]] = [
        ["Queue wait", f"{float(data.get('queue_wait_seconds', 0.0)) * 1000.0:.1f} ms"]
    ]
    for stage, seconds in data["stage_seconds"].items():
        rows.append([f"Stage: {stage}", f"{float(seconds) * 1000.0:.1f} ms"])
    rows.append(["Total", f"{float(data.get('total_seconds', 0.0)) * 1000.0:.1f} ms"])
    deadline = data.get("deadline_ms")
    if deadline is not None:
        rows.append(["Deadline budget", f"{float(deadline):.0f} ms"])
    counter_spec = [
        ("ANN pairs added", "ann_pairs_added"),
        ("ANN probe candidates", "ann_probe_candidates"),
        ("ANN bucket-skew fallbacks", "ann_bucket_skew"),
        ("Cache hits (hot tier)", "cache_hits"),
        ("Cache hits (store tier)", "cache_store_hits"),
        ("Cache misses", "cache_misses"),
        ("Raw embed calls", "raw_embed_calls"),
        ("Embedding rows published", "store_published_rows"),
    ]
    for label, key in counter_spec:
        rows.append([label, f"{float(data.get(key, 0.0)):,.0f}"])
    header = f"request {data.get('request_id', '?')} — status: {data.get('status', '?')}"
    return header + "\n" + format_markdown_table(["Field", "Value"], rows)


def format_runtime_series(points: Sequence) -> str:
    """Render the Figure 3 series: size | regular FD seconds | fuzzy FD seconds."""
    by_size: Dict[int, Dict[str, float]] = {}
    for point in points:
        by_size.setdefault(point.input_tuples, {})[point.method] = point.seconds
    rows = []
    for size in sorted(by_size):
        methods = by_size[size]
        rows.append(
            [
                size,
                f"{methods.get('regular_fd', float('nan')):.2f}",
                f"{methods.get('fuzzy_fd', float('nan')):.2f}",
            ]
        )
    return format_markdown_table(
        ["Input tuples", "ALITE (regular FD) seconds", "Fuzzy FD seconds"], rows
    )
