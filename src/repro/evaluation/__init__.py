"""Evaluation: value-matching metrics, runtime sweeps, report formatting.

These are the harness pieces the benchmark scripts (``benchmarks/``) are built
from, factored into the library so the same measurements can be reproduced
programmatically (see ``examples/``) and unit-tested.
"""

from repro.evaluation.metrics import (
    MatchingScores,
    macro_average,
    score_integration_set,
    score_match_sets,
)
from repro.evaluation.runtime import RuntimePoint, runtime_sweep
from repro.evaluation.reporting import (
    format_cache_statistics,
    format_component_histogram,
    format_markdown_table,
    format_request_trace,
    format_scores_table,
)

__all__ = [
    "MatchingScores",
    "score_match_sets",
    "score_integration_set",
    "macro_average",
    "RuntimePoint",
    "runtime_sweep",
    "format_cache_statistics",
    "format_component_histogram",
    "format_markdown_table",
    "format_request_trace",
    "format_scores_table",
]
