"""The *Match Values* component (Sec. 2.2 of the paper).

Given a set of aligning columns, the component determines fuzzy matches among
their values and picks one representative value per match set:

1. Embed every (distinct) cell value.
2. Take the first two columns and bipartite-match their value sets under the
   threshold θ (cosine distance over the embeddings, optimal assignment).
3. Fold the result into a *combined column*: matched values form one group
   whose representative is the most frequent surface form (ties: the value
   from the earliest table); unmatched values stay as singleton groups.
4. Match the combined column against the next aligning column, and repeat
   until every column is folded in.

The result maps every value of every aligned column to its representative,
which the Fuzzy Full Disjunction pipeline then writes back into the tables
before running the equi-join Full Disjunction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.representatives import REPRESENTATIVE_POLICIES, select_representative
from repro.embeddings.base import ValueEmbedder
from repro.embeddings.resilient import DEGRADED_MODES, EmbedderUnavailable
from repro.matching.assignment import AssignmentSolver
from repro.matching.bipartite import BipartiteValueMatcher, ValueMatch
from repro.matching.ann import (
    DEFAULT_ANN_BITS,
    DEFAULT_ANN_TABLES,
    DEFAULT_ANN_TOP_K,
    SemanticBlocker,
)
from repro.matching.blocking import (
    DEFAULT_FREQUENT_KEY_CAP,
    BlockedValueMatcher,
    ValueBlocker,
)
from repro.matching.clustering import ValueMatchSet
from repro.matching.distance import EmbeddingDistance
from repro.storage.store import ArtifactStore
from repro.utils.executor import ExecutorConfig

#: Cell count (``|left| × |right|``) at which ``blocking="auto"`` switches a
#: column pair from the exhaustive matcher to the blocked engine.
DEFAULT_BLOCKING_CUTOFF = 250_000

#: Default frequent-key cap of the blocked matcher's candidate generator: a
#: blocking key whose *smaller* posting list exceeds this is skipped (see
#: :class:`repro.matching.blocking.ValueBlocker`).  ``None`` disables it.
DEFAULT_BLOCKING_KEY_CAP: Optional[int] = DEFAULT_FREQUENT_KEY_CAP

ValueKey = Tuple[Hashable, object]


@dataclass
class ColumnValues:
    """The values of one aligned column, as the matcher consumes them.

    Attributes
    ----------
    column_id:
        Identifier of the column (the pipeline uses ``(table name, column)``).
    values:
        Distinct non-null values, in first-seen order (clean-clean scenario:
        within a column, equal strings mean the same thing).
    counts:
        Occurrence count of each value in the underlying column; used by the
        frequency-based representative policy.  Defaults to 1 per value.
    """

    column_id: Hashable
    values: List[object]
    counts: Dict[object, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        deduplicated: List[object] = []
        seen = set()
        for value in self.values:
            if value not in seen:
                seen.add(value)
                deduplicated.append(value)
        self.values = deduplicated
        # A partially populated counts dict would silently give missing values
        # no weight in frequency-based representative selection; default every
        # uncounted value to 1.  Copy first — the caller's dict stays untouched.
        self.counts = dict(self.counts)
        for value in self.values:
            self.counts.setdefault(value, 1)

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class ValueMatchingResult:
    """Outcome of matching one set of aligned columns."""

    sets: List[ValueMatchSet]
    column_order: Dict[Hashable, int]
    statistics: Dict[str, float] = field(default_factory=dict)

    def rewrite_map(self, column_id: Hashable) -> Dict[object, object]:
        """``value -> representative`` for one column (identity pairs omitted)."""
        mapping: Dict[object, object] = {}
        for match_set in self.sets:
            for member_column, value in match_set.members:
                if member_column == column_id and value != match_set.representative:
                    mapping[value] = match_set.representative
        return mapping

    def representative_of(self, column_id: Hashable, value: object) -> object:
        """The representative of ``value`` in ``column_id`` (itself if unmatched)."""
        for match_set in self.sets:
            if (column_id, value) in match_set.members:
                return match_set.representative
        return value

    def combined_column(self) -> List[object]:
        """The final combined column: one representative per match set."""
        return [match_set.representative for match_set in self.sets]

    def matched_pairs(self) -> List[Tuple[ValueKey, ValueKey]]:
        """All within-set pairs — the unit counted by the evaluation metrics."""
        pairs: List[Tuple[ValueKey, ValueKey]] = []
        for match_set in self.sets:
            members = match_set.members
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    pairs.append((left, right))
        return pairs


class _Group:
    """A value-match group under construction (mutable, internal)."""

    __slots__ = ("members", "representative")

    def __init__(self, members: List[ValueKey], representative: object) -> None:
        self.members = members
        self.representative = representative


class ValueMatcher:
    """The Match Values component.

    Parameters mirror :class:`~repro.core.config.FuzzyFDConfig`; the matcher is
    deliberately usable standalone (it is what the Table 1 benchmark drives).
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        threshold: float = 0.7,
        solver: Optional[AssignmentSolver] = None,
        representative_policy: str = "frequency",
        exact_first: bool = True,
        blocking: str = "off",
        blocking_cutoff: int = DEFAULT_BLOCKING_CUTOFF,
        blocking_key_cap: Optional[int] = DEFAULT_BLOCKING_KEY_CAP,
        semantic_blocking: str = "off",
        ann_tables: int = DEFAULT_ANN_TABLES,
        ann_bits: int = DEFAULT_ANN_BITS,
        ann_top_k: int = DEFAULT_ANN_TOP_K,
        ann_index: str = "lsh",
        max_workers: int = 1,
        parallel_backend: str = "thread",
        store: Optional[ArtifactStore] = None,
        degraded_mode: str = "off",
    ) -> None:
        if blocking not in ("off", "on", "auto"):
            raise ValueError(f"blocking must be 'off', 'on' or 'auto', got {blocking!r}")
        if degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode must be one of {list(DEGRADED_MODES)}, got {degraded_mode!r}"
            )
        if blocking_cutoff <= 0:
            raise ValueError(f"blocking_cutoff must be positive, got {blocking_cutoff}")
        if semantic_blocking not in ("off", "on", "auto"):
            raise ValueError(
                f"semantic_blocking must be 'off', 'on' or 'auto', got {semantic_blocking!r}"
            )
        if semantic_blocking == "on" and blocking == "off":
            raise ValueError(
                "semantic_blocking='on' requires blocking 'on' or 'auto': the ANN "
                "channel rides the blocked matcher (the exhaustive matcher already "
                "scores every pair)"
            )
        # Fail fast on a typo'd policy name here rather than deep inside
        # match_columns() on the first accepted match.
        REPRESENTATIVE_POLICIES.validate(representative_policy)
        self.embedder = embedder
        self.threshold = threshold
        self.representative_policy = representative_policy
        self.exact_first = exact_first
        self.blocking = blocking
        self.blocking_cutoff = blocking_cutoff
        self.blocking_key_cap = blocking_key_cap
        self.semantic_blocking = semantic_blocking
        self.degraded_mode = degraded_mode
        # The embedding-free fallback matcher of degraded_mode="surface",
        # built on first use (reuses the blocked matcher when blocking is on).
        self._degraded_matcher: Optional[BlockedValueMatcher] = None
        # Validated eagerly (backend name, worker count) by ExecutorConfig;
        # the blocked engine is the only consumer — the exhaustive matcher
        # solves one global assignment and has nothing to distribute.
        self.executor = ExecutorConfig(backend=parallel_backend, max_workers=max_workers)
        self._matcher = BipartiteValueMatcher(
            distance=EmbeddingDistance(embedder), threshold=threshold, solver=solver
        )
        # The semantic blocker validates the ann_* knobs eagerly even when
        # blocking is off (so a bad ann_top_k never hides behind blocking).
        # Its similarity floor is 1 - θ: pairs below it are unmatchable under
        # the threshold, so emitting them would only weld components.
        # The store (when given) makes the ANN hash state durable — loaded
        # codes replace rebuilt ones, candidates stay identical either way.
        semantic_blocker = (
            SemanticBlocker(
                embedder,
                top_k=ann_top_k,
                n_tables=ann_tables,
                n_bits=ann_bits,
                min_similarity=max(0.0, 1.0 - threshold),
                ann_index=ann_index,
                store=store,
            )
            if semantic_blocking != "off"
            else None
        )
        self._blocked_matcher = (
            BlockedValueMatcher(
                embedder,
                threshold=threshold,
                solver=solver,
                # The blocker shares the executor so surface-key generation
                # can fan out over the same (process) pool as the solver.
                blocker=ValueBlocker(
                    frequent_key_cap=blocking_key_cap, executor=self.executor
                ),
                executor=self.executor,
                semantic_blocker=semantic_blocker,
                semantic_mode=semantic_blocking if semantic_blocking != "off" else "on",
            )
            if blocking != "off"
            else None
        )

    # -- public API ---------------------------------------------------------------
    def match_pair(
        self, left: ColumnValues, right: ColumnValues
    ) -> List[ValueMatch]:
        """Bipartite matches between two columns (used directly by benchmarks)."""
        matcher = self._matcher_for(len(left.values), len(right.values))
        try:
            if self.exact_first:
                return matcher.match_exact_first(left.values, right.values)
            return matcher.match(left.values, right.values)
        except EmbedderUnavailable:
            if self.degraded_mode != "surface":
                raise
            return self._degraded_fallback().match_degraded(left.values, right.values)

    def match_columns(self, columns: Sequence[ColumnValues]) -> ValueMatchingResult:
        """Run the full sequential combined-column procedure over ``columns``."""
        if not columns:
            return ValueMatchingResult(sets=[], column_order={})
        start = time.perf_counter()
        # Cache and durable-index counters are cumulative over the embedder's
        # (and blocker's) lifetime; snapshotting them here turns the run into
        # a per-request delta.  Concurrent requests sharing one embedder can
        # bleed into each other's deltas — the counters are observability,
        # not accounting, so approximate under concurrency is acceptable.
        cache_before = self.embedder.cache.stats()
        resilience_before = self._resilience_snapshot()
        semantic_blocker = (
            self._blocked_matcher.semantic_blocker
            if self._blocked_matcher is not None
            else None
        )
        ann_before = (
            (
                semantic_blocker.index_loads,
                semantic_blocker.index_builds,
                semantic_blocker.index_saves,
            )
            if semantic_blocker is not None
            else (0, 0, 0)
        )
        column_order = {column.column_id: index for index, column in enumerate(columns)}
        frequencies = self._global_frequencies(columns)
        statistics: Dict[str, float] = {
            "columns": float(len(columns)),
            "values": float(sum(len(column) for column in columns)),
        }
        if self.blocking != "off":
            statistics.update(
                blocked_assignments=0.0,
                blocking_components=0.0,
                blocking_largest_component=0.0,
                blocking_pairs_scored=0.0,
                blocking_pairs_avoided=0.0,
            )
            if self.semantic_blocking != "off":
                statistics.update(
                    blocking_ann_pairs_added=0.0,
                    blocking_ann_pairs_duplicate=0.0,
                    blocking_ann_skew_fallbacks=0.0,
                    blocking_ann_probe_candidates=0.0,
                )

        groups = [
            _Group(members=[(columns[0].column_id, value)], representative=value)
            for value in columns[0].values
        ]

        assignments = 0
        accepted = 0
        for column in columns[1:]:
            combined_values = [group.representative for group in groups]
            matcher = self._matcher_for(len(combined_values), len(column.values))
            pair_degraded = False
            try:
                matches = (
                    matcher.match_exact_first(combined_values, column.values)
                    if self.exact_first
                    else matcher.match(combined_values, column.values)
                )
            except EmbedderUnavailable:
                # Breaker open.  Under "surface" the pair is re-matched
                # without embeddings (exact + surface-blocking equality) and
                # the result is marked degraded; any other mode propagates
                # the typed error to the engine/service boundary.
                if self.degraded_mode != "surface":
                    raise
                matches = self._degraded_fallback().match_degraded(
                    combined_values, column.values
                )
                pair_degraded = True
                statistics["degraded"] = 1.0
                statistics["degraded_assignments"] = (
                    statistics.get("degraded_assignments", 0.0) + 1.0
                )
            assignments += 1
            accepted += len(matches)
            if (
                not pair_degraded
                and isinstance(matcher, BlockedValueMatcher)
                and matcher.last_statistics
            ):
                blocking_stats = matcher.last_statistics
                statistics["blocked_assignments"] += 1.0
                statistics["blocking_components"] += float(blocking_stats.components)
                statistics["blocking_largest_component"] = max(
                    statistics["blocking_largest_component"],
                    float(blocking_stats.largest_component),
                )
                statistics["blocking_pairs_scored"] += float(blocking_stats.pairs_scored)
                statistics["blocking_pairs_avoided"] += float(blocking_stats.pairs_avoided)
                statistics["blocking_skipped_keys"] = statistics.get(
                    "blocking_skipped_keys", 0.0
                ) + float(blocking_stats.skipped_keys)
                if self.semantic_blocking != "off":
                    statistics["blocking_ann_pairs_added"] += float(
                        blocking_stats.ann_pairs_added
                    )
                    statistics["blocking_ann_pairs_duplicate"] += float(
                        blocking_stats.ann_pairs_duplicate
                    )
                    statistics["blocking_ann_skew_fallbacks"] += float(
                        blocking_stats.ann_skew_fallbacks
                    )
                    statistics["blocking_ann_probe_candidates"] += float(
                        blocking_stats.ann_probe_candidates
                    )
                # Component-size distribution, aggregated over every blocked
                # assignment; the reporting layer renders these buckets as a
                # histogram to guide cutoff/batching tuning.
                for label, count in blocking_stats.component_size_histogram().items():
                    key = f"blocking_component_size_{label}"
                    statistics[key] = statistics.get(key, 0.0) + float(count)

            groups_by_representative: Dict[object, List[_Group]] = {}
            for group in groups:
                groups_by_representative.setdefault(group.representative, []).append(group)

            matched_right = set()
            for match in matches:
                bucket = groups_by_representative.get(match.left)
                if not bucket:
                    continue
                group = bucket.pop(0)
                group.members.append((column.column_id, match.right))
                group.representative = select_representative(
                    group.members, frequencies, column_order, policy=self.representative_policy
                )
                matched_right.add(match.right)

            for value in column.values:
                if value not in matched_right:
                    groups.append(_Group(members=[(column.column_id, value)], representative=value))

        elapsed = time.perf_counter() - start
        statistics["assignments"] = float(assignments)
        statistics["accepted_matches"] = float(accepted)
        statistics["match_sets"] = float(len(groups))
        statistics["elapsed_seconds"] = elapsed

        cache_after = self.embedder.cache.stats()
        for counter in ("hits", "misses", "fills", "store_hits", "store_misses"):
            if counter in cache_after:
                statistics[f"cache_{counter}"] = float(
                    max(0, cache_after[counter] - cache_before.get(counter, 0))
                )
        resilience_after = self._resilience_snapshot()
        for counter, key in (
            ("retries", "embedder_retries"),
            ("breaker_opens", "breaker_opens"),
            ("breaker_short_circuits", "breaker_short_circuits"),
        ):
            if counter in resilience_after:
                statistics[key] = float(
                    max(0, resilience_after[counter] - resilience_before.get(counter, 0))
                )
        if semantic_blocker is not None:
            statistics["ann_index_loads"] = float(
                semantic_blocker.index_loads - ann_before[0]
            )
            statistics["ann_index_builds"] = float(
                semantic_blocker.index_builds - ann_before[1]
            )
            statistics["ann_index_saves"] = float(
                semantic_blocker.index_saves - ann_before[2]
            )

        sets = [
            ValueMatchSet(members=sorted(group.members, key=lambda key: (str(key[0]), str(key[1]))),
                          representative=group.representative)
            for group in groups
        ]
        sets.sort(key=lambda match_set: (str(match_set.members[0][0]), str(match_set.members[0][1])))
        return ValueMatchingResult(sets=sets, column_order=column_order, statistics=statistics)

    # -- helpers --------------------------------------------------------------------
    def _resilience_snapshot(self) -> Dict[str, int]:
        """The embedder's retry/breaker counters, `{}` for a bare embedder."""
        stats = getattr(self.embedder, "resilience_stats", None)
        return stats() if callable(stats) else {}

    def _degraded_fallback(self) -> BlockedValueMatcher:
        """The matcher serving ``match_degraded`` (never calls the embedder)."""
        if self._blocked_matcher is not None:
            return self._blocked_matcher
        if self._degraded_matcher is None:
            self._degraded_matcher = BlockedValueMatcher(
                self.embedder,
                threshold=self.threshold,
                blocker=ValueBlocker(frequent_key_cap=self.blocking_key_cap),
            )
        return self._degraded_matcher

    def _matcher_for(self, left_count: int, right_count: int):
        """Route one column pair to the exhaustive or the blocked matcher."""
        if self._blocked_matcher is None:
            return self._matcher
        if self.blocking == "on":
            return self._blocked_matcher
        if left_count * right_count >= self.blocking_cutoff:
            return self._blocked_matcher
        return self._matcher

    @staticmethod
    def _global_frequencies(columns: Sequence[ColumnValues]) -> Dict[object, int]:
        """Occurrences of each surface value across all aligning columns."""
        frequencies: Dict[object, int] = {}
        for column in columns:
            for value in column.values:
                frequencies[value] = frequencies.get(value, 0) + column.counts.get(value, 1)
        return frequencies
