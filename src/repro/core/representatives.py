"""Representative-value selection for value-match sets.

Once a set of values has been matched (e.g. {"Berlinn", "Berlin", "Berlin"}),
one member must be chosen as the *representative* that replaces every member
before the equi-join Full Disjunction runs.  The paper's rule: pick the value
that appears most frequently across the aligning columns; break ties by taking
the value from the earliest table.  Alternative policies are provided for the
ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Mapping, Sequence, Tuple

from repro.registry import Registry

ValueKey = Tuple[Hashable, object]
# A policy receives the members of one match set, the global frequency of each
# surface value across the aligning columns, and the order index of each
# column, and returns the representative surface value.
Policy = Callable[[Sequence[ValueKey], Mapping[object, int], Mapping[Hashable, int]], object]

#: All representative policies, keyed by registry name.  Policies are plain
#: functions, so they are fetched with ``REPRESENTATIVE_POLICIES.get`` (not
#: ``create``); custom policies plug in with the ``register`` decorator.
REPRESENTATIVE_POLICIES: Registry[Policy] = Registry("representative policy")


@REPRESENTATIVE_POLICIES.register("frequency")
def _frequency_policy(
    members: Sequence[ValueKey],
    frequencies: Mapping[object, int],
    column_order: Mapping[Hashable, int],
) -> object:
    """Most frequent value; ties broken by earliest column, then lexicographically."""
    def sort_key(member: ValueKey) -> Tuple[int, int, str]:
        column, value = member
        return (
            -frequencies.get(value, 0),
            column_order.get(column, len(column_order)),
            str(value),
        )

    return min(members, key=sort_key)[1]


@REPRESENTATIVE_POLICIES.register("first_column")
def _first_column_policy(
    members: Sequence[ValueKey],
    frequencies: Mapping[object, int],
    column_order: Mapping[Hashable, int],
) -> object:
    """Value from the earliest column (the query table's spelling wins)."""
    def sort_key(member: ValueKey) -> Tuple[int, str]:
        column, value = member
        return (column_order.get(column, len(column_order)), str(value))

    return min(members, key=sort_key)[1]


@REPRESENTATIVE_POLICIES.register("longest")
def _longest_policy(
    members: Sequence[ValueKey],
    frequencies: Mapping[object, int],
    column_order: Mapping[Hashable, int],
) -> object:
    """Longest surface form (prefers expanded names over abbreviations)."""
    return min(members, key=lambda member: (-len(str(member[1])), str(member[1])))[1]


@REPRESENTATIVE_POLICIES.register("shortest")
def _shortest_policy(
    members: Sequence[ValueKey],
    frequencies: Mapping[object, int],
    column_order: Mapping[Hashable, int],
) -> object:
    """Shortest surface form (prefers codes/abbreviations)."""
    return min(members, key=lambda member: (len(str(member[1])), str(member[1])))[1]


def available_policies() -> List[str]:
    """Names of the registered representative policies."""
    return REPRESENTATIVE_POLICIES.names()


def select_representative(
    members: Sequence[ValueKey],
    frequencies: Mapping[object, int],
    column_order: Mapping[Hashable, int],
    policy: str = "frequency",
) -> object:
    """Choose the representative value of one match set under ``policy``."""
    if not members:
        raise ValueError("cannot select a representative from an empty match set")
    chosen_policy = REPRESENTATIVE_POLICIES.get(policy)
    return chosen_policy(members, frequencies, column_order)
