"""A long-lived integration engine serving repeated requests.

``integrate()`` and the operator classes build their embedder, solver and FD
algorithm per call — fine for one-shot use, wasteful for the serve-many-
requests shape every benchmark sweep has (Table 1 iterates models, Figure 3
iterates sizes, the θ-ablation iterates thresholds over the *same* tables).
:class:`IntegrationEngine` resolves those components once and keeps them warm:
the embedder's cache persists across requests, so a θ-sweep re-scores cached
vectors instead of re-embedding every value.

The pipeline is exposed as inspectable stages::

    engine = IntegrationEngine("paper")          # config, preset name, or dict
    aligned = engine.align(tables)               # AlignmentStage
    matched = engine.match(aligned)              # MatchStage (fuzzy rewrites)
    result  = engine.integrate(matched)          # FuzzyIntegrationResult

or as one call with per-request overrides::

    for theta in (0.6, 0.7, 0.8):
        engine.integrate(tables, threshold=theta)   # embeds values only once

The engine is a multi-client service: :meth:`IntegrationEngine.integrate_many`
serves a batch of requests over the engine-owned worker pool
(:meth:`IntegrationEngine.worker_pool` — one long-lived executor shared with
the :class:`~repro.service.IntegrationService` front-end, never a fresh pool
per call; the embedding cache is thread-safe and matchers are
per-worker-thread), and the ``max_workers`` / ``parallel_backend`` config
knobs additionally parallelise the inside of a single request
(component-wise matching, partitioned FD).

With ``store_dir`` configured the warmth outlives the process: construction
attaches a :class:`~repro.storage.cache.StoreBackedEmbeddingCache` (so a
restarted engine serves every previously embedded value without one raw
embed call), the semantic blocker loads its LSH codes instead of rebuilding
them, and a ``readwrite`` engine publishes newly embedded values back after
each request.  ``store_mode`` is also a per-request override — a single
request can run with the store read-only (``"read"``) or bypassed
(``"off"``) without touching the engine's configuration.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import FuzzyFDConfig
from repro.core.value_matching import ColumnValues, ValueMatcher, ValueMatchingResult
from repro.embeddings.base import EmbeddingCache, ValueEmbedder
from repro.embeddings.resilient import OVERRIDABLE_KNOBS, ResilientEmbedder
from repro.fd import FD_ALGORITHMS
from repro.fd.base import FullDisjunctionAlgorithm, FullDisjunctionResult
from repro.matching.assignment import AssignmentSolver
from repro.schema_matching.alignment import ColumnAlignment
from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES
from repro.storage.cache import StoreBackedEmbeddingCache
from repro.storage.store import ArtifactStore
from repro.table.table import Table

#: Knobs :meth:`IntegrationEngine.integrate` accepts as per-request overrides.
REQUEST_OVERRIDES = (
    "threshold",
    "representative_policy",
    "exact_first",
    "blocking",
    "blocking_cutoff",
    "blocking_key_cap",
    "semantic_blocking",
    "ann_tables",
    "ann_bits",
    "ann_top_k",
    "ann_index",
    "max_workers",
    "parallel_backend",
    "store_mode",
    "degraded_mode",
    "retry_max_attempts",
    "retry_backoff_ms",
    "breaker_failure_threshold",
    "breaker_reset_ms",
)

#: Overrides for which ``None`` is a meaningful value (not "use the engine
#: default"): ``blocking_key_cap=None`` disables the frequent-key cap.
NULLABLE_OVERRIDES = frozenset({"blocking_key_cap"})


def _count_rewrites(value_matching: Dict[str, ValueMatchingResult]) -> int:
    """Distinct value rewrites across all aligned groups and columns."""
    total = 0
    for result in value_matching.values():
        for column_id in result.column_order:
            total += len(result.rewrite_map(column_id))
    return total


@dataclass
class FuzzyIntegrationResult:
    """Everything the pipeline produced, with a per-phase timing breakdown."""

    table: Table
    fd_result: FullDisjunctionResult
    alignment: ColumnAlignment
    value_matching: Dict[str, ValueMatchingResult] = field(default_factory=dict)
    rewritten_tables: List[Table] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the integration.

        ``timings`` also carries work counters (the ``blocking_*`` keys);
        only the ``*_seconds`` entries are durations.
        """
        return sum(value for key, value in self.timings.items() if key.endswith("_seconds"))

    @property
    def output_tuple_count(self) -> int:
        """Number of tuples in the integrated table."""
        return self.table.num_rows

    def rewrites_applied(self) -> int:
        """Number of distinct value rewrites applied across all columns."""
        return _count_rewrites(self.value_matching)


@dataclass
class AlignmentStage:
    """Output of :meth:`IntegrationEngine.align` — the aligned input."""

    alignment: ColumnAlignment
    tables: List[Table]
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass
class MatchStage:
    """Output of :meth:`IntegrationEngine.match` — fuzzy-rewritten tables."""

    alignment: ColumnAlignment
    value_matching: Dict[str, ValueMatchingResult]
    tables: List[Table]
    timings: Dict[str, float] = field(default_factory=dict)

    def rewrites_applied(self) -> int:
        """Number of distinct value rewrites across all aligned groups."""
        return _count_rewrites(self.value_matching)


class IntegrationEngine:
    """Warm, reusable executor of the Fuzzy Full Disjunction pipeline.

    Parameters
    ----------
    config:
        A :class:`FuzzyFDConfig`, a preset name (``"paper"``, ``"fast"``,
        ``"scale"``), a plain dict (:meth:`FuzzyFDConfig.from_dict`), or
        ``None`` for the paper's defaults.

    The embedder, assignment solver and FD algorithm named in the config are
    resolved once at construction and reused by every request; the embedder's
    :class:`~repro.embeddings.base.EmbeddingCache` therefore persists across
    requests, which is what makes repeated integrations (threshold sweeps,
    ablations, a service handling recurring tables) cheap.
    """

    def __init__(self, config: Union[FuzzyFDConfig, str, Dict[str, Any], None] = None) -> None:
        if config is None:
            config = FuzzyFDConfig()
        elif isinstance(config, str):
            config = FuzzyFDConfig.preset(config)
        elif isinstance(config, dict):
            config = FuzzyFDConfig.from_dict(config)
        self.config = config
        resolved = config.resolve_embedder()
        if not isinstance(resolved, ResilientEmbedder):
            # Every engine embedder is fault-tolerant by construction: retries
            # with deterministic backoff plus a circuit breaker, configured by
            # the retry_*/breaker_* knobs.  A caller-supplied ResilientEmbedder
            # passes through so its own (possibly test-injected) clock and
            # knobs win.  The wrapper mirrors name/dimension/cache, so store
            # fingerprints and the cache attach below are unchanged.
            resolved = ResilientEmbedder(
                resolved,
                retry_max_attempts=config.retry_max_attempts,
                retry_backoff_ms=config.retry_backoff_ms,
                breaker_failure_threshold=config.breaker_failure_threshold,
                breaker_reset_ms=config.breaker_reset_ms,
            )
        self.embedder: ValueEmbedder = resolved
        self.solver: AssignmentSolver = config.resolve_solver()
        self.fd_algorithm: FullDisjunctionAlgorithm = config.resolve_fd_algorithm()
        #: The persistent artifact store, or ``None`` when persistence is off.
        self.store: Optional[ArtifactStore] = config.build_store()
        self._store_cache: Optional[StoreBackedEmbeddingCache] = None
        if self.store is not None:
            # The warm start: constructing the tiered cache attaches every
            # published segment of this embedder, so values embedded by any
            # previous run are served from memmaps — zero raw embed calls.
            self._store_cache = StoreBackedEmbeddingCache(
                self.store,
                self.embedder.name,
                self.embedder.dimension,
                max_entries=self.embedder.cache.max_entries,
            )
            self.embedder.use_cache(self._store_cache)
        self.requests_served = 0
        # One ValueMatcher per distinct override combination; all share the
        # engine's embedder (and therefore its thread-safe cache) and solver.
        # The memo is *per worker thread* (threading.local): a matcher keeps
        # per-call mutable state (``last_statistics`` on the blocked engine),
        # so two concurrent ``integrate_many`` requests must never share one.
        self._thread_state = threading.local()
        self._served_lock = threading.Lock()
        # The engine-owned request pool (lazy; see worker_pool()).  One
        # long-lived ThreadPoolExecutor serves every request-level consumer
        # so repeated integrate_many calls — and the IntegrationService's
        # off-loop execution — reuse warm threads instead of paying a pool
        # construction per call.
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()

    # -- introspection -------------------------------------------------------------
    @property
    def embedding_cache(self) -> EmbeddingCache:
        """The warm embedding cache shared by every request."""
        return self.embedder.cache

    def save(self) -> Dict[str, int]:
        """Publish the pending in-memory artifacts to the store.

        Embedding vectors computed since the last publication become one new
        memmapped segment (ANN indexes publish themselves at build time, so
        nothing further is needed for them).  Returns ``{"embedding_rows":
        n}`` — ``0`` when there is no store, it is read-only, or nothing new
        was embedded.  :meth:`integrate` already calls this after every
        request on a ``readwrite`` engine; explicit calls matter for flows
        that only embed (e.g. :meth:`align` with the holistic strategy).
        """
        rows = 0
        if self._store_cache is not None:
            rows = self._store_cache.publish()
        return {"embedding_rows": rows}

    def store_statistics(self) -> Dict[str, int]:
        """Counters of the artifact store (empty dict when persistence is off)."""
        if self.store is None:
            return {}
        return self.store.statistics()

    def resilience_state(self) -> Dict[str, Any]:
        """Breaker state + cumulative retry/failure counters of the embedder.

        Always has a ``"state"`` key (``closed`` / ``open`` / ``half_open``);
        the serving layer turns it into the three-state ``/healthz`` body
        and the ``/stats`` breaker fields.
        """
        describe = getattr(self.embedder, "describe", None)
        if callable(describe):
            return describe()
        return {"state": "closed"}

    # -- the engine-owned request pool ---------------------------------------------
    def worker_pool(self, min_workers: Optional[int] = None) -> ThreadPoolExecutor:
        """The engine-owned request-level worker pool (lazy, long-lived).

        Every request-level consumer — :meth:`integrate_many` batches and the
        :class:`~repro.service.IntegrationService`'s off-event-loop execution
        — runs on this one pool, so repeated calls reuse warm threads instead
        of constructing a ``ThreadPoolExecutor`` per invocation.  The pool is
        sized ``max(config.max_workers, min_workers)`` and only ever *grows*:
        asking for more workers than the current pool holds replaces it (the
        old pool drains its in-flight work in the background), so the
        returned instance is stable across calls as long as demand does not
        grow — which tests assert by identity.
        """
        needed = max(self.config.max_workers, min_workers if min_workers else 1)
        with self._pool_lock:
            if self._pool is None or self._pool_workers < needed:
                previous = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=needed, thread_name_prefix="repro-engine"
                )
                self._pool_workers = needed
                if previous is not None:
                    previous.shutdown(wait=False)
            return self._pool

    def close(self) -> None:
        """Shut down the engine-owned worker pool (idempotent).

        The engine stays usable — the next pooled call lazily recreates the
        pool — but a long-lived process that is done serving should close so
        worker threads do not outlive their work.
        """
        with self._pool_lock:
            pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "IntegrationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"IntegrationEngine(embedder={self.embedder.name!r}, "
            f"solver={self.solver.name!r}, fd={self.fd_algorithm.name!r}, "
            f"requests_served={self.requests_served})"
        )

    # -- stages --------------------------------------------------------------------
    def align(self, tables: Sequence[Table], *, strategy: Optional[str] = None) -> AlignmentStage:
        """Stage 1: align the input columns and rename them canonically."""
        if not tables:
            raise ValueError("align() requires at least one table")
        strategy_name = strategy if strategy is not None else self.config.alignment
        align_fn = ALIGNMENT_STRATEGIES.get(strategy_name)
        start = time.perf_counter()
        alignment = align_fn(tables, embedder=self.embedder)
        aligned_tables = alignment.apply(tables)
        seconds = time.perf_counter() - start
        return AlignmentStage(
            alignment=alignment,
            tables=aligned_tables,
            timings={"alignment_seconds": seconds},
        )

    def apply_alignment(self, tables: Sequence[Table], alignment: ColumnAlignment) -> AlignmentStage:
        """Stage 1 with a caller-supplied alignment (no strategy run)."""
        start = time.perf_counter()
        aligned_tables = alignment.apply(tables)
        seconds = time.perf_counter() - start
        return AlignmentStage(
            alignment=alignment,
            tables=aligned_tables,
            timings={"alignment_seconds": seconds},
        )

    def match(
        self,
        aligned: Union[AlignmentStage, Sequence[Table]],
        alignment: Optional[ColumnAlignment] = None,
        *,
        _effective: Optional[FuzzyFDConfig] = None,
        **overrides: Any,
    ) -> MatchStage:
        """Stage 2: fuzzy value matching + representative rewriting.

        ``aligned`` is the :class:`AlignmentStage` from :meth:`align` (or a
        sequence of already-aligned tables plus an explicit ``alignment``).
        ``overrides`` are the per-request knobs of :data:`REQUEST_OVERRIDES`.
        ``_effective`` is internal: :meth:`integrate` passes its
        already-validated override config so it is not rebuilt here.
        """
        if isinstance(aligned, AlignmentStage):
            aligned_tables: Sequence[Table] = aligned.tables
            alignment = aligned.alignment
            timings = dict(aligned.timings)
        else:
            if alignment is None:
                raise ValueError("match() needs an AlignmentStage or an explicit alignment")
            aligned_tables = list(aligned)
            timings = {}

        effective = _effective if _effective is not None else self._effective_config(overrides)
        matcher = self._matcher_for(effective)

        start = time.perf_counter()
        # Per-request retry-policy overrides reach the shared resilient
        # wrapper through its thread-local context; knobs equal to the
        # engine's own stay untouched (an instance-configured wrapper keeps
        # its constructor values).  Breaker state is engine-global by design.
        with self._resilience_overrides(effective):
            value_matching, rewritten = self._match_and_rewrite(
                matcher, aligned_tables, alignment
            )
        timings["value_matching_seconds"] = time.perf_counter() - start
        if effective.blocking != "off":
            # Aggregate the per-group blocking counters next to the phase
            # timings so callers see how much pairwise work blocking saved.
            counter_keys = ["blocking_pairs_scored", "blocking_pairs_avoided"]
            if effective.semantic_blocking != "off":
                counter_keys += ["blocking_ann_pairs_added", "blocking_ann_pairs_duplicate"]
            for key in counter_keys:
                timings[key] = sum(
                    result.statistics.get(key, 0.0) for result in value_matching.values()
                )
            timings["blocking_largest_component"] = max(
                (
                    result.statistics.get("blocking_largest_component", 0.0)
                    for result in value_matching.values()
                ),
                default=0.0,
            )
        # Cache, durable-index and resilience observability: the per-group
        # deltas the matcher recorded, summed into the request's timing dict
        # (they are counters, not durations — like the blocking_* keys
        # above).  ``degraded`` is a flag, not a count: any degraded group
        # marks the whole request degraded.
        observability: Dict[str, float] = {}
        for result in value_matching.values():
            for key, value in result.statistics.items():
                if key.startswith(("cache_", "ann_index_", "embedder_", "breaker_")):
                    observability[key] = observability.get(key, 0.0) + value
                elif key == "degraded_assignments":
                    observability[key] = observability.get(key, 0.0) + value
                elif key == "degraded":
                    observability[key] = max(observability.get(key, 0.0), value)
        timings.update(observability)
        return MatchStage(
            alignment=alignment,
            value_matching=value_matching,
            tables=rewritten,
            timings=timings,
        )

    # -- the request API -----------------------------------------------------------
    def integrate(
        self,
        tables: Union[Sequence[Table], AlignmentStage, MatchStage],
        alignment: Optional[ColumnAlignment] = None,
        *,
        fuzzy: bool = True,
        fd_algorithm: Union[str, FullDisjunctionAlgorithm, None] = None,
        alignment_strategy: Optional[str] = None,
        on_stage: Optional[Callable[[str], None]] = None,
        **overrides: Any,
    ) -> FuzzyIntegrationResult:
        """Serve one integration request.

        ``tables`` may be raw tables (the full pipeline runs), an
        :class:`AlignmentStage` (alignment is reused), or a
        :class:`MatchStage` (only the Full Disjunction runs).  ``overrides``
        (:data:`REQUEST_OVERRIDES`, e.g. ``threshold=0.8``) reconfigure the
        matching stage for this request only; the warm embedder and its cache
        are reused, so a threshold sweep embeds each value once.

        ``on_stage`` is the stage-boundary hook of the serving layer: it is
        called with the stage about to run (``"align"``, ``"match"``,
        ``"integrate"``) and once with ``"complete"`` after the request
        finishes (publication included).  Stages skipped by the input shape
        (a pre-aligned :class:`AlignmentStage`, ``fuzzy=False``, a
        :class:`MatchStage`) never fire their hook.  Exceptions raised by
        the hook propagate unchanged — that is how a deadline enforcer
        (:class:`~repro.service.StageTracker`) turns a budget overrun into a
        typed error instead of letting the next stage start.
        """
        corrupt_before = (
            self.store.statistics().get("corrupt_segments", 0)
            if self.store is not None
            else 0
        )
        if isinstance(tables, MatchStage):
            # Executor knobs still steer the FD stage that is about to run;
            # everything else configures work that already happened.
            executor_overrides = {
                key: overrides.pop(key)
                for key in ("max_workers", "parallel_backend")
                if key in overrides
            }
            rejected = sorted(overrides)
            if alignment_strategy is not None:
                rejected.append("alignment_strategy")
            if alignment is not None:
                rejected.append("alignment")
            if not fuzzy:
                rejected.append("fuzzy=False")
            if rejected:
                raise TypeError(
                    f"override(s) {rejected} cannot apply to a MatchStage — alignment "
                    "and matching already ran; pass them to align()/match() instead "
                    "(or integrate the raw tables)"
                )
            staged = tables
            effective = self._effective_config(executor_overrides)
        else:
            if isinstance(tables, AlignmentStage):
                if alignment is not None or alignment_strategy is not None:
                    rejected = [
                        name
                        for name, value in (
                            ("alignment", alignment),
                            ("alignment_strategy", alignment_strategy),
                        )
                        if value is not None
                    ]
                    raise TypeError(
                        f"argument(s) {rejected} cannot apply to an AlignmentStage — "
                        "alignment already ran; re-align the raw tables instead"
                    )
                aligned = tables
            else:
                if not tables:
                    raise ValueError("integrate() requires at least one table")
                if alignment is not None:
                    if alignment_strategy is not None:
                        raise TypeError(
                            "pass either an explicit alignment or an "
                            "alignment_strategy, not both"
                        )
                    if on_stage is not None:
                        on_stage("align")
                    aligned = self.apply_alignment(tables, alignment)
                else:
                    if on_stage is not None:
                        on_stage("align")
                    aligned = self.align(tables, strategy=alignment_strategy)
            effective = self._effective_config(overrides)
            if fuzzy:
                if on_stage is not None:
                    on_stage("match")
                staged = self.match(aligned, _effective=effective, **overrides)
            else:
                # Without the matching stage, matching-only overrides would
                # be silently ignored — reject them loudly.  The executor
                # knobs stay legal: they still steer the FD stage.
                ignored = sorted(set(overrides) - {"max_workers", "parallel_backend"})
                if ignored:
                    raise TypeError(
                        f"override(s) {ignored} have no effect with fuzzy=False — "
                        "the matching stage they configure is skipped"
                    )
                staged = MatchStage(
                    alignment=aligned.alignment,
                    value_matching={},
                    tables=list(aligned.tables),
                    timings=dict(aligned.timings),
                )

        if on_stage is not None:
            on_stage("integrate")
        fd = self._resolve_fd(fd_algorithm, effective)
        timings = dict(staged.timings)
        start = time.perf_counter()
        fd_result = fd.integrate(staged.tables)
        timings["full_disjunction_seconds"] = time.perf_counter() - start

        if self._store_cache is not None and effective.store_mode == "readwrite":
            # Newly embedded values become durable as soon as the request
            # that embedded them completes — the next engine starts warm
            # without anyone remembering to call save().
            published = self._store_cache.publish()
            if published:
                timings["store_published_rows"] = float(published)

        if self.store is not None:
            corrupt_delta = (
                self.store.statistics().get("corrupt_segments", 0) - corrupt_before
            )
            if corrupt_delta > 0:
                # Corrupt artifacts this request tripped over (now quarantined
                # by the store) — surfaced per request so traces can flag it.
                timings["store_corrupt_segments"] = float(corrupt_delta)

        with self._served_lock:
            self.requests_served += 1
        if on_stage is not None:
            on_stage("complete")
        return FuzzyIntegrationResult(
            table=fd_result.table,
            fd_result=fd_result,
            alignment=staged.alignment,
            value_matching=staged.value_matching,
            rewritten_tables=list(staged.tables),
            timings=timings,
        )

    def integrate_many(
        self,
        requests: Sequence[Sequence[Table]],
        *,
        max_workers: Optional[int] = None,
        **overrides: Any,
    ) -> List[FuzzyIntegrationResult]:
        """Serve several integration requests concurrently (bounded pool).

        ``requests`` is a sequence of table lists; each is served exactly as
        :meth:`integrate` would serve it (``overrides`` apply to every
        request), and the results come back in request order — identical to a
        sequential loop, whatever the worker count.  Workers are threads of
        the engine-owned pool (:meth:`worker_pool` — one long-lived executor
        reused across calls, never a fresh pool per invocation) sharing the
        warm embedder: the embedding cache is thread-safe, and each worker
        thread builds its own matcher, so requests never share mutable
        matching state.  ``max_workers`` defaults to the engine config's
        ``max_workers``; ``1`` serves the batch serially.  At most
        ``max_workers`` requests are in flight at once even when the pool
        itself is larger (a submission window, not a pool per call).
        """
        workers = max_workers if max_workers is not None else self.config.max_workers
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {workers}")
        request_list = list(requests)
        if workers == 1 or len(request_list) < 2:
            return [self.integrate(tables, **overrides) for tables in request_list]
        # The engine's state lives in this process, so the request pool is
        # thread-based regardless of ``parallel_backend`` (which still
        # steers the per-request component solving).
        pool = self.worker_pool(workers)
        results: List[Optional[FuzzyIntegrationResult]] = [None] * len(request_list)
        pending: Dict[Future, int] = {}
        index = 0
        while index < len(request_list) or pending:
            while index < len(request_list) and len(pending) < workers:
                future = pool.submit(self.integrate, request_list[index], **overrides)
                pending[future] = index
                index += 1
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                # A worker exception propagates to the caller unchanged, as
                # the per-call pool did; later requests finish in background.
                results[pending.pop(future)] = future.result()
        return results

    # -- internals -----------------------------------------------------------------
    def _effective_config(self, overrides: Dict[str, Any]) -> FuzzyFDConfig:
        """The engine config with per-request ``overrides`` applied and validated."""
        unknown = sorted(set(overrides) - set(REQUEST_OVERRIDES))
        if unknown:
            raise TypeError(
                f"unknown per-request override(s) {unknown}; "
                f"supported: {sorted(REQUEST_OVERRIDES)}"
            )
        provided = {
            key: value
            for key, value in overrides.items()
            if value is not None or key in NULLABLE_OVERRIDES
        }
        if not provided:
            return self.config
        return self.config.replace(**provided)

    def _resilience_overrides(self, effective: FuzzyFDConfig):
        """Context applying ``effective``'s retry-policy knobs to the embedder.

        A no-op context when nothing differs from the engine config (the
        common case) or the embedder is not resilient (a caller-supplied
        bare instance).
        """
        changed = {
            knob: getattr(effective, knob)
            for knob in OVERRIDABLE_KNOBS
            if getattr(effective, knob) != getattr(self.config, knob)
        }
        if not changed or not isinstance(self.embedder, ResilientEmbedder):
            return nullcontext()
        return self.embedder.overrides(**changed)

    def _matcher_for(self, effective: FuzzyFDConfig) -> ValueMatcher:
        matchers: Dict[Tuple, ValueMatcher] = getattr(self._thread_state, "matchers", None)
        if matchers is None:
            matchers = self._thread_state.matchers = {}
        key = (
            effective.threshold,
            effective.representative_policy,
            effective.exact_first,
            effective.blocking,
            effective.blocking_cutoff,
            effective.blocking_key_cap,
            effective.semantic_blocking,
            effective.ann_tables,
            effective.ann_bits,
            effective.ann_top_k,
            effective.ann_index,
            effective.max_workers,
            effective.parallel_backend,
            effective.store_mode,
            effective.degraded_mode,
        )
        matcher = matchers.get(key)
        if matcher is None:
            matcher = ValueMatcher(
                embedder=self.embedder,
                threshold=effective.threshold,
                solver=self.solver,
                representative_policy=effective.representative_policy,
                exact_first=effective.exact_first,
                blocking=effective.blocking,
                blocking_cutoff=effective.blocking_cutoff,
                blocking_key_cap=effective.blocking_key_cap,
                semantic_blocking=effective.semantic_blocking,
                ann_tables=effective.ann_tables,
                ann_bits=effective.ann_bits,
                ann_top_k=effective.ann_top_k,
                ann_index=effective.ann_index,
                max_workers=effective.max_workers,
                parallel_backend=effective.parallel_backend,
                store=self._store_for(effective.store_mode),
                degraded_mode=effective.degraded_mode,
            )
            matchers[key] = matcher
        return matcher

    def _store_for(self, store_mode: str) -> Optional[ArtifactStore]:
        """The store view a request's matcher uses under ``store_mode``.

        ``"off"`` hands the matcher no store at all (the ANN channel rebuilds
        its codes in memory; results are identical).  The modes only apply
        when the *engine* has a store — ``store_dir`` is engine-level state,
        so a per-request override can restrict the store's use but never
        conjure one up.  Views share the engine store's counters.  Note the
        embedding cache tier is engine-level and stays attached regardless:
        it, too, never changes results, only where vectors come from.
        """
        if self.store is None or store_mode == "off":
            return None
        return self.store.with_mode(store_mode)

    def _resolve_fd(
        self,
        fd_algorithm: Union[str, FullDisjunctionAlgorithm, None],
        effective: FuzzyFDConfig,
    ) -> FullDisjunctionAlgorithm:
        """The FD algorithm for one request, honouring executor overrides.

        A caller-supplied instance always keeps its own configuration.  A
        name (per-request or from the engine config) is resolved fresh and
        configured from the *effective* config, so ``max_workers`` /
        ``parallel_backend`` overrides reach the FD stage too — the shared
        ``self.fd_algorithm`` is never mutated (``integrate_many`` workers
        run through here concurrently).
        """
        if fd_algorithm is None:
            executor_overridden = (
                effective.max_workers != self.config.max_workers
                or effective.parallel_backend != self.config.parallel_backend
            )
            if not (executor_overridden and isinstance(self.config.fd_algorithm, str)):
                return self.fd_algorithm
            # ``effective`` carries the engine's fd_algorithm name plus the
            # overridden executor knobs; resolving through it yields a fresh,
            # correctly configured instance.
            return effective.resolve_fd_algorithm()
        # One resolve-then-configure protocol, owned by the config: names get
        # a fresh configured instance, instances pass through untouched.
        return effective.replace(fd_algorithm=fd_algorithm).resolve_fd_algorithm()

    @staticmethod
    def _match_and_rewrite(
        matcher: ValueMatcher, aligned_tables: Sequence[Table], alignment: ColumnAlignment
    ) -> Tuple[Dict[str, ValueMatchingResult], List[Table]]:
        """Run Match Values per multi-table aligned group and rewrite the tables."""
        rewritten = {table.name: table for table in aligned_tables}
        results: Dict[str, ValueMatchingResult] = {}

        for group in alignment.multi_table_groups():
            columns: List[ColumnValues] = []
            for member in group.members:
                table = rewritten[member.table]
                # After alignment.apply() the column carries the group name.
                values = table.distinct_values(group.name)
                counts: Dict[object, int] = {}
                for value in table.column_values(group.name, dropna=True):
                    counts[value] = counts.get(value, 0) + 1
                if values:
                    columns.append(
                        ColumnValues(
                            column_id=(member.table, group.name), values=values, counts=counts
                        )
                    )
            if len(columns) < 2:
                continue
            result = matcher.match_columns(columns)
            results[group.name] = result
            for member in group.members:
                table = rewritten[member.table]
                mapping = result.rewrite_map((member.table, group.name))
                if mapping:
                    rewritten[member.table] = table.replace_values(group.name, mapping)

        ordered = [rewritten[table.name] for table in aligned_tables]
        return results, ordered
