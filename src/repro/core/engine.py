"""A long-lived integration engine serving repeated requests.

``integrate()`` and the operator classes build their embedder, solver and FD
algorithm per call — fine for one-shot use, wasteful for the serve-many-
requests shape every benchmark sweep has (Table 1 iterates models, Figure 3
iterates sizes, the θ-ablation iterates thresholds over the *same* tables).
:class:`IntegrationEngine` resolves those components once and keeps them warm:
the embedder's cache persists across requests, so a θ-sweep re-scores cached
vectors instead of re-embedding every value.

The pipeline is exposed as inspectable stages::

    engine = IntegrationEngine("paper")          # config, preset name, or dict
    aligned = engine.align(tables)               # AlignmentStage
    matched = engine.match(aligned)              # MatchStage (fuzzy rewrites)
    result  = engine.integrate(matched)          # FuzzyIntegrationResult

or as one call with per-request overrides::

    for theta in (0.6, 0.7, 0.8):
        engine.integrate(tables, threshold=theta)   # embeds values only once
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.config import FuzzyFDConfig
from repro.core.value_matching import ColumnValues, ValueMatcher, ValueMatchingResult
from repro.embeddings.base import EmbeddingCache, ValueEmbedder
from repro.fd import FD_ALGORITHMS
from repro.fd.base import FullDisjunctionAlgorithm, FullDisjunctionResult
from repro.matching.assignment import AssignmentSolver
from repro.schema_matching.alignment import ColumnAlignment
from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES
from repro.table.table import Table

#: Knobs :meth:`IntegrationEngine.integrate` accepts as per-request overrides.
REQUEST_OVERRIDES = (
    "threshold",
    "representative_policy",
    "exact_first",
    "blocking",
    "blocking_cutoff",
)


def _count_rewrites(value_matching: Dict[str, ValueMatchingResult]) -> int:
    """Distinct value rewrites across all aligned groups and columns."""
    total = 0
    for result in value_matching.values():
        for column_id in result.column_order:
            total += len(result.rewrite_map(column_id))
    return total


@dataclass
class FuzzyIntegrationResult:
    """Everything the pipeline produced, with a per-phase timing breakdown."""

    table: Table
    fd_result: FullDisjunctionResult
    alignment: ColumnAlignment
    value_matching: Dict[str, ValueMatchingResult] = field(default_factory=dict)
    rewritten_tables: List[Table] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the integration.

        ``timings`` also carries work counters (the ``blocking_*`` keys);
        only the ``*_seconds`` entries are durations.
        """
        return sum(value for key, value in self.timings.items() if key.endswith("_seconds"))

    @property
    def output_tuple_count(self) -> int:
        """Number of tuples in the integrated table."""
        return self.table.num_rows

    def rewrites_applied(self) -> int:
        """Number of distinct value rewrites applied across all columns."""
        return _count_rewrites(self.value_matching)


@dataclass
class AlignmentStage:
    """Output of :meth:`IntegrationEngine.align` — the aligned input."""

    alignment: ColumnAlignment
    tables: List[Table]
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass
class MatchStage:
    """Output of :meth:`IntegrationEngine.match` — fuzzy-rewritten tables."""

    alignment: ColumnAlignment
    value_matching: Dict[str, ValueMatchingResult]
    tables: List[Table]
    timings: Dict[str, float] = field(default_factory=dict)

    def rewrites_applied(self) -> int:
        """Number of distinct value rewrites across all aligned groups."""
        return _count_rewrites(self.value_matching)


class IntegrationEngine:
    """Warm, reusable executor of the Fuzzy Full Disjunction pipeline.

    Parameters
    ----------
    config:
        A :class:`FuzzyFDConfig`, a preset name (``"paper"``, ``"fast"``,
        ``"scale"``), a plain dict (:meth:`FuzzyFDConfig.from_dict`), or
        ``None`` for the paper's defaults.

    The embedder, assignment solver and FD algorithm named in the config are
    resolved once at construction and reused by every request; the embedder's
    :class:`~repro.embeddings.base.EmbeddingCache` therefore persists across
    requests, which is what makes repeated integrations (threshold sweeps,
    ablations, a service handling recurring tables) cheap.
    """

    def __init__(self, config: Union[FuzzyFDConfig, str, Dict[str, Any], None] = None) -> None:
        if config is None:
            config = FuzzyFDConfig()
        elif isinstance(config, str):
            config = FuzzyFDConfig.preset(config)
        elif isinstance(config, dict):
            config = FuzzyFDConfig.from_dict(config)
        self.config = config
        self.embedder: ValueEmbedder = config.resolve_embedder()
        self.solver: AssignmentSolver = config.resolve_solver()
        self.fd_algorithm: FullDisjunctionAlgorithm = config.resolve_fd_algorithm()
        self.requests_served = 0
        # One ValueMatcher per distinct override combination; all share the
        # engine's embedder (and therefore its cache) and solver.
        self._matchers: Dict[Tuple, ValueMatcher] = {}

    # -- introspection -------------------------------------------------------------
    @property
    def embedding_cache(self) -> EmbeddingCache:
        """The warm embedding cache shared by every request."""
        return self.embedder.cache

    def __repr__(self) -> str:
        return (
            f"IntegrationEngine(embedder={self.embedder.name!r}, "
            f"solver={self.solver.name!r}, fd={self.fd_algorithm.name!r}, "
            f"requests_served={self.requests_served})"
        )

    # -- stages --------------------------------------------------------------------
    def align(self, tables: Sequence[Table], *, strategy: Optional[str] = None) -> AlignmentStage:
        """Stage 1: align the input columns and rename them canonically."""
        if not tables:
            raise ValueError("align() requires at least one table")
        strategy_name = strategy if strategy is not None else self.config.alignment
        align_fn = ALIGNMENT_STRATEGIES.get(strategy_name)
        start = time.perf_counter()
        alignment = align_fn(tables, embedder=self.embedder)
        aligned_tables = alignment.apply(tables)
        seconds = time.perf_counter() - start
        return AlignmentStage(
            alignment=alignment,
            tables=aligned_tables,
            timings={"alignment_seconds": seconds},
        )

    def apply_alignment(self, tables: Sequence[Table], alignment: ColumnAlignment) -> AlignmentStage:
        """Stage 1 with a caller-supplied alignment (no strategy run)."""
        start = time.perf_counter()
        aligned_tables = alignment.apply(tables)
        seconds = time.perf_counter() - start
        return AlignmentStage(
            alignment=alignment,
            tables=aligned_tables,
            timings={"alignment_seconds": seconds},
        )

    def match(
        self,
        aligned: Union[AlignmentStage, Sequence[Table]],
        alignment: Optional[ColumnAlignment] = None,
        **overrides: Any,
    ) -> MatchStage:
        """Stage 2: fuzzy value matching + representative rewriting.

        ``aligned`` is the :class:`AlignmentStage` from :meth:`align` (or a
        sequence of already-aligned tables plus an explicit ``alignment``).
        ``overrides`` are the per-request knobs of :data:`REQUEST_OVERRIDES`.
        """
        if isinstance(aligned, AlignmentStage):
            aligned_tables: Sequence[Table] = aligned.tables
            alignment = aligned.alignment
            timings = dict(aligned.timings)
        else:
            if alignment is None:
                raise ValueError("match() needs an AlignmentStage or an explicit alignment")
            aligned_tables = list(aligned)
            timings = {}

        effective = self._effective_config(overrides)
        matcher = self._matcher_for(effective)

        start = time.perf_counter()
        value_matching, rewritten = self._match_and_rewrite(matcher, aligned_tables, alignment)
        timings["value_matching_seconds"] = time.perf_counter() - start
        if effective.blocking != "off":
            # Aggregate the per-group blocking counters next to the phase
            # timings so callers see how much pairwise work blocking saved.
            for key in ("blocking_pairs_scored", "blocking_pairs_avoided"):
                timings[key] = sum(
                    result.statistics.get(key, 0.0) for result in value_matching.values()
                )
            timings["blocking_largest_component"] = max(
                (
                    result.statistics.get("blocking_largest_component", 0.0)
                    for result in value_matching.values()
                ),
                default=0.0,
            )
        return MatchStage(
            alignment=alignment,
            value_matching=value_matching,
            tables=rewritten,
            timings=timings,
        )

    # -- the request API -----------------------------------------------------------
    def integrate(
        self,
        tables: Union[Sequence[Table], AlignmentStage, MatchStage],
        alignment: Optional[ColumnAlignment] = None,
        *,
        fuzzy: bool = True,
        fd_algorithm: Union[str, FullDisjunctionAlgorithm, None] = None,
        alignment_strategy: Optional[str] = None,
        **overrides: Any,
    ) -> FuzzyIntegrationResult:
        """Serve one integration request.

        ``tables`` may be raw tables (the full pipeline runs), an
        :class:`AlignmentStage` (alignment is reused), or a
        :class:`MatchStage` (only the Full Disjunction runs).  ``overrides``
        (:data:`REQUEST_OVERRIDES`, e.g. ``threshold=0.8``) reconfigure the
        matching stage for this request only; the warm embedder and its cache
        are reused, so a threshold sweep embeds each value once.
        """
        if isinstance(tables, MatchStage):
            if overrides or alignment_strategy is not None:
                rejected = sorted(overrides) + (
                    ["alignment_strategy"] if alignment_strategy is not None else []
                )
                raise TypeError(
                    f"override(s) {rejected} cannot apply to a MatchStage — alignment "
                    "and matching already ran; pass them to align()/match() instead"
                )
            staged = tables
        else:
            if isinstance(tables, AlignmentStage):
                aligned = tables
            else:
                if not tables:
                    raise ValueError("integrate() requires at least one table")
                if alignment is not None:
                    if alignment_strategy is not None:
                        raise TypeError(
                            "pass either an explicit alignment or an "
                            "alignment_strategy, not both"
                        )
                    aligned = self.apply_alignment(tables, alignment)
                else:
                    aligned = self.align(tables, strategy=alignment_strategy)
            if fuzzy:
                staged = self.match(aligned, **overrides)
            else:
                self._effective_config(overrides)  # still validate the overrides
                staged = MatchStage(
                    alignment=aligned.alignment,
                    value_matching={},
                    tables=list(aligned.tables),
                    timings=dict(aligned.timings),
                )

        fd = self._resolve_fd(fd_algorithm)
        timings = dict(staged.timings)
        start = time.perf_counter()
        fd_result = fd.integrate(staged.tables)
        timings["full_disjunction_seconds"] = time.perf_counter() - start

        self.requests_served += 1
        return FuzzyIntegrationResult(
            table=fd_result.table,
            fd_result=fd_result,
            alignment=staged.alignment,
            value_matching=staged.value_matching,
            rewritten_tables=list(staged.tables),
            timings=timings,
        )

    # -- internals -----------------------------------------------------------------
    def _effective_config(self, overrides: Dict[str, Any]) -> FuzzyFDConfig:
        """The engine config with per-request ``overrides`` applied and validated."""
        unknown = sorted(set(overrides) - set(REQUEST_OVERRIDES))
        if unknown:
            raise TypeError(
                f"unknown per-request override(s) {unknown}; "
                f"supported: {sorted(REQUEST_OVERRIDES)}"
            )
        provided = {key: value for key, value in overrides.items() if value is not None}
        if not provided:
            return self.config
        return self.config.replace(**provided)

    def _matcher_for(self, effective: FuzzyFDConfig) -> ValueMatcher:
        key = (
            effective.threshold,
            effective.representative_policy,
            effective.exact_first,
            effective.blocking,
            effective.blocking_cutoff,
        )
        matcher = self._matchers.get(key)
        if matcher is None:
            matcher = ValueMatcher(
                embedder=self.embedder,
                threshold=effective.threshold,
                solver=self.solver,
                representative_policy=effective.representative_policy,
                exact_first=effective.exact_first,
                blocking=effective.blocking,
                blocking_cutoff=effective.blocking_cutoff,
            )
            self._matchers[key] = matcher
        return matcher

    def _resolve_fd(
        self, fd_algorithm: Union[str, FullDisjunctionAlgorithm, None]
    ) -> FullDisjunctionAlgorithm:
        if fd_algorithm is None:
            return self.fd_algorithm
        return FD_ALGORITHMS.resolve(fd_algorithm, FullDisjunctionAlgorithm)

    @staticmethod
    def _match_and_rewrite(
        matcher: ValueMatcher, aligned_tables: Sequence[Table], alignment: ColumnAlignment
    ) -> Tuple[Dict[str, ValueMatchingResult], List[Table]]:
        """Run Match Values per multi-table aligned group and rewrite the tables."""
        rewritten = {table.name: table for table in aligned_tables}
        results: Dict[str, ValueMatchingResult] = {}

        for group in alignment.multi_table_groups():
            columns: List[ColumnValues] = []
            for member in group.members:
                table = rewritten[member.table]
                # After alignment.apply() the column carries the group name.
                values = table.distinct_values(group.name)
                counts: Dict[object, int] = {}
                for value in table.column_values(group.name, dropna=True):
                    counts[value] = counts.get(value, 0) + 1
                if values:
                    columns.append(
                        ColumnValues(
                            column_id=(member.table, group.name), values=values, counts=counts
                        )
                    )
            if len(columns) < 2:
                continue
            result = matcher.match_columns(columns)
            results[group.name] = result
            for member in group.members:
                table = rewritten[member.table]
                mapping = result.rewrite_map((member.table, group.name))
                if mapping:
                    rewritten[member.table] = table.replace_values(group.name, mapping)

        ordered = [rewritten[table.name] for table in aligned_tables]
        return results, ordered
