"""One-call convenience API.

``integrate(tables)`` is the function a downstream user reaches for first: it
builds the default configuration (Mistral embedder, θ = 0.7, scipy assignment,
ALITE Full Disjunction, header-based alignment), spins up a one-shot
:class:`~repro.core.engine.IntegrationEngine`, and runs either the fuzzy or
the regular pipeline.  Callers integrating *repeatedly* (sweeps, services)
should hold an engine instead — it keeps the embedding cache warm.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import FuzzyFDConfig
from repro.core.engine import FuzzyIntegrationResult, IntegrationEngine
from repro.schema_matching.alignment import ColumnAlignment
from repro.table.table import Table


def integrate(
    tables: Sequence[Table],
    *,
    fuzzy: bool = True,
    config: Optional[FuzzyFDConfig] = None,
    alignment: Optional[ColumnAlignment] = None,
) -> FuzzyIntegrationResult:
    """Integrate a set of data-lake tables into one unified table.

    Parameters
    ----------
    tables:
        The tables to integrate (e.g. loaded with :func:`repro.table.read_csv`).
    fuzzy:
        ``True`` (default) runs the paper's Fuzzy Full Disjunction;
        ``False`` runs the regular, equi-join Full Disjunction baseline.
    config:
        Pipeline configuration; defaults to the paper's settings.
    alignment:
        Optional pre-computed column alignment.  When omitted the alignment
        strategy named in the configuration is used.

    Returns
    -------
    FuzzyIntegrationResult
        The integrated table plus value-matching details and timings.

    Example
    -------
    >>> from repro.table import Table
    >>> from repro.core import integrate
    >>> cities = Table("t1", ["City", "Country"], [("Berlin", "Germany")])
    >>> stats = Table("t2", ["City", "Cases"], [("Berlin", "1.4M")])
    >>> result = integrate([cities, stats])
    >>> sorted(result.table.columns)
    ['Cases', 'City', 'Country']
    """
    config = config if config is not None else FuzzyFDConfig()
    engine = IntegrationEngine(config)
    return engine.integrate(tables, alignment=alignment, fuzzy=fuzzy)
