"""The Fuzzy Full Disjunction operator and its regular (equi-join) counterpart.

``FuzzyFullDisjunction.integrate(tables)`` performs the paper's pipeline:

1. obtain a column alignment (by header name, by holistic schema matching, or
   supplied by the caller),
2. rename columns to the aligned canonical names,
3. for every aligned column group spanning more than one table, run the Match
   Values component and rewrite each cell with the representative value of its
   match set,
4. apply the (equi-join) Full Disjunction algorithm to the rewritten tables.

``RegularFullDisjunction`` is the ALITE baseline: the same pipeline without
step 3 — it only integrates tuples whose join values are exactly equal.

Both operators are thin wrappers over a private
:class:`~repro.core.engine.IntegrationEngine`, which is also the API to reach
for directly when serving *repeated* requests (sweeps, ablations, services):
the engine keeps the embedder and its cache warm across calls.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import FuzzyFDConfig
from repro.core.engine import FuzzyIntegrationResult, IntegrationEngine
from repro.schema_matching.alignment import ColumnAlignment
from repro.table.table import Table

__all__ = [
    "FuzzyFullDisjunction",
    "RegularFullDisjunction",
    "FuzzyIntegrationResult",
]


class FuzzyFullDisjunction:
    """The paper's operator: value matching + equi-join Full Disjunction."""

    def __init__(self, config: Optional[FuzzyFDConfig] = None) -> None:
        self.engine = IntegrationEngine(config)
        self.config = self.engine.config

    def integrate(
        self,
        tables: Sequence[Table],
        alignment: Optional[ColumnAlignment] = None,
    ) -> FuzzyIntegrationResult:
        """Integrate ``tables`` with fuzzy value matching."""
        return self.engine.integrate(tables, alignment=alignment, fuzzy=True)


class RegularFullDisjunction:
    """The equi-join baseline (ALITE): alignment + Full Disjunction, no fuzziness."""

    def __init__(self, config: Optional[FuzzyFDConfig] = None) -> None:
        self.engine = IntegrationEngine(config)
        self.config = self.engine.config

    def integrate(
        self,
        tables: Sequence[Table],
        alignment: Optional[ColumnAlignment] = None,
    ) -> FuzzyIntegrationResult:
        """Integrate ``tables`` on exact value equality only."""
        return self.engine.integrate(tables, alignment=alignment, fuzzy=False)
