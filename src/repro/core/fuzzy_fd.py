"""The Fuzzy Full Disjunction operator and its regular (equi-join) counterpart.

``FuzzyFullDisjunction.integrate(tables)`` performs the paper's pipeline:

1. obtain a column alignment (by header name, by holistic schema matching, or
   supplied by the caller),
2. rename columns to the aligned canonical names,
3. for every aligned column group spanning more than one table, run the Match
   Values component and rewrite each cell with the representative value of its
   match set,
4. apply the (equi-join) Full Disjunction algorithm to the rewritten tables.

``RegularFullDisjunction`` is the ALITE baseline: the same pipeline without
steps 3 — it only integrates tuples whose join values are exactly equal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FuzzyFDConfig
from repro.core.value_matching import ColumnValues, ValueMatcher, ValueMatchingResult
from repro.fd.base import FullDisjunctionResult
from repro.schema_matching.alignment import ColumnAlignment
from repro.schema_matching.holistic import HolisticSchemaMatcher
from repro.table.table import Table


@dataclass
class FuzzyIntegrationResult:
    """Everything the pipeline produced, with a per-phase timing breakdown."""

    table: Table
    fd_result: FullDisjunctionResult
    alignment: ColumnAlignment
    value_matching: Dict[str, ValueMatchingResult] = field(default_factory=dict)
    rewritten_tables: List[Table] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the integration.

        ``timings`` also carries work counters (the ``blocking_*`` keys);
        only the ``*_seconds`` entries are durations.
        """
        return sum(value for key, value in self.timings.items() if key.endswith("_seconds"))

    @property
    def output_tuple_count(self) -> int:
        """Number of tuples in the integrated table."""
        return self.table.num_rows

    def rewrites_applied(self) -> int:
        """Number of distinct value rewrites applied across all columns."""
        total = 0
        for group_name, result in self.value_matching.items():
            for column_id in result.column_order:
                total += len(result.rewrite_map(column_id))
        return total


class FuzzyFullDisjunction:
    """The paper's operator: value matching + equi-join Full Disjunction."""

    def __init__(self, config: Optional[FuzzyFDConfig] = None) -> None:
        self.config = config if config is not None else FuzzyFDConfig()
        self._embedder = self.config.resolve_embedder()
        self._solver = self.config.resolve_solver()
        self._fd = self.config.resolve_fd_algorithm()
        self._value_matcher = ValueMatcher(
            embedder=self._embedder,
            threshold=self.config.threshold,
            solver=self._solver,
            representative_policy=self.config.representative_policy,
            exact_first=self.config.exact_first,
            blocking=self.config.blocking,
            blocking_cutoff=self.config.blocking_cutoff,
        )

    # -- public API -----------------------------------------------------------------
    def integrate(
        self,
        tables: Sequence[Table],
        alignment: Optional[ColumnAlignment] = None,
    ) -> FuzzyIntegrationResult:
        """Integrate ``tables`` with fuzzy value matching."""
        if not tables:
            raise ValueError("integrate() requires at least one table")
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        alignment = alignment if alignment is not None else self._align(tables)
        aligned_tables = alignment.apply(tables)
        timings["alignment_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        value_matching, rewritten = self._match_and_rewrite(aligned_tables, alignment)
        timings["value_matching_seconds"] = time.perf_counter() - start
        if self.config.blocking != "off":
            # Aggregate the per-group blocking counters next to the phase
            # timings so callers see how much pairwise work blocking saved.
            for key in ("blocking_pairs_scored", "blocking_pairs_avoided"):
                timings[key] = sum(
                    result.statistics.get(key, 0.0) for result in value_matching.values()
                )
            timings["blocking_largest_component"] = max(
                (
                    result.statistics.get("blocking_largest_component", 0.0)
                    for result in value_matching.values()
                ),
                default=0.0,
            )

        start = time.perf_counter()
        fd_result = self._fd.integrate(rewritten)
        timings["full_disjunction_seconds"] = time.perf_counter() - start

        return FuzzyIntegrationResult(
            table=fd_result.table,
            fd_result=fd_result,
            alignment=alignment,
            value_matching=value_matching,
            rewritten_tables=rewritten,
            timings=timings,
        )

    # -- pipeline phases ---------------------------------------------------------------
    def _align(self, tables: Sequence[Table]) -> ColumnAlignment:
        if self.config.alignment == "holistic":
            return HolisticSchemaMatcher(embedder=self._embedder).align(tables)
        return ColumnAlignment.from_named_columns(tables)

    def _match_and_rewrite(
        self, aligned_tables: Sequence[Table], alignment: ColumnAlignment
    ) -> Tuple[Dict[str, ValueMatchingResult], List[Table]]:
        """Run Match Values per multi-table aligned group and rewrite the tables."""
        rewritten = {table.name: table for table in aligned_tables}
        results: Dict[str, ValueMatchingResult] = {}

        for group in alignment.multi_table_groups():
            columns: List[ColumnValues] = []
            for member in group.members:
                table = rewritten[member.table]
                # After alignment.apply() the column carries the group name.
                values = table.distinct_values(group.name)
                counts = {}
                for value in table.column_values(group.name, dropna=True):
                    counts[value] = counts.get(value, 0) + 1
                if values:
                    columns.append(
                        ColumnValues(
                            column_id=(member.table, group.name), values=values, counts=counts
                        )
                    )
            if len(columns) < 2:
                continue
            result = self._value_matcher.match_columns(columns)
            results[group.name] = result
            for member in group.members:
                table = rewritten[member.table]
                mapping = result.rewrite_map((member.table, group.name))
                if mapping:
                    rewritten[member.table] = table.replace_values(group.name, mapping)

        ordered = [rewritten[table.name] for table in aligned_tables]
        return results, ordered


class RegularFullDisjunction:
    """The equi-join baseline (ALITE): alignment + Full Disjunction, no fuzziness."""

    def __init__(self, config: Optional[FuzzyFDConfig] = None) -> None:
        self.config = config if config is not None else FuzzyFDConfig()
        self._embedder = self.config.resolve_embedder()
        self._fd = self.config.resolve_fd_algorithm()

    def integrate(
        self,
        tables: Sequence[Table],
        alignment: Optional[ColumnAlignment] = None,
    ) -> FuzzyIntegrationResult:
        """Integrate ``tables`` on exact value equality only."""
        if not tables:
            raise ValueError("integrate() requires at least one table")
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        if alignment is None:
            if self.config.alignment == "holistic":
                alignment = HolisticSchemaMatcher(embedder=self._embedder).align(tables)
            else:
                alignment = ColumnAlignment.from_named_columns(tables)
        aligned_tables = alignment.apply(tables)
        timings["alignment_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        fd_result = self._fd.integrate(aligned_tables)
        timings["full_disjunction_seconds"] = time.perf_counter() - start

        return FuzzyIntegrationResult(
            table=fd_result.table,
            fd_result=fd_result,
            alignment=alignment,
            value_matching={},
            rewritten_tables=list(aligned_tables),
            timings=timings,
        )
