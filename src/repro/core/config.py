"""Configuration of the Fuzzy Full Disjunction pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.value_matching import DEFAULT_BLOCKING_CUTOFF
from repro.embeddings.base import ValueEmbedder
from repro.embeddings.registry import get_embedder
from repro.fd import get_algorithm
from repro.fd.base import FullDisjunctionAlgorithm
from repro.matching.assignment import AssignmentSolver, get_assignment_solver


@dataclass
class FuzzyFDConfig:
    """All knobs of the pipeline, with the paper's defaults.

    Attributes
    ----------
    embedder:
        Embedding model (registry name or instance).  The paper's system uses
        Mistral-7B-Instruct; the default here is the Mistral simulator.
    threshold:
        Matching threshold θ of Definition 2.  The paper reports θ = 0.7.
    assignment_solver:
        Bipartite assignment solver (``"scipy"`` as in the paper,
        ``"hungarian"`` or ``"greedy"``).
    fd_algorithm:
        Full Disjunction substrate (``"alite"`` as in the paper, or
        ``"naive"`` / ``"incremental"`` / ``"partitioned"``).
    representative_policy:
        How the representative value of a match set is chosen;
        ``"frequency"`` (most frequent value, ties broken by earliest table)
        is the paper's rule.
    exact_first:
        Match identical values before running the optimal assignment on the
        remainder (cheaper and never harmful under clean-clean semantics).
    blocking:
        Whether the Match Values component routes column pairs through the
        component-wise blocked matcher: ``"off"`` (the paper's exhaustive
        matrix, the default), ``"on"`` (always block), or ``"auto"`` (block
        only pairs whose cross product reaches ``blocking_cutoff`` cells —
        the data-lake setting: paper-size columns stay exact, wide columns
        go sparse).
    blocking_cutoff:
        Cell count ``|left| × |right|`` at which ``"auto"`` engages blocking.
    alignment:
        How columns are aligned when the caller does not pass an explicit
        alignment: ``"by_name"`` groups equal headers (the Figure 1 setting),
        ``"holistic"`` runs embedding-based holistic schema matching.
    """

    embedder: Union[str, ValueEmbedder] = "mistral"
    threshold: float = 0.7
    assignment_solver: Union[str, AssignmentSolver] = "scipy"
    fd_algorithm: Union[str, FullDisjunctionAlgorithm] = "alite"
    representative_policy: str = "frequency"
    exact_first: bool = True
    blocking: str = "off"
    blocking_cutoff: int = DEFAULT_BLOCKING_CUTOFF
    alignment: str = "by_name"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold}")
        if self.blocking not in ("off", "on", "auto"):
            raise ValueError(
                f"blocking must be 'off', 'on' or 'auto', got {self.blocking!r}"
            )
        if self.blocking_cutoff <= 0:
            raise ValueError(
                f"blocking_cutoff must be positive, got {self.blocking_cutoff}"
            )
        if self.alignment not in ("by_name", "holistic"):
            raise ValueError(
                f"alignment must be 'by_name' or 'holistic', got {self.alignment!r}"
            )

    # -- resolution helpers -------------------------------------------------------
    def resolve_embedder(self) -> ValueEmbedder:
        """Return the embedder instance (instantiating registry names)."""
        if isinstance(self.embedder, ValueEmbedder):
            return self.embedder
        return get_embedder(self.embedder)

    def resolve_solver(self) -> AssignmentSolver:
        """Return the assignment solver instance."""
        if isinstance(self.assignment_solver, AssignmentSolver):
            return self.assignment_solver
        return get_assignment_solver(self.assignment_solver)

    def resolve_fd_algorithm(self) -> FullDisjunctionAlgorithm:
        """Return the Full Disjunction algorithm instance."""
        if isinstance(self.fd_algorithm, FullDisjunctionAlgorithm):
            return self.fd_algorithm
        return get_algorithm(self.fd_algorithm)
