"""Configuration of the Fuzzy Full Disjunction pipeline.

Every name-valued knob (embedder, assignment solver, FD algorithm,
representative policy, alignment strategy) is validated *eagerly* at
construction against its plugin registry, so a typo fails immediately with
the valid names listed instead of exploding deep inside the pipeline.

Configurations serialise: :meth:`FuzzyFDConfig.to_dict` /
:meth:`FuzzyFDConfig.from_dict` round-trip through plain dicts, and
:meth:`FuzzyFDConfig.from_json` loads a JSON file or string.  Named presets
(:data:`PRESETS`: ``"paper"``, ``"fast"``, ``"scale"``) capture the common
operating points.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.representatives import REPRESENTATIVE_POLICIES
from repro.core.value_matching import DEFAULT_BLOCKING_CUTOFF, DEFAULT_BLOCKING_KEY_CAP
from repro.matching.ann import (
    ANN_INDEX_KINDS,
    DEFAULT_ANN_BITS,
    DEFAULT_ANN_TABLES,
    DEFAULT_ANN_TOP_K,
)
from repro.embeddings.base import ValueEmbedder
from repro.embeddings.registry import EMBEDDERS
from repro.embeddings.resilient import DEGRADED_MODES, validate_resilience_knobs
from repro.fd import FD_ALGORITHMS
from repro.fd.base import FullDisjunctionAlgorithm
from repro.matching.assignment import ASSIGNMENT_SOLVERS, AssignmentSolver
from repro.registry import Registry
from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES
from repro.storage.store import STORE_MODES
from repro.utils.executor import EXECUTOR_BACKENDS, ExecutorConfig


@dataclass
class FuzzyFDConfig:
    """All knobs of the pipeline, with the paper's defaults.

    Attributes
    ----------
    embedder:
        Embedding model (registry name or instance).  The paper's system uses
        Mistral-7B-Instruct; the default here is the Mistral simulator.
    threshold:
        Matching threshold θ of Definition 2.  The paper reports θ = 0.7.
    assignment_solver:
        Bipartite assignment solver (``"scipy"`` as in the paper,
        ``"hungarian"`` or ``"greedy"``).
    fd_algorithm:
        Full Disjunction substrate (``"alite"`` as in the paper, or
        ``"naive"`` / ``"incremental"`` / ``"partitioned"``).
    representative_policy:
        How the representative value of a match set is chosen;
        ``"frequency"`` (most frequent value, ties broken by earliest table)
        is the paper's rule.
    exact_first:
        Match identical values before running the optimal assignment on the
        remainder (cheaper and never harmful under clean-clean semantics).
    blocking:
        Whether the Match Values component routes column pairs through the
        component-wise blocked matcher: ``"off"`` (the paper's exhaustive
        matrix, the default), ``"on"`` (always block), or ``"auto"`` (block
        only pairs whose cross product reaches ``blocking_cutoff`` cells —
        the data-lake setting: paper-size columns stay exact, wide columns
        go sparse).
    blocking_cutoff:
        Cell count ``|left| × |right|`` at which ``"auto"`` engages blocking.
    blocking_key_cap:
        Frequent-key cap of the blocked matcher's candidate generator: a
        blocking key whose *smaller* posting list exceeds the cap is skipped
        (stop-word-like keys would otherwise contribute quadratic candidate
        blocks).  ``None`` disables the cap (pre-cap behaviour).
    semantic_blocking:
        The ANN candidate channel of the blocked matcher
        (:class:`~repro.matching.ann.SemanticBlocker`): ``"off"`` (surface
        keys only, the default), ``"on"`` (always union embedding-neighbour
        pairs into the candidate graph), or ``"auto"`` (union them only for
        column pairs where the surface keys left some value with no candidate
        at all).  ``"on"`` requires ``blocking`` ``"on"``/``"auto"`` — the
        channel rides the blocked matcher; the exhaustive matcher already
        scores every pair.
    ann_tables:
        Number of LSH hash tables of the semantic channel.  More tables,
        higher recall, linearly more probing.
    ann_bits:
        Random-hyperplane bits per LSH table.  Fewer bits, bigger buckets:
        higher recall, more similarity evaluations.
    ann_top_k:
        Candidate pairs the semantic channel emits per value (its nearest
        counterparts by cosine similarity; both sides probe).  Bounds the
        extra pairs the channel can add to roughly
        ``top_k × (|left| + |right|)``.
    ann_index:
        Retrieval index of the semantic channel above the brute-force
        cutoff: ``"lsh"`` (random-hyperplane tables, the default — falls
        back to IVF per column pair when hyperplane buckets skew past the
        blocker's threshold) or ``"ivf"`` (force the seeded k-means
        inverted-file index everywhere).  Both are deterministic under the
        fixed seed and both persist through the artifact store.
    alignment:
        Alignment strategy used when the caller does not pass an explicit
        alignment: ``"by_name"`` groups equal headers (the Figure 1 setting),
        ``"holistic"`` runs embedding-based holistic schema matching; any
        strategy registered in
        :data:`~repro.schema_matching.strategies.ALIGNMENT_STRATEGIES` works.
    max_workers:
        Worker bound of the parallel execution layer.  ``1`` (the paper's
        single-threaded setting, the default) disables every pool; larger
        values let the blocked matcher solve components concurrently, the
        partitioned FD close tuple components concurrently, and
        ``IntegrationEngine.integrate_many`` serve requests concurrently.
    parallel_backend:
        Executor backend used when ``max_workers > 1``: ``"thread"`` (numpy/
        scipy release the GIL — the usual choice), ``"process"`` (true CPU
        parallelism for pure-Python closures at a pickling cost), or
        ``"serial"`` (force the plain loop regardless of ``max_workers``).
        Results are identical across backends by construction.
    store_dir:
        Directory of the persistent artifact store
        (:class:`~repro.storage.store.ArtifactStore`): memmapped embedding
        segments and durable ANN indexes that make a restarted engine warm.
        ``None`` (the default) disables persistence entirely.  Stored as a
        plain string so configurations stay JSON-serialisable.
    store_mode:
        How the store is used when ``store_dir`` is set: ``"readwrite"``
        (attach and publish), ``"read"`` (attach existing artifacts, never
        write — e.g. many engines sharing one store only one of them owns),
        or ``"off"`` (ignore the directory).  The store never changes
        results, only whether artifacts are recomputed or loaded.
    service_max_pending:
        Admission bound of the :class:`~repro.service.IntegrationService`:
        requests admitted but not yet executing.  Once this many are queued,
        new submissions are rejected with a typed ``ServiceOverloaded``
        response instead of buffering without bound (backpressure).  ``0``
        rejects whenever every concurrency slot is busy.
    service_max_concurrency:
        Requests the service executes concurrently on the engine-owned
        worker pool.  Admitted requests beyond this wait in the pending
        queue (their queue-wait time lands in the request trace).
    service_deadline_ms:
        Default per-request deadline budget of the service in milliseconds
        (queue wait included), checked at stage boundaries
        (align → match → integrate); ``None`` (the default) means no
        deadline unless the request carries its own ``deadline_ms``.
    retry_max_attempts:
        Fault-tolerance: total attempts the engine's
        :class:`~repro.embeddings.resilient.ResilientEmbedder` wrapper makes
        per ``embed``/``embed_many`` call before counting the call as failed
        (``1`` disables retries).
    retry_backoff_ms:
        Base delay of the capped exponential backoff between retry attempts
        (doubled per attempt, capped at 8×, scaled by deterministic jitter).
    breaker_failure_threshold:
        Consecutive exhausted embedder calls after which the circuit breaker
        opens and calls short-circuit with a typed
        :class:`~repro.embeddings.resilient.EmbedderUnavailable`.
    breaker_reset_ms:
        How long the breaker stays open before going half-open and admitting
        one probe call (success closes it, failure re-opens a full window).
    degraded_mode:
        What a request does while the breaker is open: ``"off"`` (the
        default) propagates ``EmbedderUnavailable`` to the caller,
        ``"surface"`` degrades value matching to exact + surface-blocking
        candidates without embeddings (results marked ``degraded`` in
        statistics and traces), ``"fail"`` makes the service answer a typed
        503 with a ``Retry-After`` derived from the breaker's remaining
        open window.
    """

    embedder: Union[str, ValueEmbedder] = "mistral"
    threshold: float = 0.7
    assignment_solver: Union[str, AssignmentSolver] = "scipy"
    fd_algorithm: Union[str, FullDisjunctionAlgorithm] = "alite"
    representative_policy: str = "frequency"
    exact_first: bool = True
    blocking: str = "off"
    blocking_cutoff: int = DEFAULT_BLOCKING_CUTOFF
    blocking_key_cap: Optional[int] = DEFAULT_BLOCKING_KEY_CAP
    semantic_blocking: str = "off"
    ann_tables: int = DEFAULT_ANN_TABLES
    ann_bits: int = DEFAULT_ANN_BITS
    ann_top_k: int = DEFAULT_ANN_TOP_K
    ann_index: str = "lsh"
    alignment: str = "by_name"
    max_workers: int = 1
    parallel_backend: str = "thread"
    store_dir: Optional[str] = None
    store_mode: str = "off"
    service_max_pending: int = 32
    service_max_concurrency: int = 4
    service_deadline_ms: Optional[float] = None
    retry_max_attempts: int = 3
    retry_backoff_ms: float = 50.0
    breaker_failure_threshold: int = 5
    breaker_reset_ms: float = 30_000.0
    degraded_mode: str = "off"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold}")
        if self.blocking not in ("off", "on", "auto"):
            raise ValueError(
                f"blocking must be 'off', 'on' or 'auto', got {self.blocking!r}"
            )
        if self.blocking_cutoff <= 0:
            raise ValueError(
                f"blocking_cutoff must be positive, got {self.blocking_cutoff}"
            )
        if self.blocking_key_cap is not None and self.blocking_key_cap < 1:
            raise ValueError(
                f"blocking_key_cap must be >= 1 or None, got {self.blocking_key_cap}"
            )
        if self.semantic_blocking not in ("off", "on", "auto"):
            raise ValueError(
                f"semantic_blocking must be 'off', 'on' or 'auto', "
                f"got {self.semantic_blocking!r}"
            )
        if self.semantic_blocking == "on" and self.blocking == "off":
            raise ValueError(
                "semantic_blocking='on' requires blocking 'on' or 'auto': the ANN "
                "channel rides the blocked matcher"
            )
        if self.ann_tables < 1:
            raise ValueError(f"ann_tables must be >= 1, got {self.ann_tables}")
        if not 1 <= self.ann_bits <= 30:
            raise ValueError(f"ann_bits must be in [1, 30], got {self.ann_bits}")
        if self.ann_top_k < 1:
            raise ValueError(f"ann_top_k must be >= 1, got {self.ann_top_k}")
        if self.ann_index not in ANN_INDEX_KINDS:
            raise ValueError(
                f"ann_index must be one of {list(ANN_INDEX_KINDS)}, got {self.ann_index!r}"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.parallel_backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {list(EXECUTOR_BACKENDS)}, "
                f"got {self.parallel_backend!r}"
            )
        if self.store_mode not in STORE_MODES:
            raise ValueError(
                f"store_mode must be one of {list(STORE_MODES)}, got {self.store_mode!r}"
            )
        if self.store_dir is not None:
            # Paths are accepted for convenience but held as strings so
            # to_dict()/to_json() stay plainly serialisable.
            self.store_dir = str(self.store_dir)
        if self.service_max_pending < 0:
            raise ValueError(
                f"service_max_pending must be >= 0, got {self.service_max_pending}"
            )
        if self.service_max_concurrency < 1:
            raise ValueError(
                f"service_max_concurrency must be >= 1, "
                f"got {self.service_max_concurrency}"
            )
        if self.service_deadline_ms is not None and self.service_deadline_ms <= 0:
            raise ValueError(
                f"service_deadline_ms must be positive or None, "
                f"got {self.service_deadline_ms}"
            )
        validate_resilience_knobs(
            retry_max_attempts=self.retry_max_attempts,
            retry_backoff_ms=self.retry_backoff_ms,
            breaker_failure_threshold=self.breaker_failure_threshold,
            breaker_reset_ms=self.breaker_reset_ms,
        )
        if self.degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode must be one of {list(DEGRADED_MODES)}, "
                f"got {self.degraded_mode!r}"
            )
        # Every registry-resolved knob is checked here, at construction, so an
        # unknown name can never survive into the pipeline's hot path.
        if isinstance(self.embedder, str):
            EMBEDDERS.validate(self.embedder)
        if isinstance(self.assignment_solver, str):
            ASSIGNMENT_SOLVERS.validate(self.assignment_solver)
        if isinstance(self.fd_algorithm, str):
            FD_ALGORITHMS.validate(self.fd_algorithm)
        REPRESENTATIVE_POLICIES.validate(self.representative_policy)
        ALIGNMENT_STRATEGIES.validate(self.alignment)

    # -- resolution helpers -------------------------------------------------------
    def resolve_embedder(self) -> ValueEmbedder:
        """Return the embedder instance (instantiating registry names)."""
        return EMBEDDERS.resolve(self.embedder, ValueEmbedder)

    def resolve_solver(self) -> AssignmentSolver:
        """Return the assignment solver instance."""
        return ASSIGNMENT_SOLVERS.resolve(self.assignment_solver, AssignmentSolver)

    def resolve_fd_algorithm(self) -> FullDisjunctionAlgorithm:
        """Return the Full Disjunction algorithm instance.

        Algorithms resolved *by name* that expose ``configure_executor``
        (e.g. ``"partitioned"``) are handed this config's executor settings;
        a caller-supplied instance is passed through untouched — its own
        worker configuration wins.
        """
        algorithm = FD_ALGORITHMS.resolve(self.fd_algorithm, FullDisjunctionAlgorithm)
        if isinstance(self.fd_algorithm, str):
            configure = getattr(algorithm, "configure_executor", None)
            if configure is not None:
                configure(self.executor_config())
        return algorithm

    def executor_config(self) -> ExecutorConfig:
        """The parallel-execution settings as an :class:`ExecutorConfig`."""
        return ExecutorConfig(backend=self.parallel_backend, max_workers=self.max_workers)

    def build_store(self):
        """The configured :class:`~repro.storage.store.ArtifactStore`, or ``None``.

        ``None`` when persistence is disabled — no directory configured, or
        ``store_mode="off"``.  A ``"read"``-mode store over a directory that
        does not exist yet is simply empty (nothing is created on disk).
        """
        if self.store_dir is None or self.store_mode == "off":
            return None
        from repro.storage.store import ArtifactStore

        return ArtifactStore(self.store_dir, self.store_mode)

    # -- derived configurations ---------------------------------------------------
    def replace(self, **overrides: Any) -> "FuzzyFDConfig":
        """A copy of this configuration with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)

    # -- serialisation ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the configuration.

        Instance-valued knobs are serialised by their registry ``name``
        attribute, so a config built from instances still produces a loadable
        dict (the instance's constructor arguments are not preserved).
        """
        # Not dataclasses.asdict(): that deep-copies the field values, which
        # for an instance-valued embedder would clone (or fail to pickle) the
        # whole model and cache only to be thrown away.
        data = {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}
        for knob in ("embedder", "assignment_solver", "fd_algorithm"):
            if not isinstance(data[knob], str):
                data[knob] = data[knob].name
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzyFDConfig":
        """Build (and validate) a configuration from :meth:`to_dict` output."""
        field_names = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise ValueError(
                f"unknown configuration keys {unknown}; valid keys: {sorted(field_names)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "FuzzyFDConfig":
        """Load a configuration from a JSON file path or a JSON string.

        A ``Path``, or a string that does not start with ``{``, is treated as
        a file path (a missing file raises ``FileNotFoundError`` rather than
        a confusing JSON parse error); a string starting with ``{`` is parsed
        as JSON text directly.
        """
        text = str(source)
        if isinstance(source, Path) or not text.lstrip().startswith("{"):
            text = Path(text).read_text(encoding="utf-8")
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"configuration JSON must be an object, got {type(data).__name__}")
        return cls.from_dict(data)

    def to_json(self) -> str:
        """The configuration as a JSON string (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -- presets ------------------------------------------------------------------
    @classmethod
    def preset(cls, name: str) -> "FuzzyFDConfig":
        """Build one of the named presets (see :data:`PRESETS`).

        >>> FuzzyFDConfig.preset("paper").threshold
        0.7
        """
        return cls.from_dict(dict(PRESETS.get(name)))


#: Named operating points.  ``"paper"`` is the paper's exact configuration;
#: ``"fast"`` trades effectiveness for speed (cheap surface embedder, greedy
#: assignment); ``"scale"`` keeps the paper's models but engages blocking
#: (with the semantic ANN channel on ``"auto"``), the partitioned FD
#: substrate and the parallel execution layer (4 thread workers) for wide
#: data-lake inputs; it also opts into ``store_mode="readwrite"`` so that a
#: caller who supplies ``store_dir`` gets persistent, warm-startable state.
PRESETS: Registry[Dict[str, Any]] = Registry(
    "config preset",
    {
        "paper": {},
        "fast": {
            "embedder": "fasttext",
            "assignment_solver": "greedy",
            "blocking": "auto",
        },
        "scale": {
            "blocking": "auto",
            "semantic_blocking": "auto",
            "fd_algorithm": "partitioned",
            "max_workers": 4,
            "parallel_backend": "thread",
            # Persistence engages once the caller supplies store_dir; the
            # preset only declares the intent to both attach and publish.
            "store_mode": "readwrite",
            # Serving defaults sized for a data-lake deployment: deeper
            # admission queue and one executing request per worker.
            "service_max_pending": 64,
            "service_max_concurrency": 4,
            # A data-lake deployment prefers degraded answers over errors
            # while the embedding backend is down.
            "degraded_mode": "surface",
        },
    },
)


def available_presets() -> List[str]:
    """Names of the registered configuration presets."""
    return PRESETS.names()
