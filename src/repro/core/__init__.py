"""Fuzzy Full Disjunction — the paper's primary contribution.

The pipeline: align columns, run the *Match Values* component over every set
of aligned columns (embed cell values, bipartite-match value sets column pair
by column pair, fold matches into a combined column and pick representative
values), rewrite every cell with its representative, then apply the ordinary
equi-join Full Disjunction.

Public entry points, from highest to lowest level:

* :func:`~repro.core.pipeline.integrate` — one-call convenience (fuzzy or
  regular integration of a list of tables).
* :class:`~repro.core.engine.IntegrationEngine` — the long-lived engine for
  repeated requests: resolves the embedder, solver and FD algorithm once,
  keeps the embedding cache warm across calls, exposes the pipeline as
  inspectable stages (``align`` → ``match`` → ``integrate``), and accepts
  per-request overrides (``engine.integrate(tables, threshold=0.8)``).
* :class:`~repro.core.fuzzy_fd.FuzzyFullDisjunction` /
  :class:`~repro.core.fuzzy_fd.RegularFullDisjunction` — the one-shot
  operator classes (thin wrappers over a private engine).
* :class:`~repro.core.value_matching.ValueMatcher` — the Match Values
  component, usable standalone.
* :class:`~repro.core.config.FuzzyFDConfig` — configuration: every knob
  validated eagerly against its plugin registry, serialisable
  (``to_dict``/``from_dict``/``from_json``), with named presets
  (``FuzzyFDConfig.preset("paper" | "fast" | "scale")``).

Every extension point (embedding models, FD algorithms, assignment solvers,
representative policies, alignment strategies) is a
:class:`repro.registry.Registry`; see the respective modules for the
``@register`` decorators.
"""

from repro.core.config import PRESETS, FuzzyFDConfig, available_presets
from repro.core.representatives import (
    REPRESENTATIVE_POLICIES,
    available_policies,
    select_representative,
)
from repro.core.value_matching import ColumnValues, ValueMatcher, ValueMatchingResult
from repro.core.engine import (
    AlignmentStage,
    FuzzyIntegrationResult,
    IntegrationEngine,
    MatchStage,
)
from repro.core.fuzzy_fd import FuzzyFullDisjunction, RegularFullDisjunction
from repro.core.pipeline import integrate

__all__ = [
    "FuzzyFDConfig",
    "PRESETS",
    "available_presets",
    "ValueMatcher",
    "ValueMatchingResult",
    "ColumnValues",
    "IntegrationEngine",
    "AlignmentStage",
    "MatchStage",
    "FuzzyFullDisjunction",
    "RegularFullDisjunction",
    "FuzzyIntegrationResult",
    "integrate",
    "select_representative",
    "available_policies",
    "REPRESENTATIVE_POLICIES",
]
