"""Fuzzy Full Disjunction — the paper's primary contribution.

The pipeline: align columns, run the *Match Values* component over every set
of aligned columns (embed cell values, bipartite-match value sets column pair
by column pair, fold matches into a combined column and pick representative
values), rewrite every cell with its representative, then apply the ordinary
equi-join Full Disjunction.

Public entry points:

* :class:`~repro.core.fuzzy_fd.FuzzyFullDisjunction` — the operator itself.
* :class:`~repro.core.value_matching.ValueMatcher` — the Match Values component.
* :func:`~repro.core.pipeline.integrate` — one-call convenience (fuzzy or
  regular integration of a list of tables).
* :class:`~repro.core.config.FuzzyFDConfig` — configuration (embedding model,
  threshold θ, assignment solver, FD algorithm, representative policy).
"""

from repro.core.config import FuzzyFDConfig
from repro.core.representatives import (
    available_policies,
    select_representative,
)
from repro.core.value_matching import ColumnValues, ValueMatcher, ValueMatchingResult
from repro.core.fuzzy_fd import FuzzyFullDisjunction, FuzzyIntegrationResult, RegularFullDisjunction
from repro.core.pipeline import integrate

__all__ = [
    "FuzzyFDConfig",
    "ValueMatcher",
    "ValueMatchingResult",
    "ColumnValues",
    "FuzzyFullDisjunction",
    "RegularFullDisjunction",
    "FuzzyIntegrationResult",
    "integrate",
    "select_representative",
    "available_policies",
]
