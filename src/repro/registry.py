"""One generic plugin registry behind every extension point.

The pipeline has five knob families that are resolved by name — embedding
models, Full Disjunction algorithms, assignment solvers, representative
policies, and alignment strategies.  Each family is a module-level
:class:`Registry` instance; registering a plugin is one decorator::

    from repro.embeddings.registry import EMBEDDERS

    @EMBEDDERS.register("my-model")
    class MyEmbedder(ValueEmbedder):
        ...

Every lookup failure raises :class:`UnknownNameError` (a ``ValueError``)
whose message lists the registered names, so a typo anywhere — a config
field, a CLI flag, a benchmark sweep — fails fast with the valid options
in hand instead of exploding deep inside the pipeline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class UnknownNameError(ValueError, KeyError):
    """An unregistered name was looked up; the message lists the options.

    Subclasses both ``ValueError`` (what the hand-rolled factories used to
    raise, so existing ``except``/``pytest.raises`` clauses keep working)
    and ``KeyError`` (what a mapping lookup would raise).
    """

    def __init__(self, kind: str, name: object, available: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = available
        super().__init__(f"unknown {kind} {name!r}; available: {available}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class Registry(Generic[T]):
    """A named collection of factories (classes or callables) of one kind.

    Parameters
    ----------
    kind:
        Human-readable name of what is registered (``"embedding model"``);
        used in error messages.
    entries:
        Optional initial ``name -> factory`` mapping.
    """

    def __init__(self, kind: str, entries: Optional[Dict[str, T]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = dict(entries or {})

    # -- registration --------------------------------------------------------------
    def register(self, name: str, obj: Optional[T] = None) -> Any:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        >>> registry = Registry("greeting")
        >>> @registry.register("hello")
        ... def hello():
        ...     return "hi"
        >>> registry.names()
        ['hello']

        Re-registering a name replaces the previous entry (tests and
        downstream plugins may shadow a built-in deliberately).
        """
        if obj is not None:
            self._entries[name] = obj
            return obj

        def decorator(target: T) -> T:
            self._entries[name] = target
            return target

        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (no-op if absent)."""
        self._entries.pop(name, None)

    # -- lookup --------------------------------------------------------------------
    def get(self, name: str) -> T:
        """Return the raw registered object, raising :class:`UnknownNameError`."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def create(self, name: str, **kwargs) -> Any:
        """Instantiate the factory registered under ``name``."""
        factory = self.get(name)
        return factory(**kwargs)  # type: ignore[operator]

    def resolve(self, spec: Any, instance_of: type, **kwargs) -> Any:
        """Pass ``spec`` through if already an instance, else create by name."""
        if isinstance(spec, instance_of):
            return spec
        return self.create(spec, **kwargs)

    def validate(self, name: Any) -> Any:
        """Raise :class:`UnknownNameError` unless ``name`` is registered."""
        if name not in self._entries:
            raise UnknownNameError(self.kind, name, self.names())
        return name

    def names(self) -> List[str]:
        """Sorted names of every registered entry."""
        return sorted(self._entries)

    # -- container protocol ---------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, entries={self.names()})"
