"""Bipartite value matching between two aligned columns.

Given the (distinct) value sets of two aligned columns, a distance function
and the matching threshold θ of Definition 2, the matcher computes the full
distance matrix, solves the optimal assignment, and keeps only the matched
pairs whose distance is strictly below θ — exactly the procedure of the
paper's Example 3 (the India/US pair produced by the assignment is discarded
because its distance exceeds the threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.matching.assignment import AssignmentSolver, ScipyAssignment
from repro.matching.distance import DistanceFunction


@dataclass(frozen=True)
class ValueMatch:
    """One accepted fuzzy match between a value of the left and right column."""

    left: object
    right: object
    distance: float

    def as_tuple(self) -> tuple:
        """Return ``(left, right)`` for quick set comparisons in tests."""
        return (self.left, self.right)


def split_exact_matches(
    left_values: Sequence[object], right_values: Sequence[object]
) -> Tuple[List[ValueMatch], List[object], List[object]]:
    """Pair identical values positionally before any fuzzy matching.

    Returns ``(exact_matches, left_remaining, right_remaining)``.  Each exact
    match consumes one left *position* (not every copy of the value), so
    surviving duplicates of a matched value still reach the fuzzy stage.
    Shared by the exhaustive and the blocked matcher.
    """
    left_positions: Dict[object, List[int]] = {}
    for position, value in enumerate(left_values):
        left_positions.setdefault(value, []).append(position)
    matches: List[ValueMatch] = []
    consumed: Set[int] = set()
    right_remaining: List[object] = []
    for value in right_values:
        bucket = left_positions.get(value)
        if bucket:
            consumed.add(bucket.pop(0))
            matches.append(ValueMatch(left=value, right=value, distance=0.0))
        else:
            right_remaining.append(value)
    left_remaining = [
        value for position, value in enumerate(left_values) if position not in consumed
    ]
    return matches, left_remaining, right_remaining


class BipartiteValueMatcher:
    """Optimal bipartite matching between two value lists under a threshold.

    Parameters
    ----------
    distance:
        A :class:`~repro.matching.distance.DistanceFunction` (typically the
        cosine distance over a cell-value embedder).
    threshold:
        The matching threshold θ; pairs at distance ≥ θ are discarded.  The
        paper reports θ = 0.7 as the best-performing setting.
    solver:
        Assignment solver; defaults to scipy's linear sum assignment as in the
        paper.
    """

    def __init__(
        self,
        distance: DistanceFunction,
        threshold: float = 0.7,
        solver: Optional[AssignmentSolver] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.distance = distance
        self.threshold = threshold
        self.solver = solver if solver is not None else ScipyAssignment()

    def match(
        self,
        left_values: Sequence[object],
        right_values: Sequence[object],
    ) -> List[ValueMatch]:
        """Match two value lists; returns accepted matches sorted by distance.

        Duplicate values inside a column are expected to have been collapsed
        by the caller (the clean-clean assumption of the paper); the matcher
        nevertheless tolerates duplicates by matching positions.
        """
        if not left_values or not right_values:
            return []
        cost = self.distance.matrix(left_values, right_values)
        pairs = self.solver.solve(cost)
        matches: List[ValueMatch] = []
        for row, col in pairs:
            pair_distance = float(cost[row, col])
            if pair_distance < self.threshold:
                matches.append(
                    ValueMatch(left=left_values[row], right=right_values[col], distance=pair_distance)
                )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_exact_first(
        self,
        left_values: Sequence[object],
        right_values: Sequence[object],
    ) -> List[ValueMatch]:
        """Match identical values first, then fuzzily match the remainder.

        Exact duplicates across the two columns are always correct matches and
        fixing them first both speeds up the assignment (smaller matrix) and
        prevents the optimal assignment from "stealing" an exact partner for a
        marginally cheaper fuzzy pair.  This is the variant the Fuzzy FD
        pipeline uses by default.
        """
        matches, left_remaining, right_remaining = split_exact_matches(
            left_values, right_values
        )
        matches.extend(self.match(left_remaining, right_remaining))
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches
