"""Optimal bipartite assignment between two value sets.

The paper performs bipartite matching with scipy's linear sum assignment
(Crouse's shortest-augmenting-path algorithm).  :class:`ScipyAssignment` wraps
exactly that; :class:`HungarianAssignment` is an independent from-scratch
Hungarian (Kuhn–Munkres) implementation used to cross-validate scipy and to
keep the library self-contained; :class:`GreedyAssignment` is the obvious
cheaper heuristic used as an ablation baseline.

All solvers accept rectangular cost matrices and return a list of
``(row, column)`` index pairs: every row and every column is used at most
once, and the number of pairs equals ``min(rows, columns)``.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

from repro.registry import Registry


Assignment = List[Tuple[int, int]]


class AssignmentSolver(abc.ABC):
    """Common interface of the assignment solvers."""

    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, cost_matrix: np.ndarray) -> Assignment:
        """Return an assignment (list of (row, col)) minimising total cost."""

    @staticmethod
    def _validate(cost_matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(cost_matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("cost matrix must be 2-D")
        if not np.isfinite(matrix).all():
            raise ValueError("cost matrix must be finite")
        return matrix

    def total_cost(self, cost_matrix: np.ndarray) -> float:
        """Total cost of the assignment this solver finds on ``cost_matrix``."""
        matrix = self._validate(cost_matrix)
        return float(sum(matrix[row, col] for row, col in self.solve(matrix)))


class ScipyAssignment(AssignmentSolver):
    """scipy.optimize.linear_sum_assignment (the paper's solver)."""

    name = "scipy"

    def solve(self, cost_matrix: np.ndarray) -> Assignment:
        from scipy.optimize import linear_sum_assignment

        matrix = self._validate(cost_matrix)
        if matrix.size == 0:
            return []
        rows, cols = linear_sum_assignment(matrix)
        return list(zip(rows.tolist(), cols.tolist()))


class HungarianAssignment(AssignmentSolver):
    """From-scratch Kuhn–Munkres algorithm (O(n³), potentials + augmenting paths).

    Implemented over the transposed matrix when there are more rows than
    columns so the inner loop always iterates over the larger side.
    """

    name = "hungarian"

    def solve(self, cost_matrix: np.ndarray) -> Assignment:
        matrix = self._validate(cost_matrix)
        if matrix.size == 0:
            return []
        transposed = matrix.shape[0] > matrix.shape[1]
        if transposed:
            matrix = matrix.T
        pairs = self._solve_rectangular(matrix)
        if transposed:
            pairs = [(col, row) for row, col in pairs]
        return sorted(pairs)

    @staticmethod
    def _solve_rectangular(matrix: np.ndarray) -> Assignment:
        """Hungarian algorithm for matrices with rows <= columns.

        Classic potentials formulation (JV-style): ``u`` over rows, ``v`` over
        columns, ``way`` tracks the augmenting path.  Indices are 1-based
        internally, matching the textbook presentation.
        """
        n_rows, n_cols = matrix.shape
        INF = float("inf")
        u = [0.0] * (n_rows + 1)
        v = [0.0] * (n_cols + 1)
        match_of_col = [0] * (n_cols + 1)  # row matched to each column (0 = free)
        way = [0] * (n_cols + 1)

        for row in range(1, n_rows + 1):
            match_of_col[0] = row
            free_col = 0
            min_value = [INF] * (n_cols + 1)
            used = [False] * (n_cols + 1)
            while True:
                used[free_col] = True
                current_row = match_of_col[free_col]
                delta = INF
                next_col = 0
                for col in range(1, n_cols + 1):
                    if used[col]:
                        continue
                    reduced = matrix[current_row - 1, col - 1] - u[current_row] - v[col]
                    if reduced < min_value[col]:
                        min_value[col] = reduced
                        way[col] = free_col
                    if min_value[col] < delta:
                        delta = min_value[col]
                        next_col = col
                for col in range(n_cols + 1):
                    if used[col]:
                        u[match_of_col[col]] += delta
                        v[col] -= delta
                    else:
                        min_value[col] -= delta
                free_col = next_col
                if match_of_col[free_col] == 0:
                    break
            while free_col != 0:
                previous = way[free_col]
                match_of_col[free_col] = match_of_col[previous]
                free_col = previous

        pairs: Assignment = []
        for col in range(1, n_cols + 1):
            if match_of_col[col] != 0:
                pairs.append((match_of_col[col] - 1, col - 1))
        return pairs


class GreedyAssignment(AssignmentSolver):
    """Greedy matching: repeatedly take the globally cheapest unused pair.

    Not optimal, but a common practical shortcut; the ablation benchmark
    quantifies the effectiveness it gives up relative to optimal assignment.
    """

    name = "greedy"

    def solve(self, cost_matrix: np.ndarray) -> Assignment:
        matrix = self._validate(cost_matrix)
        if matrix.size == 0:
            return []
        n_rows, n_cols = matrix.shape
        order = np.argsort(matrix, axis=None, kind="stable")
        used_rows = set()
        used_cols = set()
        pairs: Assignment = []
        limit = min(n_rows, n_cols)
        for flat_index in order:
            row, col = divmod(int(flat_index), n_cols)
            if row in used_rows or col in used_cols:
                continue
            used_rows.add(row)
            used_cols.add(col)
            pairs.append((row, col))
            if len(pairs) == limit:
                break
        return sorted(pairs)


#: All assignment solvers, keyed by registry name.
ASSIGNMENT_SOLVERS = Registry(
    "assignment solver",
    {
        "scipy": ScipyAssignment,
        "hungarian": HungarianAssignment,
        "greedy": GreedyAssignment,
    },
)


def available_solvers() -> List[str]:
    """Names of the registered assignment solvers."""
    return ASSIGNMENT_SOLVERS.names()


def get_assignment_solver(name: str) -> AssignmentSolver:
    """Instantiate an assignment solver by name."""
    return ASSIGNMENT_SOLVERS.create(name)
