"""Distance functions between cell values.

The paper uses the cosine distance between cell-value embeddings
(:class:`EmbeddingDistance`).  Two lexical distances are provided as ablation
baselines: normalised Levenshtein and token-Jaccard.  All distances return
values in ``[0, 1]`` where 0 means "same value" — the matching threshold θ of
Definition 2 is interpreted against this scale.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.utils.text import jaccard_similarity, levenshtein, normalize_value, tokenize


class DistanceFunction(abc.ABC):
    """Distance in [0, 1] between two cell values, plus a batched matrix form."""

    name: str = "abstract"

    @abc.abstractmethod
    def distance(self, left: object, right: object) -> float:
        """Distance between two values."""

    def matrix(self, left_values: Sequence[object], right_values: Sequence[object]) -> np.ndarray:
        """Pairwise distance matrix of shape ``(len(left), len(right))``."""
        result = np.empty((len(left_values), len(right_values)), dtype=np.float64)
        for i, left in enumerate(left_values):
            for j, right in enumerate(right_values):
                result[i, j] = self.distance(left, right)
        return result


def cosine_distance_matrix(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Cosine distance matrix between two row-wise embedding matrices.

    Inputs are assumed row-normalised (the :class:`ValueEmbedder` contract),
    so the distance is simply ``1 - left @ right.T`` clipped to ``[0, 1]``.
    """
    if left.ndim != 2 or right.ndim != 2:
        raise ValueError("cosine_distance_matrix expects 2-D matrices")
    if left.shape[1] != right.shape[1]:
        raise ValueError(
            f"embedding dimensions differ: {left.shape[1]} vs {right.shape[1]}"
        )
    similarities = left @ right.T
    return np.clip(1.0 - similarities, 0.0, 1.0)


class EmbeddingDistance(DistanceFunction):
    """Cosine distance between value embeddings (the paper's distance)."""

    def __init__(self, embedder: ValueEmbedder) -> None:
        self.embedder = embedder
        self.name = f"cosine[{embedder.name}]"

    def distance(self, left: object, right: object) -> float:
        return float(np.clip(self.embedder.cosine_distance(left, right), 0.0, 1.0))

    def matrix(self, left_values: Sequence[object], right_values: Sequence[object]) -> np.ndarray:
        left_matrix = self.embedder.embed_many(list(left_values))
        right_matrix = self.embedder.embed_many(list(right_values))
        if left_matrix.size == 0 or right_matrix.size == 0:
            return np.zeros((len(left_values), len(right_values)), dtype=np.float64)
        return cosine_distance_matrix(left_matrix, right_matrix)


class LevenshteinDistance(DistanceFunction):
    """Normalised edit distance (ablation baseline; no semantics)."""

    name = "levenshtein"

    def distance(self, left: object, right: object) -> float:
        a = normalize_value(left)
        b = normalize_value(right)
        longest = max(len(a), len(b))
        if longest == 0:
            return 0.0
        return levenshtein(a, b) / longest


class JaccardTokenDistance(DistanceFunction):
    """1 - Jaccard similarity of token sets (ablation baseline)."""

    name = "jaccard"

    def distance(self, left: object, right: object) -> float:
        return 1.0 - jaccard_similarity(tokenize(left), tokenize(right))


def available_distances(embedder: ValueEmbedder | None = None) -> List[DistanceFunction]:
    """Distance functions used by the matching ablation benchmark."""
    distances: List[DistanceFunction] = [LevenshteinDistance(), JaccardTokenDistance()]
    if embedder is not None:
        distances.insert(0, EmbeddingDistance(embedder))
    return distances
