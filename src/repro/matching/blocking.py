"""Component-wise blocked fuzzy value matching at scale.

The Match Values component computes a full ``|A| × |B|`` cosine-distance
matrix per column pair.  For the paper's benchmark columns (~150 values) that
is trivial, but for wide data-lake columns with tens of thousands of distinct
values the quadratic matrix dominates.  This module replaces it with a
*sparse, component-wise* engine:

1. **Block.**  :class:`ValueBlocker` assigns cheap surface keys (character
   n-grams sampled evenly across the value, token prefixes, optional lexicon
   concepts) to every value; only value pairs sharing at least one key become
   candidates.
2. **Decompose.**  The candidate-pair graph is split into connected components
   with an integer union-find.  Values in different
   components can never be matched to each other, so the global assignment
   decomposes exactly into one independent assignment per component.
3. **Score in batch.**  Every participating value is embedded once via
   ``embedder.embed_many``; each component's cost matrix is then a single
   vectorised :func:`~repro.matching.distance.cosine_distance_matrix` call
   over the component's embedding rows — no per-pair Python round-trips.
4. **Solve small.**  One dense assignment is solved per component.  The
   largest matrix ever allocated is the largest component, not the full
   ``|A| × |B|`` cross product; :class:`BlockingStatistics` reports both.

Two executions of step 4 are layered on top of the decomposition:

* **Vectorised singleton batching.**  Components with a single value on
  either side (1×1, 1×N, N×1 — the overwhelming majority in sparse candidate
  graphs) have a closed-form optimal assignment: the cheapest candidate cell.
  All of them are batched into one einsum + grouped-argmin pass that never
  touches the assignment solver — a hot-path win even single-threaded.
* **Parallel component solving.**  The remaining general components are
  independent, so they are scored and solved through
  :func:`repro.utils.executor.run_partitioned` (serial, thread or process
  backend, weight-balanced batches).  Each work item carries only the
  component's *row indices*; the embedding matrices travel through the
  executor's ``shared=`` hand-off, so process workers attach them as
  read-only memmaps instead of receiving pickled embedding rows.  The merge
  is positional, so the result is byte-identical to the serial loop for
  every backend and worker count.

Non-candidate cells inside a component keep a prohibitive cost so the
semantics stay "each value matched at most once, never above the threshold θ,
only ever to a blocked candidate".  Blocking trades a small amount of recall
(pairs with no shared surface key and no shared block are never scored — e.g.
full-form abbreviations with disjoint surfaces unless the semantic key is
enabled) for a large reduction in scored pairs; the accompanying ablation
benchmarks quantify the trade-off, the component-wise speedup and the
parallel scaling.

Step 1 optionally runs a second, *semantic* candidate channel next to the
surface keys: a :class:`~repro.matching.ann.SemanticBlocker` (LSH over the
value embeddings) proposes embedding-nearest pairs, which are **unioned**
with the surface pairs before the component decomposition of step 2.  The
union restores candidates whose surfaces share nothing at all;
:class:`BlockingStatistics` reports how many pairs the channel contributed
(``ann_pairs_added``) and how many it re-proposed (``ann_pairs_duplicate``).

Determinism guarantees
----------------------
The engine's result is a pure function of ``(left_values, right_values,
embedder, threshold, blocker configuration)`` — the executor configuration
(backend, worker count, batch size) and the singleton-batching switch never
change which matches are returned, only how fast:

* Candidate generation visits blocks in sorted key order and the semantic
  channel's LSH uses a fixed seed with stable tie-breaking, so the candidate
  set is identical run to run.
* Components are solved independently and merged *positionally*
  (:func:`repro.utils.executor.run_partitioned` returns results in input
  order whatever the backend), so serial == thread == process, byte for
  byte, for every worker count.
* The singleton fast path picks each star component's winner with a stable
  grouped argmin — the same cell the per-component solver would pick.

``tests/matching/test_parallel_matching.py`` asserts these guarantees
across backends and worker counts.
"""

from __future__ import annotations

import threading
from functools import partial
from dataclasses import dataclass, replace as dataclass_replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.matching.ann import SemanticBlocker
from repro.matching.assignment import AssignmentSolver, ScipyAssignment
from repro.matching.bipartite import ValueMatch, split_exact_matches
from repro.matching.distance import EmbeddingDistance, cosine_distance_matrix
from repro.utils.executor import ExecutorConfig, contiguous_ranges, run_partitioned
from repro.utils.text import character_ngrams, normalize_value, tokenize

#: Cost written into cells the assignment must never select (non-candidate
#: cells inside a component, and every cell of the legacy dense path that is
#: not a blocked candidate).  Any value comfortably above the distance range
#: [0, 1] works; matches at this cost are always rejected by the threshold.
PROHIBITIVE_COST = 10.0

#: Default frequent-key cap: a blocking key whose smaller posting list
#: exceeds this is skipped by candidate generation (``None`` disables).
DEFAULT_FREQUENT_KEY_CAP: Optional[int] = 1000

#: Distinct normalised texts a :class:`ValueBlocker` memoises key tuples for.
#: Overflow clears the whole memo (no LRU bookkeeping on the hot path): the
#: memo exists for duplicate-heavy columns, whose distinct-text count is far
#: below this; a workload that actually overflows it was getting no reuse
#: worth preserving.
KEY_MEMO_LIMIT = 200_000

#: Distinct *uncached* texts below which surface-key generation always runs
#: in-process: n-gram sampling per value is microseconds, so a fan-out has to
#: amortise pool dispatch over thousands of values to win.
PARALLEL_KEYS_MIN_VALUES = 2048

#: Lazily built lexicon shared by every ValueBlocker that does not bring its
#: own.  ``default_lexicon()`` rebuilds the whole knowledge base per call;
#: the engine constructs one matcher (and blocker) per worker thread and
#: override combination, so sharing the read-only lexicon keeps that cheap.
_SHARED_DEFAULT_LEXICON: Optional[SemanticLexicon] = None
_SHARED_DEFAULT_LEXICON_LOCK = threading.Lock()


def _shared_default_lexicon() -> SemanticLexicon:
    global _SHARED_DEFAULT_LEXICON
    if _SHARED_DEFAULT_LEXICON is None:
        # Locked: pool threads constructing their first matcher concurrently
        # must not each rebuild the knowledge base this cache exists to share.
        with _SHARED_DEFAULT_LEXICON_LOCK:
            if _SHARED_DEFAULT_LEXICON is None:
                _SHARED_DEFAULT_LEXICON = default_lexicon()
    return _SHARED_DEFAULT_LEXICON


def _sample_ngrams(grams: List[str], max_ngrams: int) -> List[str]:
    """At most ``max_ngrams`` grams spread evenly across the whole value.

    Taking the *first* ``max_ngrams`` grams would make long values block
    solely on their prefix; even sampling always includes the first and last
    gram, so pairs sharing any region (suffixes included) remain candidates.
    Module-level (not a method) so process workers compute the exact same
    sample from pickled parameters alone.
    """
    if max_ngrams <= 0 or len(grams) <= max_ngrams:
        return grams
    if max_ngrams == 1:
        return [grams[0]]
    # Same float round() selection as always (changing it would silently
    # change blocking keys); positions are non-decreasing, so deduping
    # against the previous position suffices.
    step = (len(grams) - 1) / (max_ngrams - 1)
    sampled: List[str] = []
    previous = -1
    for index in range(max_ngrams):
        position = round(index * step)
        if position != previous:
            sampled.append(grams[position])
            previous = position
    return sampled


def _surface_keys_for_text(
    normalised: str,
    *,
    ngram_size: int,
    max_ngrams: int,
    prefix_length: int,
    lexicon: Optional[SemanticLexicon],
) -> Tuple[str, ...]:
    """Blocking keys of one already-normalised text, as a sorted tuple.

    A pure function of its arguments — the single source of truth for what
    :meth:`ValueBlocker.keys` computes, shared verbatim by the in-process
    memo and the process-pool fan-out so a key set never depends on *where*
    it was computed.  The tuple is sorted (not a set) so its ordering is
    identical across worker interpreters regardless of hash randomisation.
    """
    keys: Set[str] = set()
    for token in tokenize(normalised, normalized=True):
        keys.add(f"p:{token[:prefix_length]}")
    grams = character_ngrams(normalised, n=ngram_size, normalized=True)
    for gram in _sample_ngrams(grams, max_ngrams):
        keys.add(f"g:{gram}")
    if lexicon is not None:
        concept = lexicon.lookup(normalised)
        if concept is not None:
            keys.add(f"c:{concept}")
    if not keys and normalised:
        keys.add(f"p:{normalised[:prefix_length]}")
    return tuple(sorted(keys))


def _keys_for_text_batch(
    bounds: Tuple[int, int],
    *,
    texts: np.ndarray,
    ngram_size: int,
    max_ngrams: int,
    prefix_length: int,
    lexicon_spec: object,
) -> List[Tuple[str, ...]]:
    """Executor work unit: key tuples for one contiguous span of texts.

    ``texts`` is the deduplicated normalised-text array travelling through
    the executor's ``shared=`` hand-off (a memmap in process workers), so the
    pickled item is just the ``(start, stop)`` bounds.  ``lexicon_spec`` is
    ``None`` (no lexicon), the string ``"default"`` (rebuild the process-wide
    shared default lexicon in the worker instead of pickling it per batch),
    or a pickled custom :class:`~repro.embeddings.lexicon.SemanticLexicon`.
    """
    lexicon = _shared_default_lexicon() if lexicon_spec == "default" else lexicon_spec
    start, stop = bounds
    return [
        _surface_keys_for_text(
            str(text),
            ngram_size=ngram_size,
            max_ngrams=max_ngrams,
            prefix_length=prefix_length,
            lexicon=lexicon,
        )
        for text in texts[start:stop]
    ]


@dataclass(frozen=True)
class BlockingStatistics:
    """How much work blocking saved for one column pair.

    ``candidate_pairs`` counts the blocked pairs; ``pairs_scored`` counts the
    distance-matrix cells actually computed (the sum of component matrix
    sizes, which can exceed ``candidate_pairs`` because each component is
    scored as one dense batch).  ``largest_component`` is the cell count of
    the biggest matrix allocated — the engine's peak memory driver.
    """

    left_values: int
    right_values: int
    candidate_pairs: int
    components: int = 0
    largest_component: int = 0
    pairs_scored: int = 0
    #: Cost-matrix cell count of every component, in component order.  The
    #: distribution (see :meth:`component_size_histogram`) drives cutoff and
    #: batching tuning: singleton-dominated graphs favour the vectorised fast
    #: path, a fat tail favours bigger executor batches.
    component_cells: Tuple[int, ...] = ()
    #: Blocking keys dropped by the blocker's ``frequent_key_cap`` — non-zero
    #: means candidate generation was truncated (a possible recall loss worth
    #: surfacing when debugging missing matches).
    skipped_keys: int = 0
    #: Candidate pairs the semantic ANN channel contributed that no surface
    #: key proposed — the channel's recall gain, pre-threshold.  Zero when
    #: semantic blocking is off (or ``"auto"`` found full surface coverage).
    ann_pairs_added: int = 0
    #: Semantic-channel pairs the surface keys had already proposed.  A high
    #: duplicate share means the surfaces carry the semantics and the ANN
    #: channel is paying for little.
    ann_pairs_duplicate: int = 0
    #: Retrieval strategy the semantic channel used: ``"brute"``, ``"lsh"``
    #: or ``"ivf"`` (``""`` when the channel is off or did not engage).
    ann_index_kind: str = ""
    #: Largest LSH bucket share observed while routing the semantic channel
    #: (0.0 off the LSH route or below the skew measurement size).
    ann_bucket_skew: float = 0.0
    #: LSH→IVF fallbacks the semantic channel took for this column pair
    #: because hyperplane buckets skewed past the threshold — non-zero means
    #: ``ann_index_kind == "ivf"`` was chosen *for* the data, not by config.
    ann_skew_fallbacks: int = 0
    #: Deduplicated ``(query, candidate)`` similarity evaluations of the
    #: semantic channel's probe phase — the probe-cost counter (compare
    #: against ``full_matrix_pairs`` to see what the index saved).
    ann_probe_candidates: int = 0
    #: True when this column pair was matched in degraded mode (embedder
    #: unavailable: exact + surface-blocking equality only, no embeddings,
    #: no ANN) — the recall of these matches is below the healthy path.
    degraded: bool = False

    @property
    def full_matrix_pairs(self) -> int:
        """Number of pairs the unblocked matcher would have scored."""
        return self.left_values * self.right_values

    @property
    def pairs_avoided(self) -> int:
        """Distance computations skipped relative to the full matrix."""
        return max(0, self.full_matrix_pairs - self.pairs_scored)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of pairs avoided (0 when nothing was saved)."""
        total = self.full_matrix_pairs
        if total == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / total

    def component_size_histogram(self) -> Dict[str, int]:
        """Component counts bucketed by cost-matrix cells (log-ish buckets).

        Keys are ordered from smallest to largest bucket; every bucket is
        present even when empty so reports line up across column pairs.
        """
        counts = {label: 0 for label, _ in COMPONENT_SIZE_BUCKETS}
        for cells in self.component_cells:
            for label, upper in COMPONENT_SIZE_BUCKETS:
                if upper is None or cells <= upper:
                    counts[label] += 1
                    break
        return counts


#: Histogram buckets of :meth:`BlockingStatistics.component_size_histogram`:
#: ``(label, inclusive upper bound on cells)``, ``None`` meaning unbounded.
COMPONENT_SIZE_BUCKETS: Tuple[Tuple[str, Optional[int]], ...] = (
    ("1", 1),
    ("2-4", 4),
    ("5-16", 16),
    ("17-64", 64),
    ("65-256", 256),
    ("257-1024", 1024),
    (">1024", None),
)


class ValueBlocker:
    """Assigns surface-key blocks to values.

    Keys: lower-cased token prefixes (first 4 characters of each token),
    character 3-grams sampled evenly across the normalised value (capped at
    ``max_ngrams``, always covering both ends so suffix-sharing pairs block
    together), and — optionally — the lexicon concept of the value, which lets
    known abbreviation/synonym pairs share a block even though their surfaces
    are disjoint.

    ``frequent_key_cap`` bounds the *smaller* posting list of one key: a
    stop-word-like key shared by thousands of values on both sides would
    alone contribute a quadratic block of candidate pairs (and weld most of
    the graph into one giant component), so such keys are skipped entirely.
    One-sided blocks (many left values, few right ones) stay linear and are
    always kept.  Pairs also sharing a rarer key survive through that key;
    ``None`` disables the cap.

    Key computation is memoised per normalised text (duplicate-heavy columns
    recompute nothing) and — given a process-backend ``executor`` — fans the
    distinct uncached texts of a large column out over the worker pool
    (:data:`PARALLEL_KEYS_MIN_VALUES` gates the fan-out).  Both are pure
    performance knobs: every key set comes from the same
    :func:`_surface_keys_for_text`, merged positionally, so candidate pairs
    are identical however the keys were computed.  The memo assumes the key
    parameters (``ngram_size`` etc.) are fixed after construction.
    """

    def __init__(
        self,
        ngram_size: int = 3,
        max_ngrams: int = 6,
        prefix_length: int = 4,
        use_lexicon: bool = True,
        lexicon: Optional[SemanticLexicon] = None,
        frequent_key_cap: Optional[int] = DEFAULT_FREQUENT_KEY_CAP,
        executor: Optional[ExecutorConfig] = None,
    ) -> None:
        if frequent_key_cap is not None and frequent_key_cap < 1:
            raise ValueError(f"frequent_key_cap must be >= 1 or None, got {frequent_key_cap}")
        self.ngram_size = ngram_size
        self.max_ngrams = max_ngrams
        self.prefix_length = prefix_length
        self.use_lexicon = use_lexicon
        # Remembered *before* the default is materialised: a worker process
        # can rebuild the shared default lexicon locally, but a custom one
        # has to be pickled to it.
        self._lexicon_is_default = lexicon is None and use_lexicon
        self.lexicon = lexicon if lexicon is not None else (
            _shared_default_lexicon() if use_lexicon else None
        )
        self.frequent_key_cap = frequent_key_cap
        self.executor = executor if executor is not None else ExecutorConfig()
        #: Keys skipped by the frequent-key cap in the last candidate pass.
        self.last_skipped_keys = 0
        self._key_memo: Dict[str, Tuple[str, ...]] = {}

    def keys(self, value: object) -> Set[str]:
        """The blocking keys of one value."""
        return set(self._keys_for_normalised(normalize_value(value)))

    def _keys_for_normalised(self, normalised: str) -> Tuple[str, ...]:
        """Memoised key tuple of one normalised text."""
        memo = self._key_memo
        keys = memo.get(normalised)
        if keys is None:
            if len(memo) >= KEY_MEMO_LIMIT:
                memo.clear()
            keys = _surface_keys_for_text(
                normalised,
                ngram_size=self.ngram_size,
                max_ngrams=self.max_ngrams,
                prefix_length=self.prefix_length,
                lexicon=self.lexicon if self.use_lexicon else None,
            )
            memo[normalised] = keys
        return keys

    def _value_keys(self, values: Sequence[object]) -> List[Tuple[str, ...]]:
        """Key tuples for every value, positionally.

        Normalises once, pre-fills the memo for the distinct uncached texts
        (in parallel when the workload and executor warrant it), then reads
        every position's keys back from the memo — so the result is
        independent of whether (and where) the fan-out ran.
        """
        normalised = [normalize_value(value) for value in values]
        self._fill_key_memo(normalised)
        return [self._keys_for_normalised(text) for text in normalised]

    def _fill_key_memo(self, normalised_texts: Sequence[str]) -> None:
        """Compute the distinct uncached texts' keys, fanning out if worth it.

        Only the ``"process"`` backend fans out: key generation is pure
        Python (tokenise + n-gram sampling + dict lookups), so threads would
        serialise on the GIL.  The distinct texts ship once through the
        executor's ``shared=`` hand-off as a fixed-width unicode array; each
        dispatched item is a ``(start, stop)`` span into it, and the merge
        back into the memo is positional.
        """
        memo = self._key_memo
        seen: Set[str] = set()
        missing: List[str] = []
        for text in normalised_texts:
            if text not in memo and text not in seen:
                seen.add(text)
                missing.append(text)
        executor = self.executor
        if (
            len(missing) < PARALLEL_KEYS_MIN_VALUES
            or not executor.is_parallel
            or executor.backend != "process"
        ):
            return
        spans = contiguous_ranges(len(missing), executor)
        if len(spans) <= 1:
            return
        lexicon_spec: object = None
        if self.use_lexicon and self.lexicon is not None:
            lexicon_spec = "default" if self._lexicon_is_default else self.lexicon
        # Each span already is a balanced batch, so dispatch them one per
        # task (batch_size=1) however few there are (min_parallel_items=2).
        dispatch = dataclass_replace(executor, batch_size=1, min_parallel_items=2)
        results = run_partitioned(
            spans,
            partial(
                _keys_for_text_batch,
                ngram_size=self.ngram_size,
                max_ngrams=self.max_ngrams,
                prefix_length=self.prefix_length,
                lexicon_spec=lexicon_spec,
            ),
            dispatch,
            weight=lambda span: span[1] - span[0],
            shared={"texts": np.array(missing, dtype=np.str_)},
        )
        if len(memo) + len(missing) > KEY_MEMO_LIMIT:
            memo.clear()
        for (start, stop), span_keys in zip(spans, results):
            for text, keys in zip(missing[start:stop], span_keys):
                memo[text] = keys

    def iter_candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> Iterator[Tuple[int, int]]:
        """Stream distinct candidate pairs block by block (deterministic order).

        Blocks are visited in sorted key order and pairs within a block in
        position order, deduplicated on the fly.  The memory bound comes
        from the ``frequent_key_cap``: a capped (stop-word-like) key never
        materialises its quadratic pair block at all.  Note the dedup set
        still grows with the number of *emitted* pairs — a consumer that
        stops early saves work, but the generator is not constant-memory.
        Indexing and the cap run eagerly, so :attr:`last_skipped_keys` is
        accurate as soon as this returns (not once the generator drains).
        """
        left_index: Dict[str, List[int]] = {}
        for left_position, value_keys in enumerate(self._value_keys(left_values)):
            for key in value_keys:
                left_index.setdefault(key, []).append(left_position)
        right_index: Dict[str, List[int]] = {}
        for right_position, value_keys in enumerate(self._value_keys(right_values)):
            for key in value_keys:
                right_index.setdefault(key, []).append(right_position)

        cap = self.frequent_key_cap
        skipped = 0
        blocks: List[Tuple[List[int], List[int]]] = []
        for key in sorted(left_index):
            right_positions = right_index.get(key)
            if not right_positions:
                continue
            left_positions = left_index[key]
            # Quadratic blowup needs *both* sides of a key to be populous; a
            # 10000×1 block is linear and may carry a value's only candidates,
            # so the cap compares the smaller posting list.
            if cap is not None and min(len(left_positions), len(right_positions)) > cap:
                skipped += 1
                continue
            blocks.append((left_positions, right_positions))
        self.last_skipped_keys = skipped
        return self._generate_block_pairs(blocks)

    @staticmethod
    def _generate_block_pairs(
        blocks: Sequence[Tuple[List[int], List[int]]],
    ) -> Iterator[Tuple[int, int]]:
        """Yield the deduplicated pairs of the kept blocks, block by block."""
        seen: Set[Tuple[int, int]] = set()
        for left_positions, right_positions in blocks:
            for left_position in left_positions:
                for right_position in right_positions:
                    pair = (left_position, right_position)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[Tuple[int, int]]:
        """Index pairs (into left/right) sharing at least one blocking key."""
        return sorted(self.iter_candidate_pairs(left_values, right_values))


def _score_and_solve_component(
    payload: Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]],
    left_matrix: np.ndarray,
    right_matrix: np.ndarray,
    solver: AssignmentSolver,
    threshold: float,
) -> List[Tuple[int, int, float]]:
    """Score and solve one general component; the executor's work unit.

    ``payload`` is ``(left_rows, right_rows, pair_rows, pair_cols)``: the
    component's *row indices* into the shared embedding matrices plus the
    component-local coordinates of its candidate cells (``None`` when the
    component is complete).  The matrices themselves arrive through the
    executor's ``shared=`` hand-off — on the process backend the workers
    attach them as read-only memmaps, so a payload is a few small integer
    arrays rather than pickled embedding rows.  Module-level (and fed
    picklable arguments) so the process backend can ship it.  Returns
    accepted ``(row, column, distance)`` triples in solver order.
    """
    left_rows, right_rows, pair_rows, pair_cols = payload
    # Fancy indexing materialises the rows as ordinary float64 arrays whether
    # the matrix is in-memory or a memmap — identical values either way.
    cost = cosine_distance_matrix(left_matrix[left_rows], right_matrix[right_rows])
    if pair_rows is not None:
        # Values connected only transitively are not candidates of each
        # other; keep them unmatchable.
        allowed = np.zeros(cost.shape, dtype=bool)
        allowed[pair_rows, pair_cols] = True
        cost = np.where(allowed, cost, PROHIBITIVE_COST)
    # A 1×1 component has exactly one possible assignment; skip the solver
    # round-trip (only reached when singleton batching is disabled).
    assignment = [(0, 0)] if cost.shape == (1, 1) else solver.solve(cost)
    accepted: List[Tuple[int, int, float]] = []
    for row, column in assignment:
        pair_distance = float(cost[row, column])
        if pair_distance < threshold:
            accepted.append((row, column, pair_distance))
    return accepted


class BlockedValueMatcher:
    """Threshold bipartite matching restricted to blocked candidate pairs.

    The interface mirrors :class:`repro.matching.bipartite.BipartiteValueMatcher`
    (``match(left_values, right_values) -> list[ValueMatch]``), so it can be
    dropped into the Match Values component for very wide columns.  ``match``
    uses the component-wise engine described in the module docstring;
    ``match_dense`` keeps the legacy single-matrix prohibitive-cost path for
    cross-validation and the ablation benchmark.

    ``executor`` distributes the general (≥2×≥2) components over a worker
    pool; the default runs serially.  ``singleton_batching`` routes 1×1 / 1×N
    / N×1 components through one vectorised argmin pass instead of individual
    solver calls; disabling it exists only so the ablation benchmark can
    measure what the fast path saves.  Neither knob changes the matches.

    ``semantic_blocker`` adds the ANN candidate channel (see
    :mod:`repro.matching.ann`): its embedding-neighbour pairs are unioned
    with the surface pairs before component decomposition.  ``semantic_mode``
    controls when the channel runs: ``"on"`` always, ``"auto"`` only when the
    surface keys left at least one value on either side without a single
    candidate (the cheap signal that surface blocking is losing recall).
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        threshold: float = 0.7,
        solver: Optional[AssignmentSolver] = None,
        blocker: Optional[ValueBlocker] = None,
        executor: Optional[ExecutorConfig] = None,
        singleton_batching: bool = True,
        semantic_blocker: Optional[SemanticBlocker] = None,
        semantic_mode: str = "on",
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if semantic_mode not in ("on", "auto"):
            raise ValueError(f"semantic_mode must be 'on' or 'auto', got {semantic_mode!r}")
        self.embedder = embedder
        self.distance = EmbeddingDistance(embedder)
        self.threshold = threshold
        self.solver = solver if solver is not None else ScipyAssignment()
        self.blocker = blocker if blocker is not None else ValueBlocker()
        self.semantic_blocker = semantic_blocker
        self.semantic_mode = semantic_mode
        self.executor = executor if executor is not None else ExecutorConfig()
        self.singleton_batching = singleton_batching
        self.last_statistics: Optional[BlockingStatistics] = None
        self._last_ann_added = 0
        self._last_ann_duplicate = 0
        self._last_ann_kind = ""
        self._last_ann_skew = 0.0
        self._last_ann_fallbacks = 0
        self._last_ann_probe = 0

    def match(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match the two value lists, one small assignment per component.

        Singleton-sided components are solved in one vectorised batch; the
        general components go through the configured executor.  Both paths
        merge deterministically, so every backend/worker-count combination
        returns exactly what the serial loop returns.
        """
        candidates = self._candidates_or_none(left_values, right_values)
        if candidates is None:
            return []
        components = self._connected_components(candidates)

        # Embed every participating value once, in two batched calls; each
        # component then scores its cells by slicing these matrices.
        left_used = sorted({left for left, _ in candidates})
        right_used = sorted({right for _, right in candidates})
        left_vectors = self.embedder.embed_many([left_values[index] for index in left_used])
        right_vectors = self.embedder.embed_many([right_values[index] for index in right_used])
        left_row = {index: row for row, index in enumerate(left_used)}
        right_row = {index: row for row, index in enumerate(right_used)}
        left_used_array = np.asarray(left_used, dtype=np.int64)
        right_used_array = np.asarray(right_used, dtype=np.int64)

        component_cells = tuple(
            len(component_left) * len(component_right)
            for component_left, component_right, _ in components
        )
        if self.singleton_batching:
            trivial = [
                component
                for component in components
                if len(component[0]) == 1 or len(component[1]) == 1
            ]
            general = [
                component
                for component in components
                if len(component[0]) > 1 and len(component[1]) > 1
            ]
        else:
            trivial = []
            general = components

        matches: List[ValueMatch] = []
        matches.extend(
            self._match_trivial_batched(
                trivial,
                left_values,
                right_values,
                left_vectors,
                right_vectors,
                left_used_array,
                right_used_array,
            )
        )

        payloads = []
        for component_left, component_right, component_pairs in general:
            left_block_rows = np.asarray(
                [left_row[index] for index in component_left], dtype=np.int64
            )
            right_block_rows = np.asarray(
                [right_row[index] for index in component_right], dtype=np.int64
            )
            if len(component_pairs) < len(component_left) * len(component_right):
                pair_array = np.asarray(component_pairs, dtype=np.int64)
                # Component index lists are sorted, so the component-local
                # coordinates of each candidate cell are a binary search away.
                pair_rows = np.searchsorted(
                    np.asarray(component_left, dtype=np.int64), pair_array[:, 0]
                )
                pair_cols = np.searchsorted(
                    np.asarray(component_right, dtype=np.int64), pair_array[:, 1]
                )
            else:
                pair_rows = pair_cols = None
            payloads.append((left_block_rows, right_block_rows, pair_rows, pair_cols))
        # The embedding matrices travel via shared= (bound directly in
        # process-free backends, published once as memmaps for the process
        # pool); each payload is just the component's index arrays.
        solved = run_partitioned(
            payloads,
            partial(_score_and_solve_component, solver=self.solver, threshold=self.threshold),
            self.executor,
            weight=lambda payload: len(payload[0]) * len(payload[1]),
            shared={"left_matrix": left_vectors, "right_matrix": right_vectors},
        )
        for (component_left, component_right, _), accepted in zip(general, solved):
            for row, column, pair_distance in accepted:
                matches.append(
                    ValueMatch(
                        left=left_values[component_left[row]],
                        right=right_values[component_right[column]],
                        distance=pair_distance,
                    )
                )

        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=len(candidates),
            components=len(components),
            largest_component=max(component_cells, default=0),
            pairs_scored=sum(component_cells),
            component_cells=component_cells,
            skipped_keys=self.blocker.last_skipped_keys,
            ann_pairs_added=self._last_ann_added,
            ann_pairs_duplicate=self._last_ann_duplicate,
            ann_index_kind=self._last_ann_kind,
            ann_bucket_skew=self._last_ann_skew,
            ann_skew_fallbacks=self._last_ann_fallbacks,
            ann_probe_candidates=self._last_ann_probe,
        )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def _match_trivial_batched(
        self,
        trivial: Sequence[Tuple[List[int], List[int], List[Tuple[int, int]]]],
        left_values: Sequence[object],
        right_values: Sequence[object],
        left_vectors: np.ndarray,
        right_vectors: np.ndarray,
        left_used_array: np.ndarray,
        right_used_array: np.ndarray,
    ) -> List[ValueMatch]:
        """One vectorised pass over every 1×1 / 1×N / N×1 component.

        A component with a single value on one side is a star graph: every
        cell is a candidate (each edge touches the hub), and the optimal
        assignment is simply its cheapest cell.  So instead of one cost
        matrix + solver call per component, score *all* their candidate cells
        with a single einsum and pick each component's winner with one grouped
        (stable, therefore deterministic) argmin.
        """
        if not trivial:
            return []
        pair_left: List[int] = []
        pair_right: List[int] = []
        group_ids: List[int] = []
        for group, (_, _, component_pairs) in enumerate(trivial):
            for left_index, right_index in component_pairs:
                pair_left.append(left_index)
                pair_right.append(right_index)
                group_ids.append(group)
        left_indices = np.asarray(pair_left, dtype=np.int64)
        right_indices = np.asarray(pair_right, dtype=np.int64)
        groups = np.asarray(group_ids, dtype=np.int64)
        # The used-index arrays are sorted, so original index -> embedding row
        # is one vectorised binary search (no per-pair dict lookups).
        distances = np.clip(
            1.0
            - np.einsum(
                "ij,ij->i",
                left_vectors[np.searchsorted(left_used_array, left_indices), :],
                right_vectors[np.searchsorted(right_used_array, right_indices), :],
            ),
            0.0,
            1.0,
        )
        # Stable sort by (group, distance): the first row of each group is its
        # cheapest cell, ties resolved by candidate order — deterministic.
        order = np.lexsort((distances, groups))
        is_first = np.ones(len(order), dtype=bool)
        is_first[1:] = groups[order][1:] != groups[order][:-1]
        winners = order[is_first]
        winners = winners[distances[winners] < self.threshold]
        return [
            ValueMatch(
                left=left_values[int(left_indices[winner])],
                right=right_values[int(right_indices[winner])],
                distance=float(distances[winner]),
            )
            for winner in winners
        ]

    def match_dense(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Legacy path: one global matrix with prohibitive non-candidate cells.

        Builds a dense ``left_used × right_used`` matrix and scores candidate
        cells with per-pair distance calls.  Kept for cross-validating the
        component-wise engine and for the ablation benchmark's speedup
        measurement; prefer :meth:`match`.
        """
        candidates = self._candidates_or_none(left_values, right_values)
        if candidates is None:
            return []
        left_used = sorted({left for left, _ in candidates})
        right_used = sorted({right for _, right in candidates})
        left_position = {index: position for position, index in enumerate(left_used)}
        right_position = {index: position for position, index in enumerate(right_used)}
        cost = np.full((len(left_used), len(right_used)), PROHIBITIVE_COST, dtype=np.float64)
        for left_index, right_index in candidates:
            cost[left_position[left_index], right_position[right_index]] = self.distance.distance(
                left_values[left_index], right_values[right_index]
            )
        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=len(candidates),
            components=1,
            largest_component=len(left_used) * len(right_used),
            pairs_scored=len(candidates),
            component_cells=(len(left_used) * len(right_used),),
            skipped_keys=self.blocker.last_skipped_keys,
            ann_pairs_added=self._last_ann_added,
            ann_pairs_duplicate=self._last_ann_duplicate,
            ann_index_kind=self._last_ann_kind,
            ann_bucket_skew=self._last_ann_skew,
            ann_skew_fallbacks=self._last_ann_fallbacks,
            ann_probe_candidates=self._last_ann_probe,
        )
        matches: List[ValueMatch] = []
        for row, column in self.solver.solve(cost):
            pair_distance = float(cost[row, column])
            if pair_distance < self.threshold:
                matches.append(
                    ValueMatch(
                        left=left_values[left_used[row]],
                        right=right_values[right_used[column]],
                        distance=pair_distance,
                    )
                )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_exact_first(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match identical values first, then block-and-match the remainder."""
        matches, left_remaining, right_remaining = split_exact_matches(
            left_values, right_values
        )
        matches.extend(self.match(left_remaining, right_remaining))
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_degraded(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Embedding-free fallback: exact matches + normalised surface equality.

        The degraded path of ``degraded_mode="surface"``, used while the
        embedder's circuit breaker is open.  It never calls the embedder (and
        never the ANN channel): identical values match via
        :func:`split_exact_matches`, then the surviving values are matched
        greedily one-to-one wherever a blocked candidate pair's *normalised*
        texts are equal (``"Berlin "`` ↔ ``"berlin"`` still matches;
        ``"Berlinn"`` ↔ ``"Berlin"`` does not — recall strictly below the
        embedding path, precision preserved).  Candidate pairs stream in the
        blocker's deterministic order, so the result is reproducible.
        ``last_statistics`` is marked ``degraded=True``.
        """
        matches, left_remaining, right_remaining = split_exact_matches(
            left_values, right_values
        )
        normalised_left = [normalize_value(value) for value in left_remaining]
        normalised_right = [normalize_value(value) for value in right_remaining]
        used_left: Set[int] = set()
        used_right: Set[int] = set()
        candidate_count = 0
        if left_remaining and right_remaining:
            for left_index, right_index in self.blocker.iter_candidate_pairs(
                left_remaining, right_remaining
            ):
                candidate_count += 1
                if left_index in used_left or right_index in used_right:
                    continue
                text = normalised_left[left_index]
                if text and text == normalised_right[right_index]:
                    used_left.add(left_index)
                    used_right.add(right_index)
                    matches.append(
                        ValueMatch(
                            left=left_remaining[left_index],
                            right=right_remaining[right_index],
                            distance=0.0,
                        )
                    )
        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=candidate_count,
            skipped_keys=self.blocker.last_skipped_keys if left_remaining else 0,
            degraded=True,
        )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    # -- helpers --------------------------------------------------------------------
    def _candidates_or_none(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> Optional[List[Tuple[int, int]]]:
        """Surface ∪ semantic candidate pairs, or ``None`` when nothing matches."""
        self._last_ann_added = 0
        self._last_ann_duplicate = 0
        self._last_ann_kind = ""
        self._last_ann_skew = 0.0
        self._last_ann_fallbacks = 0
        self._last_ann_probe = 0
        if not left_values or not right_values:
            self.last_statistics = BlockingStatistics(len(left_values), len(right_values), 0)
            return None
        candidates = self.blocker.candidate_pairs(left_values, right_values)
        if self.semantic_blocker is not None and self._semantic_engages(
            candidates, len(left_values), len(right_values)
        ):
            fallbacks_before = self.semantic_blocker.skew_fallbacks
            semantic_pairs = self.semantic_blocker.candidate_pairs(left_values, right_values)
            self._last_ann_kind = self.semantic_blocker.last_index_kind
            self._last_ann_skew = self.semantic_blocker.last_bucket_skew
            self._last_ann_fallbacks = (
                self.semantic_blocker.skew_fallbacks - fallbacks_before
            )
            self._last_ann_probe = self.semantic_blocker.last_probe_candidates
            if semantic_pairs:
                surface_set = set(candidates)
                added = [pair for pair in semantic_pairs if pair not in surface_set]
                self._last_ann_added = len(added)
                self._last_ann_duplicate = len(semantic_pairs) - len(added)
                if added:
                    candidates = sorted(surface_set.union(added))
        if not candidates:
            # skipped_keys matters most here: an all-capped key set is
            # indistinguishable from "nothing blocks together" without it.
            self.last_statistics = BlockingStatistics(
                len(left_values),
                len(right_values),
                0,
                skipped_keys=self.blocker.last_skipped_keys,
            )
            return None
        return candidates

    def _semantic_engages(
        self, surface_candidates: Sequence[Tuple[int, int]], n_left: int, n_right: int
    ) -> bool:
        """Whether the ANN channel runs for this column pair.

        ``"on"`` always engages.  ``"auto"`` engages exactly when the surface
        channel left some value with no candidate at all: a fully covered
        graph can still be missing *better* pairs, but an uncovered value is
        a guaranteed recall hole — and checking coverage costs one set pass,
        not an index build.
        """
        if self.semantic_mode == "on":
            return True
        if len(surface_candidates) == 0:
            return True
        covered_left: Set[int] = set()
        covered_right: Set[int] = set()
        for left_index, right_index in surface_candidates:
            covered_left.add(left_index)
            covered_right.add(right_index)
        return len(covered_left) < n_left or len(covered_right) < n_right

    @staticmethod
    def _connected_components(
        candidates: Sequence[Tuple[int, int]],
    ) -> List[Tuple[List[int], List[int], List[Tuple[int, int]]]]:
        """Split the candidate-pair graph into connected components.

        Returns ``(left_indices, right_indices, pairs)`` per component, in a
        deterministic order (first appearance of the component's earliest
        pair).  Uses an inline integer union-find (left node ``i``, right node
        ``n_left + j``) — the generic :class:`~repro.utils.unionfind.UnionFind`
        hashes a tuple key per operation, which dominates this hot path on
        graphs with tens of thousands of candidate pairs.
        """
        n_left = 1 + max(left_index for left_index, _ in candidates)
        n_right = 1 + max(right_index for _, right_index in candidates)
        parent = list(range(n_left + n_right))

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        for left_index, right_index in candidates:
            left_root = find(left_index)
            right_root = find(n_left + right_index)
            if left_root != right_root:
                parent[right_root] = left_root
        pairs_by_root: Dict[int, List[Tuple[int, int]]] = {}
        for left_index, right_index in candidates:
            pairs_by_root.setdefault(find(left_index), []).append(
                (left_index, right_index)
            )
        components: List[Tuple[List[int], List[int], List[Tuple[int, int]]]] = []
        for pairs in pairs_by_root.values():
            component_left = sorted({left for left, _ in pairs})
            component_right = sorted({right for _, right in pairs})
            components.append((component_left, component_right, pairs))
        return components
