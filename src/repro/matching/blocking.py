"""Blocking for fuzzy value matching at scale.

The Match Values component computes a full ``|A| × |B|`` cosine-distance
matrix per column pair.  For the paper's benchmark columns (~150 values) that
is trivial, but for wide data-lake columns with tens of thousands of distinct
values the quadratic matrix dominates.  This module adds the standard remedy:
*blocking*.  Values are assigned to blocks by cheap surface keys (character
n-grams and token prefixes); only value pairs that share a block are scored;
the bipartite assignment is then solved on the resulting sparse candidate set
(block by block), keeping the semantics "each value matched at most once,
never above the threshold θ".

Blocking trades a small amount of recall (pairs with no shared surface key and
no shared block are never scored — e.g. full-form abbreviations with disjoint
surfaces unless the semantic key is enabled) for a large reduction in scored
pairs; the accompanying ablation benchmark quantifies the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.matching.assignment import AssignmentSolver, ScipyAssignment
from repro.matching.bipartite import ValueMatch
from repro.matching.distance import EmbeddingDistance
from repro.utils.text import character_ngrams, normalize_value, tokenize


@dataclass(frozen=True)
class BlockingStatistics:
    """How much work blocking saved for one column pair."""

    left_values: int
    right_values: int
    candidate_pairs: int

    @property
    def full_matrix_pairs(self) -> int:
        """Number of pairs the unblocked matcher would have scored."""
        return self.left_values * self.right_values

    @property
    def reduction_ratio(self) -> float:
        """Fraction of pairs avoided (0 when nothing was saved)."""
        total = self.full_matrix_pairs
        if total == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / total


class ValueBlocker:
    """Assigns surface-key blocks to values.

    Keys: lower-cased token prefixes (first 4 characters of each token),
    character 3-grams of the normalised value (capped), and — optionally — the
    lexicon concept of the value, which lets known abbreviation/synonym pairs
    share a block even though their surfaces are disjoint.
    """

    def __init__(
        self,
        ngram_size: int = 3,
        max_ngrams: int = 6,
        prefix_length: int = 4,
        use_lexicon: bool = True,
        lexicon: Optional[SemanticLexicon] = None,
    ) -> None:
        self.ngram_size = ngram_size
        self.max_ngrams = max_ngrams
        self.prefix_length = prefix_length
        self.use_lexicon = use_lexicon
        self.lexicon = lexicon if lexicon is not None else (default_lexicon() if use_lexicon else None)

    def keys(self, value: object) -> Set[str]:
        """The blocking keys of one value."""
        normalised = normalize_value(value)
        keys: Set[str] = set()
        for token in tokenize(normalised):
            keys.add(f"p:{token[: self.prefix_length]}")
        for gram in character_ngrams(normalised, n=self.ngram_size)[: self.max_ngrams]:
            keys.add(f"g:{gram}")
        if self.use_lexicon and self.lexicon is not None:
            concept = self.lexicon.lookup(normalised)
            if concept is not None:
                keys.add(f"c:{concept}")
        if not keys and normalised:
            keys.add(f"p:{normalised[: self.prefix_length]}")
        return keys

    def candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[Tuple[int, int]]:
        """Index pairs (into left/right) sharing at least one blocking key."""
        right_index: Dict[str, List[int]] = {}
        for right_position, value in enumerate(right_values):
            for key in self.keys(value):
                right_index.setdefault(key, []).append(right_position)
        pairs: Set[Tuple[int, int]] = set()
        for left_position, value in enumerate(left_values):
            for key in self.keys(value):
                for right_position in right_index.get(key, ()):
                    pairs.add((left_position, right_position))
        return sorted(pairs)


class BlockedValueMatcher:
    """Threshold bipartite matching restricted to blocked candidate pairs.

    The interface mirrors :class:`repro.matching.bipartite.BipartiteValueMatcher`
    (``match(left_values, right_values) -> list[ValueMatch]``), so it can be
    dropped into the Match Values component for very wide columns.
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        threshold: float = 0.7,
        solver: Optional[AssignmentSolver] = None,
        blocker: Optional[ValueBlocker] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.distance = EmbeddingDistance(embedder)
        self.threshold = threshold
        self.solver = solver if solver is not None else ScipyAssignment()
        self.blocker = blocker if blocker is not None else ValueBlocker()
        self.last_statistics: Optional[BlockingStatistics] = None

    def match(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match the two value lists, scoring only blocked candidate pairs."""
        import numpy as np

        if not left_values or not right_values:
            self.last_statistics = BlockingStatistics(len(left_values), len(right_values), 0)
            return []
        candidates = self.blocker.candidate_pairs(left_values, right_values)
        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=len(candidates),
        )
        if not candidates:
            return []

        # Build a dense cost matrix over only the values that participate in
        # at least one candidate pair; non-candidate cells get a prohibitive
        # cost so the assignment never selects them.
        left_used = sorted({left for left, _ in candidates})
        right_used = sorted({right for _, right in candidates})
        left_position = {index: position for position, index in enumerate(left_used)}
        right_position = {index: position for position, index in enumerate(right_used)}
        prohibitive = 10.0
        cost = np.full((len(left_used), len(right_used)), prohibitive, dtype=np.float64)
        for left_index, right_index in candidates:
            cost[left_position[left_index], right_position[right_index]] = self.distance.distance(
                left_values[left_index], right_values[right_index]
            )
        pairs = self.solver.solve(cost)
        matches: List[ValueMatch] = []
        for row, column in pairs:
            pair_distance = float(cost[row, column])
            if pair_distance < self.threshold:
                matches.append(
                    ValueMatch(
                        left=left_values[left_used[row]],
                        right=right_values[right_used[column]],
                        distance=pair_distance,
                    )
                )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_exact_first(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match identical values first, then block-and-match the remainder."""
        left_seen = set(left_values)
        matches: List[ValueMatch] = []
        matched_left: Set[object] = set()
        right_remaining: List[object] = []
        for value in right_values:
            if value in left_seen and value not in matched_left:
                matches.append(ValueMatch(left=value, right=value, distance=0.0))
                matched_left.add(value)
            else:
                right_remaining.append(value)
        left_remaining = [value for value in left_values if value not in matched_left]
        matches.extend(self.match(left_remaining, right_remaining))
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches
