"""Component-wise blocked fuzzy value matching at scale.

The Match Values component computes a full ``|A| × |B|`` cosine-distance
matrix per column pair.  For the paper's benchmark columns (~150 values) that
is trivial, but for wide data-lake columns with tens of thousands of distinct
values the quadratic matrix dominates.  This module replaces it with a
*sparse, component-wise* engine:

1. **Block.**  :class:`ValueBlocker` assigns cheap surface keys (character
   n-grams sampled evenly across the value, token prefixes, optional lexicon
   concepts) to every value; only value pairs sharing at least one key become
   candidates.
2. **Decompose.**  The candidate-pair graph is split into connected components
   with :class:`repro.utils.unionfind.UnionFind`.  Values in different
   components can never be matched to each other, so the global assignment
   decomposes exactly into one independent assignment per component.
3. **Score in batch.**  Every participating value is embedded once via
   ``embedder.embed_many``; each component's cost matrix is then a single
   vectorised :func:`~repro.matching.distance.cosine_distance_matrix` call
   over the component's embedding rows — no per-pair Python round-trips.
4. **Solve small.**  One dense assignment is solved per component.  The
   largest matrix ever allocated is the largest component, not the full
   ``|A| × |B|`` cross product; :class:`BlockingStatistics` reports both.

Non-candidate cells inside a component keep a prohibitive cost so the
semantics stay "each value matched at most once, never above the threshold θ,
only ever to a blocked candidate".  Blocking trades a small amount of recall
(pairs with no shared surface key and no shared block are never scored — e.g.
full-form abbreviations with disjoint surfaces unless the semantic key is
enabled) for a large reduction in scored pairs; the accompanying ablation
benchmark quantifies the trade-off and the component-wise speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.matching.assignment import AssignmentSolver, ScipyAssignment
from repro.matching.bipartite import ValueMatch, split_exact_matches
from repro.matching.distance import EmbeddingDistance, cosine_distance_matrix
from repro.utils.text import character_ngrams, normalize_value, tokenize
from repro.utils.unionfind import UnionFind

#: Cost written into cells the assignment must never select (non-candidate
#: cells inside a component, and every cell of the legacy dense path that is
#: not a blocked candidate).  Any value comfortably above the distance range
#: [0, 1] works; matches at this cost are always rejected by the threshold.
PROHIBITIVE_COST = 10.0


@dataclass(frozen=True)
class BlockingStatistics:
    """How much work blocking saved for one column pair.

    ``candidate_pairs`` counts the blocked pairs; ``pairs_scored`` counts the
    distance-matrix cells actually computed (the sum of component matrix
    sizes, which can exceed ``candidate_pairs`` because each component is
    scored as one dense batch).  ``largest_component`` is the cell count of
    the biggest matrix allocated — the engine's peak memory driver.
    """

    left_values: int
    right_values: int
    candidate_pairs: int
    components: int = 0
    largest_component: int = 0
    pairs_scored: int = 0

    @property
    def full_matrix_pairs(self) -> int:
        """Number of pairs the unblocked matcher would have scored."""
        return self.left_values * self.right_values

    @property
    def pairs_avoided(self) -> int:
        """Distance computations skipped relative to the full matrix."""
        return max(0, self.full_matrix_pairs - self.pairs_scored)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of pairs avoided (0 when nothing was saved)."""
        total = self.full_matrix_pairs
        if total == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / total


class ValueBlocker:
    """Assigns surface-key blocks to values.

    Keys: lower-cased token prefixes (first 4 characters of each token),
    character 3-grams sampled evenly across the normalised value (capped at
    ``max_ngrams``, always covering both ends so suffix-sharing pairs block
    together), and — optionally — the lexicon concept of the value, which lets
    known abbreviation/synonym pairs share a block even though their surfaces
    are disjoint.
    """

    def __init__(
        self,
        ngram_size: int = 3,
        max_ngrams: int = 6,
        prefix_length: int = 4,
        use_lexicon: bool = True,
        lexicon: Optional[SemanticLexicon] = None,
    ) -> None:
        self.ngram_size = ngram_size
        self.max_ngrams = max_ngrams
        self.prefix_length = prefix_length
        self.use_lexicon = use_lexicon
        self.lexicon = lexicon if lexicon is not None else (default_lexicon() if use_lexicon else None)

    def keys(self, value: object) -> Set[str]:
        """The blocking keys of one value."""
        normalised = normalize_value(value)
        keys: Set[str] = set()
        for token in tokenize(normalised):
            keys.add(f"p:{token[: self.prefix_length]}")
        grams = character_ngrams(normalised, n=self.ngram_size)
        for gram in self._sample_evenly(grams):
            keys.add(f"g:{gram}")
        if self.use_lexicon and self.lexicon is not None:
            concept = self.lexicon.lookup(normalised)
            if concept is not None:
                keys.add(f"c:{concept}")
        if not keys and normalised:
            keys.add(f"p:{normalised[: self.prefix_length]}")
        return keys

    def _sample_evenly(self, grams: List[str]) -> List[str]:
        """At most ``max_ngrams`` grams spread across the whole value.

        Taking the *first* ``max_ngrams`` grams would make long values block
        solely on their prefix; even sampling always includes the first and
        last gram, so pairs sharing any region (suffixes included) remain
        candidates.
        """
        if self.max_ngrams <= 0 or len(grams) <= self.max_ngrams:
            return grams
        if self.max_ngrams == 1:
            return [grams[0]]
        step = (len(grams) - 1) / (self.max_ngrams - 1)
        positions = sorted({round(index * step) for index in range(self.max_ngrams)})
        return [grams[position] for position in positions]

    def candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[Tuple[int, int]]:
        """Index pairs (into left/right) sharing at least one blocking key."""
        right_index: Dict[str, List[int]] = {}
        for right_position, value in enumerate(right_values):
            for key in self.keys(value):
                right_index.setdefault(key, []).append(right_position)
        pairs: Set[Tuple[int, int]] = set()
        for left_position, value in enumerate(left_values):
            for key in self.keys(value):
                for right_position in right_index.get(key, ()):
                    pairs.add((left_position, right_position))
        return sorted(pairs)


class BlockedValueMatcher:
    """Threshold bipartite matching restricted to blocked candidate pairs.

    The interface mirrors :class:`repro.matching.bipartite.BipartiteValueMatcher`
    (``match(left_values, right_values) -> list[ValueMatch]``), so it can be
    dropped into the Match Values component for very wide columns.  ``match``
    uses the component-wise engine described in the module docstring;
    ``match_dense`` keeps the legacy single-matrix prohibitive-cost path for
    cross-validation and the ablation benchmark.
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        threshold: float = 0.7,
        solver: Optional[AssignmentSolver] = None,
        blocker: Optional[ValueBlocker] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.embedder = embedder
        self.distance = EmbeddingDistance(embedder)
        self.threshold = threshold
        self.solver = solver if solver is not None else ScipyAssignment()
        self.blocker = blocker if blocker is not None else ValueBlocker()
        self.last_statistics: Optional[BlockingStatistics] = None

    def match(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match the two value lists, one small assignment per component."""
        candidates = self._candidates_or_none(left_values, right_values)
        if candidates is None:
            return []
        components = self._connected_components(candidates)

        # Embed every participating value once, in two batched calls; each
        # component then scores its cells by slicing these matrices.
        left_used = sorted({left for left, _ in candidates})
        right_used = sorted({right for _, right in candidates})
        left_vectors = self.embedder.embed_many([left_values[index] for index in left_used])
        right_vectors = self.embedder.embed_many([right_values[index] for index in right_used])
        left_row = {index: row for row, index in enumerate(left_used)}
        right_row = {index: row for row, index in enumerate(right_used)}

        matches: List[ValueMatch] = []
        pairs_scored = 0
        largest_component = 0
        for component_left, component_right, component_pairs in components:
            cells = len(component_left) * len(component_right)
            pairs_scored += cells
            largest_component = max(largest_component, cells)
            cost = cosine_distance_matrix(
                left_vectors[[left_row[index] for index in component_left], :],
                right_vectors[[right_row[index] for index in component_right], :],
            )
            if len(component_pairs) < cells:
                # Values connected only transitively are not candidates of
                # each other; keep them unmatchable.
                row_of = {index: row for row, index in enumerate(component_left)}
                column_of = {index: column for column, index in enumerate(component_right)}
                allowed = np.zeros(cost.shape, dtype=bool)
                for left_index, right_index in component_pairs:
                    allowed[row_of[left_index], column_of[right_index]] = True
                cost = np.where(allowed, cost, PROHIBITIVE_COST)
            # A 1×1 component has exactly one possible assignment; skip the
            # solver round-trip (singleton components dominate sparse graphs).
            assignment = [(0, 0)] if cost.shape == (1, 1) else self.solver.solve(cost)
            for row, column in assignment:
                pair_distance = float(cost[row, column])
                if pair_distance < self.threshold:
                    matches.append(
                        ValueMatch(
                            left=left_values[component_left[row]],
                            right=right_values[component_right[column]],
                            distance=pair_distance,
                        )
                    )
        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=len(candidates),
            components=len(components),
            largest_component=largest_component,
            pairs_scored=pairs_scored,
        )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_dense(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Legacy path: one global matrix with prohibitive non-candidate cells.

        Builds a dense ``left_used × right_used`` matrix and scores candidate
        cells with per-pair distance calls.  Kept for cross-validating the
        component-wise engine and for the ablation benchmark's speedup
        measurement; prefer :meth:`match`.
        """
        candidates = self._candidates_or_none(left_values, right_values)
        if candidates is None:
            return []
        left_used = sorted({left for left, _ in candidates})
        right_used = sorted({right for _, right in candidates})
        left_position = {index: position for position, index in enumerate(left_used)}
        right_position = {index: position for position, index in enumerate(right_used)}
        cost = np.full((len(left_used), len(right_used)), PROHIBITIVE_COST, dtype=np.float64)
        for left_index, right_index in candidates:
            cost[left_position[left_index], right_position[right_index]] = self.distance.distance(
                left_values[left_index], right_values[right_index]
            )
        self.last_statistics = BlockingStatistics(
            left_values=len(left_values),
            right_values=len(right_values),
            candidate_pairs=len(candidates),
            components=1,
            largest_component=len(left_used) * len(right_used),
            pairs_scored=len(candidates),
        )
        matches: List[ValueMatch] = []
        for row, column in self.solver.solve(cost):
            pair_distance = float(cost[row, column])
            if pair_distance < self.threshold:
                matches.append(
                    ValueMatch(
                        left=left_values[left_used[row]],
                        right=right_values[right_used[column]],
                        distance=pair_distance,
                    )
                )
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    def match_exact_first(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[ValueMatch]:
        """Match identical values first, then block-and-match the remainder."""
        matches, left_remaining, right_remaining = split_exact_matches(
            left_values, right_values
        )
        matches.extend(self.match(left_remaining, right_remaining))
        matches.sort(key=lambda match: (match.distance, str(match.left), str(match.right)))
        return matches

    # -- helpers --------------------------------------------------------------------
    def _candidates_or_none(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> Optional[List[Tuple[int, int]]]:
        """Blocked candidate pairs, or ``None`` when there is nothing to match."""
        if not left_values or not right_values:
            self.last_statistics = BlockingStatistics(len(left_values), len(right_values), 0)
            return None
        candidates = self.blocker.candidate_pairs(left_values, right_values)
        if not candidates:
            self.last_statistics = BlockingStatistics(
                len(left_values), len(right_values), 0
            )
            return None
        return candidates

    @staticmethod
    def _connected_components(
        candidates: Sequence[Tuple[int, int]],
    ) -> List[Tuple[List[int], List[int], List[Tuple[int, int]]]]:
        """Split the candidate-pair graph into connected components.

        Returns ``(left_indices, right_indices, pairs)`` per component, in a
        deterministic order (first appearance of the component's earliest
        pair).
        """
        union_find = UnionFind()
        for left_index, right_index in candidates:
            union_find.union(("L", left_index), ("R", right_index))
        pairs_by_root: Dict[object, List[Tuple[int, int]]] = {}
        for left_index, right_index in candidates:
            pairs_by_root.setdefault(union_find.find(("L", left_index)), []).append(
                (left_index, right_index)
            )
        components: List[Tuple[List[int], List[int], List[Tuple[int, int]]]] = []
        for pairs in pairs_by_root.values():
            component_left = sorted({left for left, _ in pairs})
            component_right = sorted({right for _, right in pairs})
            components.append((component_left, component_right, pairs))
        return components
