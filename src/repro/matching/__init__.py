"""Fuzzy value matching machinery.

This package implements the building blocks of the paper's *Match Values*
component (Sec. 2.2): distance functions between cell values (cosine distance
over embeddings, plus lexical baselines), optimal bipartite assignment between
the value sets of two aligned columns (scipy's linear sum assignment, an
independent Hungarian implementation, and a greedy baseline), and the
bookkeeping that accumulates pairwise matches into disjoint value-match sets.
"""

from repro.matching.assignment import (
    ASSIGNMENT_SOLVERS,
    AssignmentSolver,
    GreedyAssignment,
    HungarianAssignment,
    ScipyAssignment,
    available_solvers,
    get_assignment_solver,
)
from repro.matching.ann import SemanticBlocker
from repro.matching.bipartite import BipartiteValueMatcher, ValueMatch, split_exact_matches
from repro.matching.blocking import (
    PROHIBITIVE_COST,
    BlockedValueMatcher,
    BlockingStatistics,
    ValueBlocker,
)
from repro.matching.clustering import MatchSetBuilder, ValueMatchSet
from repro.matching.distance import (
    DistanceFunction,
    EmbeddingDistance,
    JaccardTokenDistance,
    LevenshteinDistance,
    cosine_distance_matrix,
)

__all__ = [
    "DistanceFunction",
    "EmbeddingDistance",
    "LevenshteinDistance",
    "JaccardTokenDistance",
    "cosine_distance_matrix",
    "AssignmentSolver",
    "ScipyAssignment",
    "HungarianAssignment",
    "GreedyAssignment",
    "ASSIGNMENT_SOLVERS",
    "available_solvers",
    "get_assignment_solver",
    "BipartiteValueMatcher",
    "split_exact_matches",
    "BlockedValueMatcher",
    "ValueBlocker",
    "SemanticBlocker",
    "BlockingStatistics",
    "PROHIBITIVE_COST",
    "ValueMatch",
    "MatchSetBuilder",
    "ValueMatchSet",
]
