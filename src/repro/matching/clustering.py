"""Accumulating pairwise matches into disjoint value-match sets.

The Fuzzy Value Match problem (Definition 2) asks for *disjoint* sets of
values; pairwise matches produced column-pair by column-pair are folded into
such sets with a union-find.  Each value is identified by the pair
``(column id, value)`` so that, per the clean-clean assumption, two equal
strings in *different* columns are distinct items until a match joins them,
while equal strings in the same column are the same item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.matching.bipartite import ValueMatch
from repro.utils.unionfind import UnionFind

ValueKey = Tuple[Hashable, object]


@dataclass
class ValueMatchSet:
    """One disjoint set of matched values with its chosen representative."""

    members: List[ValueKey]
    representative: object = None

    def values(self) -> List[object]:
        """The raw values in the set (may repeat across columns)."""
        return [value for _, value in self.members]

    def columns(self) -> List[Hashable]:
        """The column ids contributing to the set."""
        return [column for column, _ in self.members]

    def __len__(self) -> int:
        return len(self.members)


class MatchSetBuilder:
    """Builds disjoint value-match sets from per-column values and pair matches."""

    def __init__(self) -> None:
        self._uf: UnionFind = UnionFind()
        self._registered: Dict[ValueKey, None] = {}

    def add_column(self, column_id: Hashable, values: Iterable[object]) -> None:
        """Register every (distinct) value of a column as a singleton item."""
        for value in values:
            key: ValueKey = (column_id, value)
            if key not in self._registered:
                self._registered[key] = None
                self._uf.add(key)

    def add_matches(
        self,
        left_column: Hashable,
        right_column: Hashable,
        matches: Sequence[ValueMatch],
    ) -> None:
        """Union the items joined by accepted bipartite matches."""
        for match in matches:
            left_key: ValueKey = (left_column, match.left)
            right_key: ValueKey = (right_column, match.right)
            self._registered.setdefault(left_key, None)
            self._registered.setdefault(right_key, None)
            self._uf.union(left_key, right_key)

    def add_equivalence(self, left: ValueKey, right: ValueKey) -> None:
        """Directly union two value keys (used when folding combined columns)."""
        self._registered.setdefault(left, None)
        self._registered.setdefault(right, None)
        self._uf.union(left, right)

    def sets(self) -> List[ValueMatchSet]:
        """Return the current disjoint sets (deterministic member order)."""
        groups = self._uf.groups()
        result: List[ValueMatchSet] = []
        for group in groups:
            members = sorted(group, key=lambda key: (str(key[0]), str(key[1])))
            result.append(ValueMatchSet(members=members))
        result.sort(key=lambda match_set: (str(match_set.members[0][0]), str(match_set.members[0][1])))
        return result

    def matched_pairs(self) -> List[Tuple[ValueKey, ValueKey]]:
        """All unordered within-set pairs — the unit the evaluation metrics count."""
        pairs: List[Tuple[ValueKey, ValueKey]] = []
        for match_set in self.sets():
            members = match_set.members
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    pairs.append((left, right))
        return pairs
