"""Approximate-nearest-neighbour semantic blocking over value embeddings.

Surface blocking keys (:class:`~repro.matching.blocking.ValueBlocker`'s
n-grams, token prefixes and lexicon concepts) can only propose a candidate
pair when the two values share some *surface* evidence.  Pairs whose strings
share no characters at all — out-of-lexicon synonyms, abbreviations of names
the lexicon does not know — are exactly the fuzzy matches the paper's
embedding-distance matching is supposed to recover, and surface blocking
silently drops them before they are ever scored.

:class:`SemanticBlocker` closes that gap with a second, *semantic* candidate
channel: it indexes the value embeddings themselves (the same unit vectors
``embed_many`` already computes for scoring, so a warm
:class:`~repro.embeddings.base.EmbeddingCache` makes indexing free) and emits,
for every left value, its approximate nearest right values.  The candidate
pairs are unioned with the surface channel's pairs by
:class:`~repro.matching.blocking.BlockedValueMatcher` before component
decomposition, so the downstream engine is unchanged — the semantic channel
only ever *adds* edges to the candidate graph.

Two retrieval strategies, chosen per column pair by size:

* **Brute-force top-k** (small pairs): one dense similarity matrix, exact
  top-k in both directions.  Below ``brute_force_cells`` cells this is cheaper
  and strictly more accurate than any index.
* **Random-hyperplane LSH** (large pairs): ``n_tables`` independent hash
  tables of ``n_bits`` signed random projections each.  Values whose codes
  collide in any table (exactly, or — via single-bit multiprobe — at Hamming
  distance 1) become candidates; each value keeps its ``top_k`` nearest by
  true cosine similarity among its collision set, probing in both directions
  (left over the right tables and vice versa) so neither side can be starved
  by the other's top-k competition.  Numpy-only, no external index library.

Determinism: hyperplanes come from a seeded :func:`numpy.random.default_rng`,
bucket iteration follows input positions, and every top-k selection breaks
ties by index via stable sorts — two runs with the same seed over the same
values produce identical candidate sets, on any backend.

With an :class:`~repro.storage.store.ArtifactStore` attached, the LSH hash
state becomes durable: the hyperplane stack and each value list's code matrix
are published under ``(embedder fingerprint, LSH-parameter fingerprint,
ordered corpus fingerprint)`` and loaded back on the next encounter of the
same corpus — a restarted engine re-blocks a known column without rebuilding
a single code.  ``index_loads`` / ``index_builds`` / ``index_saves`` count
what happened; the stored artifact only short-circuits the hash computation,
so candidates are identical with and without the store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.storage.fingerprint import (
    ann_params_fingerprint,
    corpus_fingerprint,
    embedder_fingerprint,
)
from repro.storage.store import ArtifactStore

#: Default number of LSH hash tables.  More tables raise recall (a pair only
#: needs to collide once) at linearly more probing work.
DEFAULT_ANN_TABLES = 8

#: Default number of random-hyperplane bits per table.  Fewer bits mean
#: larger buckets: higher recall, more true-similarity evaluations.  With
#: single-bit multiprobe, 8 bits keeps pairs at cosine similarity ≈0.6 —
#: the regime of surface-disjoint synonyms under the simulated LLM
#: embedders — above ~90% collision probability across the default tables.
DEFAULT_ANN_BITS = 8

#: Default candidates kept per probing value (nearest by true cosine
#: similarity among the collision set, or exact top-k on the brute path;
#: both sides probe, so the pair budget is ~``top_k × (|left| + |right|)``).
DEFAULT_ANN_TOP_K = 5

#: Default seed of the random hyperplanes.  Fixed so that two matchers built
#: independently (e.g. one per engine worker thread) block identically.
DEFAULT_ANN_SEED = 97

#: Column pairs with at most this many cells (``|left| × |right|``) take the
#: exact brute-force path; above it the LSH index engages.
DEFAULT_BRUTE_FORCE_CELLS = 250_000


class SemanticBlocker:
    """Emits candidate pairs of embedding-nearest values.

    The interface mirrors :meth:`ValueBlocker.candidate_pairs
    <repro.matching.blocking.ValueBlocker.candidate_pairs>`: a sorted list of
    ``(left_index, right_index)`` pairs.  The blocker never decides matches —
    it only proposes pairs for the assignment engine to score, so a loose
    ``top_k`` costs extra scored cells, never wrong matches.

    Parameters
    ----------
    embedder:
        Source of the value embeddings.  Lookups go through
        ``embedder.embed_many``, so indexing reuses (and warms) the
        embedder's cache — inside an :class:`~repro.core.engine.
        IntegrationEngine` the vectors are typically already cached and
        indexing re-embeds nothing.
    top_k:
        Candidates emitted per probing value (each side probes the other).
    n_tables / n_bits:
        LSH shape (see module docstring).  Only consulted above the
        brute-force cutoff.
    seed:
        Seed of the random hyperplanes; same seed, same candidates.
    brute_force_cells:
        Cell-count cutoff below which the exact dense path runs instead of
        the LSH index.
    min_similarity:
        Cosine-similarity floor on emitted pairs.  A top-k list is padded
        with whatever neighbours exist, however distant; below-floor pairs
        are dropped because they cannot survive the matcher's threshold θ
        anyway (distance ``1 - sim ≥ θ``) — and, worse, keeping them welds
        unrelated values into one giant connected component, inflating
        ``pairs_scored`` toward the dense cross product.  Callers that know
        θ should pass ``1 - θ`` (the blocked matcher's configuration layer
        does); ``0.0`` disables the floor.
    store:
        Optional :class:`~repro.storage.store.ArtifactStore` making the LSH
        hash state durable.  Codes are keyed by the *ordered* corpus
        fingerprint of the value list (column ``i`` codes value ``i``), the
        embedder fingerprint and the ``(n_tables, n_bits, seed)`` parameter
        fingerprint; ``top_k`` / ``min_similarity`` are retrieval-time knobs
        and deliberately not part of the key.  The store never changes the
        emitted candidates — only whether codes are computed or loaded.
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        top_k: int = DEFAULT_ANN_TOP_K,
        n_tables: int = DEFAULT_ANN_TABLES,
        n_bits: int = DEFAULT_ANN_BITS,
        seed: int = DEFAULT_ANN_SEED,
        brute_force_cells: int = DEFAULT_BRUTE_FORCE_CELLS,
        min_similarity: float = 0.0,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        if not 1 <= n_bits <= 30:
            raise ValueError(f"n_bits must be in [1, 30], got {n_bits}")
        if brute_force_cells < 0:
            raise ValueError(f"brute_force_cells must be >= 0, got {brute_force_cells}")
        if not 0.0 <= min_similarity < 1.0:
            raise ValueError(f"min_similarity must be in [0, 1), got {min_similarity}")
        self.embedder = embedder
        self.top_k = top_k
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.seed = seed
        self.brute_force_cells = brute_force_cells
        self.min_similarity = min_similarity
        self.store = store
        #: Whether the last :meth:`candidate_pairs` call used the LSH index
        #: (``False`` means the exact brute-force path ran).
        self.last_used_lsh = False
        #: Durable-index accounting: code matrices loaded from the store,
        #: computed from scratch, and published.  ``index_builds == 0`` over a
        #: warm run is the "zero ANN rebuilds" guarantee the engine surfaces.
        self.index_loads = 0
        self.index_builds = 0
        self.index_saves = 0
        self._embedder_fp = embedder_fingerprint(embedder.name, embedder.dimension)
        self._params_fp = ann_params_fingerprint(n_tables, n_bits, seed)
        # Hyperplanes are a function of (seed, tables, bits, dimension) only,
        # so they are drawn once and shared by every candidate_pairs call.
        self._planes: Dict[int, np.ndarray] = {}

    # -- public API -----------------------------------------------------------------
    def candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[Tuple[int, int]]:
        """Sorted embedding-neighbour index pairs between the two value lists."""
        if not left_values or not right_values:
            self.last_used_lsh = False
            return []
        left_vectors = self.embedder.embed_many(list(left_values))
        right_vectors = self.embedder.embed_many(list(right_values))
        if len(left_values) * len(right_values) <= self.brute_force_cells:
            self.last_used_lsh = False
            pairs = self._brute_force_pairs(left_vectors, right_vectors)
        else:
            self.last_used_lsh = True
            if self.store is not None:
                # The same text conversion embed_many applies, so the ordered
                # corpus fingerprint names exactly the rows that were embedded.
                left_texts = ["" if value is None else str(value) for value in left_values]
                right_texts = ["" if value is None else str(value) for value in right_values]
            else:
                left_texts = right_texts = None
            pairs = self._lsh_pairs(left_vectors, right_vectors, left_texts, right_texts)
        return sorted(pairs)

    # -- exact path -----------------------------------------------------------------
    def _brute_force_pairs(
        self, left_vectors: np.ndarray, right_vectors: np.ndarray
    ) -> Set[Tuple[int, int]]:
        """Exact top-k in both directions over one dense similarity matrix.

        Both directions matter: per-row top-k alone can starve a right value
        whose nearest lefts all have closer neighbours of their own, and a
        starved value never enters the candidate graph at all.
        """
        similarities = left_vectors @ right_vectors.T
        floor = self.min_similarity
        pairs: Set[Tuple[int, int]] = set()
        k_rows = min(self.top_k, similarities.shape[1])
        # Stable argsort on the negated similarities: ties resolve toward the
        # smaller index, so the selection is deterministic.
        row_order = np.argsort(-similarities, axis=1, kind="stable")[:, :k_rows]
        for left_index in range(similarities.shape[0]):
            for right_index in row_order[left_index]:
                if similarities[left_index, right_index] > floor:
                    pairs.add((left_index, int(right_index)))
        k_cols = min(self.top_k, similarities.shape[0])
        column_order = np.argsort(-similarities.T, axis=1, kind="stable")[:, :k_cols]
        for right_index in range(similarities.shape[1]):
            for left_index in column_order[right_index]:
                if similarities[left_index, right_index] > floor:
                    pairs.add((int(left_index), right_index))
        return pairs

    # -- LSH path -------------------------------------------------------------------
    def _hyperplanes(self, dimension: int) -> np.ndarray:
        """The ``(n_tables, n_bits, dimension)`` random hyperplane stack."""
        planes = self._planes.get(dimension)
        if planes is None:
            rng = np.random.default_rng(self.seed)
            planes = rng.standard_normal((self.n_tables, self.n_bits, dimension))
            self._planes[dimension] = planes
        return planes

    def _codes(self, vectors: np.ndarray, planes: np.ndarray) -> np.ndarray:
        """Per-table integer hash codes, shape ``(n_tables, n_values)``."""
        weights = (1 << np.arange(self.n_bits, dtype=np.int64))
        codes = np.empty((self.n_tables, vectors.shape[0]), dtype=np.int64)
        for table in range(self.n_tables):
            bits = vectors @ planes[table].T >= 0.0
            codes[table] = bits @ weights
        return codes

    def _durable_codes(
        self, vectors: np.ndarray, texts: Optional[List[str]], dimension: int
    ) -> np.ndarray:
        """Load the value list's code matrix from the store, or build it.

        A stored index short-circuits the hash computation only; a cache miss
        (or no store at all) computes the codes exactly as before and — when
        the store is writable — publishes them for the next run.  On a hit
        the stored hyperplanes seed the in-memory memo, so any codes built
        later in this process hash against the very same planes.
        """
        if self.store is None or texts is None:
            self.index_builds += 1
            return self._codes(vectors, self._hyperplanes(dimension))
        corpus_fp = corpus_fingerprint(texts, ordered=True)
        loaded = self.store.load_ann_index(self._embedder_fp, self._params_fp, corpus_fp)
        if loaded is not None:
            planes, codes = loaded
            if planes.shape == (self.n_tables, self.n_bits, dimension) and codes.shape == (
                self.n_tables,
                vectors.shape[0],
            ):
                self._planes.setdefault(dimension, planes)
                self.index_loads += 1
                return codes
        planes = self._hyperplanes(dimension)
        codes = self._codes(vectors, planes)
        self.index_builds += 1
        if self.store.can_write and self.store.save_ann_index(
            self._embedder_fp, self._params_fp, corpus_fp, planes, codes
        ):
            self.index_saves += 1
        return codes

    def _lsh_pairs(
        self,
        left_vectors: np.ndarray,
        right_vectors: np.ndarray,
        left_texts: Optional[List[str]] = None,
        right_texts: Optional[List[str]] = None,
    ) -> Set[Tuple[int, int]]:
        """Multi-table, single-bit-multiprobe LSH retrieval, both directions.

        Like the brute-force path, retrieval runs symmetrically: left values
        probe the right-side tables *and* right values probe the left-side
        tables.  Per-left top-k alone would starve a right value whose
        nearest lefts all have ``top_k`` closer neighbours of their own —
        and a starved value never enters the candidate graph at all.
        """
        dimension = left_vectors.shape[1]
        left_codes = self._durable_codes(left_vectors, left_texts, dimension)
        right_codes = self._durable_codes(right_vectors, right_texts, dimension)
        pairs = self._probe_direction(left_vectors, left_codes, right_vectors, right_codes)
        reverse = self._probe_direction(right_vectors, right_codes, left_vectors, left_codes)
        pairs.update((left_index, right_index) for right_index, left_index in reverse)
        return pairs

    def _probe_direction(
        self,
        query_vectors: np.ndarray,
        query_codes: np.ndarray,
        index_vectors: np.ndarray,
        index_codes: np.ndarray,
    ) -> Set[Tuple[int, int]]:
        """``(query, index)`` pairs: each query keeps its top-k bucket-mates."""
        buckets: List[Dict[int, List[int]]] = []
        for table in range(self.n_tables):
            table_buckets: Dict[int, List[int]] = {}
            for index_position, code in enumerate(index_codes[table]):
                table_buckets.setdefault(int(code), []).append(index_position)
            buckets.append(table_buckets)

        flips = [1 << bit for bit in range(self.n_bits)]
        pairs: Set[Tuple[int, int]] = set()
        candidate_set: Set[int] = set()
        for query_index in range(query_vectors.shape[0]):
            candidate_set.clear()
            for table in range(self.n_tables):
                table_buckets = buckets[table]
                code = int(query_codes[table][query_index])
                bucket = table_buckets.get(code)
                if bucket:
                    candidate_set.update(bucket)
                # Single-bit multiprobe: a near-neighbour pair that straddles
                # one hyperplane still collides, which is what lifts recall
                # at moderate similarities (see module docstring).
                for flip in flips:
                    bucket = table_buckets.get(code ^ flip)
                    if bucket:
                        candidate_set.update(bucket)
            if not candidate_set:
                continue
            candidates = np.fromiter(sorted(candidate_set), dtype=np.int64)
            similarities = index_vectors[candidates] @ query_vectors[query_index]
            order = np.argsort(-similarities, kind="stable")[: self.top_k]
            for position in order:
                if similarities[position] > self.min_similarity:
                    pairs.add((query_index, int(candidates[position])))
        return pairs

    def __repr__(self) -> str:
        return (
            f"SemanticBlocker(top_k={self.top_k}, n_tables={self.n_tables}, "
            f"n_bits={self.n_bits}, seed={self.seed})"
        )
