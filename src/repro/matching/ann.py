"""Approximate-nearest-neighbour semantic blocking over value embeddings.

Surface blocking keys (:class:`~repro.matching.blocking.ValueBlocker`'s
n-grams, token prefixes and lexicon concepts) can only propose a candidate
pair when the two values share some *surface* evidence.  Pairs whose strings
share no characters at all — out-of-lexicon synonyms, abbreviations of names
the lexicon does not know — are exactly the fuzzy matches the paper's
embedding-distance matching is supposed to recover, and surface blocking
silently drops them before they are ever scored.

:class:`SemanticBlocker` closes that gap with a second, *semantic* candidate
channel: it indexes the value embeddings themselves (the same unit vectors
``embed_many`` already computes for scoring, so a warm
:class:`~repro.embeddings.base.EmbeddingCache` makes indexing free) and emits,
for every left value, its approximate nearest right values.  The candidate
pairs are unioned with the surface channel's pairs by
:class:`~repro.matching.blocking.BlockedValueMatcher` before component
decomposition, so the downstream engine is unchanged — the semantic channel
only ever *adds* edges to the candidate graph.

Three retrieval strategies, chosen per column pair by size and shape:

* **Brute-force top-k** (small pairs): one dense similarity matrix, exact
  top-k in both directions.  Below ``brute_force_cells`` cells this is cheaper
  and strictly more accurate than any index.
* **Random-hyperplane LSH** (large pairs): ``n_tables`` independent hash
  tables of ``n_bits`` signed random projections each.  Values whose codes
  collide in any table (exactly, or — via single-bit multiprobe — at Hamming
  distance 1) become candidates; each value keeps its ``top_k`` nearest by
  true cosine similarity among its collision set, probing in both directions
  (left over the right tables and vice versa) so neither side can be starved
  by the other's top-k competition.  Numpy-only, no external index library.
* **Seeded k-means IVF** (large, *skewed* pairs): hyperplane buckets degrade
  when the embeddings concentrate — duplicate-heavy or low-variance columns
  push most values into a handful of buckets, and probing degenerates toward
  the dense cross product.  When the largest LSH bucket of either side holds
  more than ``skew_threshold`` of its values (or when ``ann_index="ivf"`` is
  forced), retrieval switches to an inverted-file index: a few Lloyd
  iterations of seeded k-means over the index side, each query probing its
  ``IVF_PROBES`` nearest centroids.  Same ``top_k``/similarity-floor
  semantics, same both-direction probing.

The probe phase is fully vectorised: all query codes and their single-bit
multiprobe variants are one ``(n_queries, n_bits + 1)`` XOR against the
precomputed flip masks per table, bucket membership is a
``np.searchsorted`` span over the stably-sorted index codes, and the per-query
top-k is one stable lexsort over the deduplicated ``(query, candidate)``
pairs.  The only remaining per-query step is the BLAS matvec scoring each
query's candidate rows, kept operand-for-operand identical to the old loop
so similarity bits — and therefore tie-breaks — match it exactly (see
``_select_top_k``).  ``_probe_direction_reference`` /
``_brute_force_reference`` keep the original per-query loops as the test
oracle (and the benchmark's pre-vectorisation baseline); the equivalence
property tests assert byte-identical candidate sets against them.

Determinism: hyperplanes and k-means seeding come from a seeded
:func:`numpy.random.default_rng`, bucket iteration follows input positions,
and every top-k selection breaks ties by index via stable sorts — two runs
with the same seed over the same values produce identical candidate sets, on
any backend.

With an :class:`~repro.storage.store.ArtifactStore` attached, the index state
becomes durable: the hyperplane stack and each value list's code matrix (and,
for IVF, the centroid matrix and cluster assignments) are published under
``(embedder fingerprint, parameter fingerprint, ordered corpus fingerprint)``
and loaded back on the next encounter of the same corpus — a restarted engine
re-blocks a known column without rebuilding a single code.  ``index_loads`` /
``index_builds`` / ``index_saves`` count what happened; the stored artifact
only short-circuits the hash/cluster computation, so candidates are identical
with and without the store.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embeddings.base import ValueEmbedder, embedding_text
from repro.storage.fingerprint import (
    ann_params_fingerprint,
    corpus_fingerprint,
    embedder_fingerprint,
    ivf_params_fingerprint,
)
from repro.storage.store import ArtifactStore

#: Default number of LSH hash tables.  More tables raise recall (a pair only
#: needs to collide once) at linearly more probing work.
DEFAULT_ANN_TABLES = 8

#: Default number of random-hyperplane bits per table.  Fewer bits mean
#: larger buckets: higher recall, more true-similarity evaluations.  With
#: single-bit multiprobe, 8 bits keeps pairs at cosine similarity ≈0.6 —
#: the regime of surface-disjoint synonyms under the simulated LLM
#: embedders — above ~90% collision probability across the default tables.
DEFAULT_ANN_BITS = 8

#: Default candidates kept per probing value (nearest by true cosine
#: similarity among the collision set, or exact top-k on the brute path;
#: both sides probe, so the pair budget is ~``top_k × (|left| + |right|)``).
DEFAULT_ANN_TOP_K = 5

#: Default seed of the random hyperplanes (and of the IVF k-means seeding).
#: Fixed so that two matchers built independently (e.g. one per engine worker
#: thread) block identically.
DEFAULT_ANN_SEED = 97

#: Column pairs with at most this many cells (``|left| × |right|``) take the
#: exact brute-force path; above it the configured index engages.
DEFAULT_BRUTE_FORCE_CELLS = 250_000

#: Index kinds accepted by :class:`SemanticBlocker` (and the ``ann_index``
#: configuration knob).  ``"lsh"`` still falls back to IVF per column pair
#: when the hyperplane buckets skew past ``skew_threshold``.
ANN_INDEX_KINDS = ("lsh", "ivf")

#: Largest-LSH-bucket share of a value list above which ``ann_index="lsh"``
#: falls back to the IVF index for that column pair.  At the default 8 bits a
#: uniform corpus puts ~1/256 of its values in each bucket; a bucket holding a
#: quarter of the corpus means the hyperplanes are not separating it and
#: probing is degenerating toward the dense cross product.
DEFAULT_SKEW_THRESHOLD = 0.25

#: Value lists smaller than this report a bucket skew of 0.0 and never
#: trigger the IVF fallback: with a handful of values the largest-bucket
#: share is quantised so coarsely (3 of 12 values colliding already reads as
#: 0.25) that it measures luck, not hyperplane degradation — and lists this
#: small are within a constant factor of the brute-force cutoff anyway.
SKEW_MIN_VALUES = 64

#: Lloyd iterations of the seeded k-means IVF build.  Few on purpose: the
#: index only proposes candidates (true similarities re-rank them), so a
#: roughly converged clustering is as good as a converged one — and the
#: iteration count is part of the IVF artifact fingerprint, so it must not
#: drift silently.
IVF_ITERATIONS = 5

#: Nearest centroids each query probes at IVF retrieval time.  Retrieval-only
#: (not part of the artifact fingerprint), like ``top_k``.
IVF_PROBES = 4

def _ivf_cluster_count(n_values: int) -> int:
    """Cluster count of an IVF index over ``n_values`` vectors (≈ √n)."""
    return max(1, min(n_values, int(round(math.sqrt(n_values)))))


def _expand_spans(
    lo: np.ndarray, hi: np.ndarray, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-(query, probe) ``[lo, hi)`` spans into candidate pairs.

    ``lo``/``hi`` are ``(n_queries, n_probes)`` searchsorted bounds into a
    stably-sorted code (or cluster-assignment) array; ``order`` maps sorted
    positions back to original index positions.  Returns ``(query_ids,
    candidate_ids)`` covering every span element — the vectorised equivalent
    of the old per-query bucket union, before deduplication.
    """
    lengths = (hi - lo).ravel().astype(np.int64)
    total = int(lengths.sum())
    n_queries = lo.shape[0]
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = lo.ravel().astype(np.int64)
    # Positions within the concatenated spans: a ramp 0..total minus each
    # span's cumulative offset, plus its start — one allocation, no loop.
    offsets = np.cumsum(lengths) - lengths
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    flat += np.repeat(starts, lengths)
    per_query = lengths.reshape(n_queries, -1).sum(axis=1)
    query_ids = np.repeat(np.arange(n_queries, dtype=np.int64), per_query)
    return query_ids, np.asarray(order, dtype=np.int64)[flat]


def _probe_direction_reference(
    query_vectors: np.ndarray,
    query_codes: np.ndarray,
    index_vectors: np.ndarray,
    index_codes: np.ndarray,
    *,
    n_tables: int,
    n_bits: int,
    top_k: int,
    min_similarity: float,
) -> Set[Tuple[int, int]]:
    """The original per-query Python probe loop, kept as the test oracle.

    This is the exact pre-vectorisation implementation (dict buckets, per
    query set union over tables and bit flips, stable argsort top-k).  The
    equivalence property tests assert the vectorised
    :meth:`SemanticBlocker._probe_direction` returns byte-identical pairs,
    and the ANN benchmark times it as the speedup baseline.  Not called on
    any production path.
    """
    buckets: List[dict] = []
    for table in range(n_tables):
        table_buckets: dict = {}
        for index_position, code in enumerate(index_codes[table]):
            table_buckets.setdefault(int(code), []).append(index_position)
        buckets.append(table_buckets)

    flips = [1 << bit for bit in range(n_bits)]
    pairs: Set[Tuple[int, int]] = set()
    candidate_set: Set[int] = set()
    for query_index in range(query_vectors.shape[0]):
        candidate_set.clear()
        for table in range(n_tables):
            table_buckets = buckets[table]
            code = int(query_codes[table][query_index])
            bucket = table_buckets.get(code)
            if bucket:
                candidate_set.update(bucket)
            for flip in flips:
                bucket = table_buckets.get(code ^ flip)
                if bucket:
                    candidate_set.update(bucket)
        if not candidate_set:
            continue
        candidates = np.fromiter(sorted(candidate_set), dtype=np.int64)
        similarities = index_vectors[candidates] @ query_vectors[query_index]
        order = np.argsort(-similarities, kind="stable")[:top_k]
        for position in order:
            if similarities[position] > min_similarity:
                pairs.add((query_index, int(candidates[position])))
    return pairs


def _probe_candidates_reference(
    query_codes: np.ndarray,
    index_codes: np.ndarray,
    *,
    n_tables: int,
    n_bits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The old loop's probe phase only: dict buckets, set unions, ``sorted``.

    The candidate-retrieval half of :func:`_probe_direction_reference`,
    stopping where the similarity work starts.  Returns the ``(query_ids,
    candidate_ids)`` pair arrays in the same ``(query, candidate)`` order
    :meth:`SemanticBlocker._probe_candidates` emits, so the ANN benchmark can
    assert byte-identical candidate sets and time the probe phase in
    isolation.  Not called on any production path.
    """
    buckets: List[dict] = []
    for table in range(n_tables):
        table_buckets: dict = {}
        for index_position, code in enumerate(index_codes[table]):
            table_buckets.setdefault(int(code), []).append(index_position)
        buckets.append(table_buckets)

    flips = [1 << bit for bit in range(n_bits)]
    query_parts: List[np.ndarray] = []
    candidate_parts: List[np.ndarray] = []
    candidate_set: Set[int] = set()
    for query_index in range(query_codes.shape[1]):
        candidate_set.clear()
        for table in range(n_tables):
            table_buckets = buckets[table]
            code = int(query_codes[table][query_index])
            bucket = table_buckets.get(code)
            if bucket:
                candidate_set.update(bucket)
            for flip in flips:
                bucket = table_buckets.get(code ^ flip)
                if bucket:
                    candidate_set.update(bucket)
        if not candidate_set:
            continue
        candidates = np.fromiter(sorted(candidate_set), dtype=np.int64)
        candidate_parts.append(candidates)
        query_parts.append(np.full(len(candidates), query_index, dtype=np.int64))
    if not candidate_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(query_parts), np.concatenate(candidate_parts)


def _brute_force_reference(
    left_vectors: np.ndarray,
    right_vectors: np.ndarray,
    *,
    top_k: int,
    min_similarity: float,
) -> Set[Tuple[int, int]]:
    """The original row/column-loop brute-force top-k, kept as the test oracle."""
    similarities = left_vectors @ right_vectors.T
    pairs: Set[Tuple[int, int]] = set()
    k_rows = min(top_k, similarities.shape[1])
    row_order = np.argsort(-similarities, axis=1, kind="stable")[:, :k_rows]
    for left_index in range(similarities.shape[0]):
        for right_index in row_order[left_index]:
            if similarities[left_index, right_index] > min_similarity:
                pairs.add((left_index, int(right_index)))
    k_cols = min(top_k, similarities.shape[0])
    column_order = np.argsort(-similarities.T, axis=1, kind="stable")[:, :k_cols]
    for right_index in range(similarities.shape[1]):
        for left_index in column_order[right_index]:
            if similarities[left_index, right_index] > min_similarity:
                pairs.add((int(left_index), right_index))
    return pairs


class SemanticBlocker:
    """Emits candidate pairs of embedding-nearest values.

    The interface mirrors :meth:`ValueBlocker.candidate_pairs
    <repro.matching.blocking.ValueBlocker.candidate_pairs>`: a sorted list of
    ``(left_index, right_index)`` pairs.  The blocker never decides matches —
    it only proposes pairs for the assignment engine to score, so a loose
    ``top_k`` costs extra scored cells, never wrong matches.

    Parameters
    ----------
    embedder:
        Source of the value embeddings.  Lookups go through
        ``embedder.embed_many``, so indexing reuses (and warms) the
        embedder's cache — inside an :class:`~repro.core.engine.
        IntegrationEngine` the vectors are typically already cached and
        indexing re-embeds nothing.
    top_k:
        Candidates emitted per probing value (each side probes the other).
    n_tables / n_bits:
        LSH shape (see module docstring).  Only consulted above the
        brute-force cutoff.
    seed:
        Seed of the random hyperplanes and of the IVF k-means seeding; same
        seed, same candidates.
    brute_force_cells:
        Cell-count cutoff below which the exact dense path runs instead of
        an index.
    min_similarity:
        Cosine-similarity floor on emitted pairs.  A top-k list is padded
        with whatever neighbours exist, however distant; below-floor pairs
        are dropped because they cannot survive the matcher's threshold θ
        anyway (distance ``1 - sim ≥ θ``) — and, worse, keeping them welds
        unrelated values into one giant connected component, inflating
        ``pairs_scored`` toward the dense cross product.  Callers that know
        θ should pass ``1 - θ`` (the blocked matcher's configuration layer
        does); ``0.0`` disables the floor.
    ann_index:
        ``"lsh"`` (the default) or ``"ivf"``.  ``"lsh"`` still switches to
        the IVF index per column pair when either side's hyperplane buckets
        skew past ``skew_threshold`` (see :attr:`last_bucket_skew`);
        ``"ivf"`` forces the inverted-file index for every indexed pair.
    skew_threshold:
        Largest-bucket share triggering the LSH→IVF fallback, in ``(0, 1]``
        (``1.0`` effectively disables the fallback).
    store:
        Optional :class:`~repro.storage.store.ArtifactStore` making the
        index state durable.  LSH codes are keyed by the *ordered* corpus
        fingerprint of the value list (column ``i`` codes value ``i``), the
        embedder fingerprint and the ``(n_tables, n_bits, seed)`` parameter
        fingerprint; IVF centroids/assignments by the ``(iterations, seed)``
        fingerprint.  ``top_k`` / ``min_similarity`` / probe width are
        retrieval-time knobs and deliberately not part of any key.  The
        store never changes the emitted candidates — only whether index
        state is computed or loaded.
    """

    def __init__(
        self,
        embedder: ValueEmbedder,
        top_k: int = DEFAULT_ANN_TOP_K,
        n_tables: int = DEFAULT_ANN_TABLES,
        n_bits: int = DEFAULT_ANN_BITS,
        seed: int = DEFAULT_ANN_SEED,
        brute_force_cells: int = DEFAULT_BRUTE_FORCE_CELLS,
        min_similarity: float = 0.0,
        ann_index: str = "lsh",
        skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        if not 1 <= n_bits <= 30:
            raise ValueError(f"n_bits must be in [1, 30], got {n_bits}")
        if brute_force_cells < 0:
            raise ValueError(f"brute_force_cells must be >= 0, got {brute_force_cells}")
        if not 0.0 <= min_similarity < 1.0:
            raise ValueError(f"min_similarity must be in [0, 1), got {min_similarity}")
        if ann_index not in ANN_INDEX_KINDS:
            raise ValueError(
                f"ann_index must be one of {list(ANN_INDEX_KINDS)}, got {ann_index!r}"
            )
        if not 0.0 < skew_threshold <= 1.0:
            raise ValueError(f"skew_threshold must be in (0, 1], got {skew_threshold}")
        self.embedder = embedder
        self.top_k = top_k
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.seed = seed
        self.brute_force_cells = brute_force_cells
        self.min_similarity = min_similarity
        self.ann_index = ann_index
        self.skew_threshold = skew_threshold
        self.store = store
        #: Whether the last :meth:`candidate_pairs` call used an ANN index
        #: (``False`` means the exact brute-force path ran).
        self.last_used_lsh = False
        #: Index kind of the last call: ``""`` (no call yet), ``"brute"``,
        #: ``"lsh"`` or ``"ivf"`` — ``"ivf"`` either forced or by skew
        #: fallback; :attr:`skew_fallbacks` distinguishes the two.
        self.last_index_kind = ""
        #: Largest LSH bucket share observed on the last LSH-routed call
        #: (``0.0`` when no codes were computed — brute path or forced IVF).
        self.last_bucket_skew = 0.0
        #: Deduplicated ``(query, candidate)`` similarity evaluations of the
        #: last call's probe phase, both directions — the probe-cost counter
        #: surfaced in ``BlockingStatistics``.
        self.last_probe_candidates = 0
        #: Cumulative count of LSH→IVF skew fallbacks over this blocker's
        #: lifetime (one per direction-index whose buckets tripped the
        #: threshold — the per-call delta lands in ``BlockingStatistics``).
        self.skew_fallbacks = 0
        #: Durable-index accounting: index state loaded from the store,
        #: computed from scratch, and published.  ``index_builds == 0`` over a
        #: warm run is the "zero ANN rebuilds" guarantee the engine surfaces.
        self.index_loads = 0
        self.index_builds = 0
        self.index_saves = 0
        self._embedder_fp = embedder_fingerprint(embedder.name, embedder.dimension)
        self._params_fp = ann_params_fingerprint(n_tables, n_bits, seed)
        self._ivf_params_fp = ivf_params_fingerprint(IVF_ITERATIONS, seed)
        # Hyperplanes are a function of (seed, tables, bits, dimension) only,
        # so they are drawn once and shared by every candidate_pairs call.
        self._planes: dict = {}

    # -- public API -----------------------------------------------------------------
    def candidate_pairs(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> List[Tuple[int, int]]:
        """Sorted embedding-neighbour index pairs between the two value lists."""
        self.last_bucket_skew = 0.0
        self.last_probe_candidates = 0
        if not left_values or not right_values:
            self.last_used_lsh = False
            self.last_index_kind = "brute"
            return []
        # One text conversion, shared by the embedding lookup and the corpus
        # fingerprints — embedding_text is exactly what embed_many applies,
        # so the ordered fingerprint names exactly the rows embedded below.
        left_texts = [embedding_text(value) for value in left_values]
        right_texts = [embedding_text(value) for value in right_values]
        left_vectors = self.embedder.embed_many(left_texts)
        right_vectors = self.embedder.embed_many(right_texts)
        if len(left_values) * len(right_values) <= self.brute_force_cells:
            self.last_used_lsh = False
            self.last_index_kind = "brute"
            pairs = self._brute_force_pairs(left_vectors, right_vectors)
        else:
            self.last_used_lsh = True
            if self.store is None:
                left_texts = right_texts = None  # fingerprints unused
            pairs = self._indexed_pairs(left_vectors, right_vectors, left_texts, right_texts)
        return sorted(pairs)

    # -- exact path -----------------------------------------------------------------
    def _brute_force_pairs(
        self, left_vectors: np.ndarray, right_vectors: np.ndarray
    ) -> Set[Tuple[int, int]]:
        """Exact top-k in both directions over one dense similarity matrix.

        Both directions matter: per-row top-k alone can starve a right value
        whose nearest lefts all have closer neighbours of their own, and a
        starved value never enters the candidate graph at all.

        Selection is ``np.argpartition``-based: one O(n) partition per row
        instead of a full sort, with a stable-argsort fixup only for rows
        whose k-th similarity ties across the selection boundary — those are
        the only rows where the partition's arbitrary tie choice could differ
        from the old stable-sort loop (oracle:
        :func:`_brute_force_reference`).
        """
        similarities = left_vectors @ right_vectors.T
        pairs = self._dense_top_k_rows(similarities)
        for right_index, left_index in self._dense_top_k_rows(similarities.T):
            pairs.add((left_index, right_index))
        return pairs

    def _dense_top_k_rows(self, similarities: np.ndarray) -> Set[Tuple[int, int]]:
        """Per-row exact top-k of a dense similarity matrix, as index pairs."""
        n_rows, n_cols = similarities.shape
        floor = self.min_similarity
        k = min(self.top_k, n_cols)
        if k == n_cols:
            rows, cols = np.nonzero(similarities > floor)
            return set(zip(rows.tolist(), cols.tolist()))
        selected = np.argpartition(-similarities, k - 1, axis=1)[:, :k]
        selected_sims = np.take_along_axis(similarities, selected, axis=1)
        kth = selected_sims.min(axis=1)
        # A row needs the stable tie-break only when values equal to its k-th
        # similarity straddle the boundary; otherwise the top-k *set* is
        # unique and the partition already found it.
        ambiguous = np.flatnonzero((similarities >= kth[:, None]).sum(axis=1) > k)
        if len(ambiguous):
            fixed = np.argsort(-similarities[ambiguous], axis=1, kind="stable")[:, :k]
            selected[ambiguous] = fixed
            selected_sims[ambiguous] = np.take_along_axis(
                similarities[ambiguous], fixed, axis=1
            )
        keep = selected_sims > floor
        row_ids = np.broadcast_to(np.arange(n_rows)[:, None], (n_rows, k))[keep]
        return set(zip(row_ids.tolist(), selected[keep].tolist()))

    # -- indexed paths ----------------------------------------------------------------
    def _indexed_pairs(
        self,
        left_vectors: np.ndarray,
        right_vectors: np.ndarray,
        left_texts: Optional[List[str]],
        right_texts: Optional[List[str]],
    ) -> Set[Tuple[int, int]]:
        """Route one above-cutoff column pair to the LSH or IVF index.

        ``ann_index="lsh"`` computes the codes first and measures bucket
        occupancy; a side whose largest bucket exceeds ``skew_threshold``
        falls back to IVF (counted in :attr:`skew_fallbacks`) because its
        hyperplanes are not separating the corpus.  ``ann_index="ivf"``
        skips the codes entirely.
        """
        kind = self.ann_index
        if kind == "lsh":
            dimension = left_vectors.shape[1]
            left_codes = self._durable_codes(left_vectors, left_texts, dimension)
            right_codes = self._durable_codes(right_vectors, right_texts, dimension)
            skew = max(self._bucket_skew(left_codes), self._bucket_skew(right_codes))
            self.last_bucket_skew = skew
            if skew > self.skew_threshold:
                self.skew_fallbacks += 1
                kind = "ivf"
            else:
                self.last_index_kind = "lsh"
                pairs = self._probe_direction(
                    left_vectors, left_codes, right_vectors, right_codes
                )
                reverse = self._probe_direction(
                    right_vectors, right_codes, left_vectors, left_codes
                )
                pairs.update((left, right) for right, left in reverse)
                return pairs
        self.last_index_kind = "ivf"
        pairs = self._ivf_probe(left_vectors, right_vectors, right_texts)
        reverse = self._ivf_probe(right_vectors, left_vectors, left_texts)
        pairs.update((left, right) for right, left in reverse)
        return pairs

    @staticmethod
    def _bucket_skew(codes: np.ndarray) -> float:
        """Largest bucket share over all tables of one side's code matrix.

        Sides below :data:`SKEW_MIN_VALUES` report ``0.0`` — too few values
        for the share to mean anything (see the constant's docstring).
        """
        n_values = codes.shape[1]
        if n_values < SKEW_MIN_VALUES:
            return 0.0
        worst = 0
        for table_codes in codes:
            _, counts = np.unique(np.asarray(table_codes), return_counts=True)
            worst = max(worst, int(counts.max()))
        return worst / n_values

    # -- LSH index --------------------------------------------------------------------
    def _hyperplanes(self, dimension: int) -> np.ndarray:
        """The ``(n_tables, n_bits, dimension)`` random hyperplane stack."""
        planes = self._planes.get(dimension)
        if planes is None:
            rng = np.random.default_rng(self.seed)
            planes = rng.standard_normal((self.n_tables, self.n_bits, dimension))
            self._planes[dimension] = planes
        return planes

    def _codes(self, vectors: np.ndarray, planes: np.ndarray) -> np.ndarray:
        """Per-table integer hash codes, shape ``(n_tables, n_values)``."""
        weights = (1 << np.arange(self.n_bits, dtype=np.int64))
        codes = np.empty((self.n_tables, vectors.shape[0]), dtype=np.int64)
        for table in range(self.n_tables):
            bits = vectors @ planes[table].T >= 0.0
            codes[table] = bits @ weights
        return codes

    def _durable_codes(
        self, vectors: np.ndarray, texts: Optional[List[str]], dimension: int
    ) -> np.ndarray:
        """Load the value list's code matrix from the store, or build it.

        A stored index short-circuits the hash computation only; a cache miss
        (or no store at all) computes the codes exactly as before and — when
        the store is writable — publishes them for the next run.  On a hit
        the stored hyperplanes seed the in-memory memo, so any codes built
        later in this process hash against the very same planes.
        """
        if self.store is None or texts is None:
            self.index_builds += 1
            return self._codes(vectors, self._hyperplanes(dimension))
        corpus_fp = corpus_fingerprint(texts, ordered=True)
        loaded = self.store.load_ann_index(self._embedder_fp, self._params_fp, corpus_fp)
        if loaded is not None:
            planes, codes = loaded
            if planes.shape == (self.n_tables, self.n_bits, dimension) and codes.shape == (
                self.n_tables,
                vectors.shape[0],
            ):
                self._planes.setdefault(dimension, planes)
                self.index_loads += 1
                return codes
        planes = self._hyperplanes(dimension)
        codes = self._codes(vectors, planes)
        self.index_builds += 1
        if self.store.can_write and self.store.save_ann_index(
            self._embedder_fp, self._params_fp, corpus_fp, planes, codes
        ):
            self.index_saves += 1
        return codes

    def _probe_direction(
        self,
        query_vectors: np.ndarray,
        query_codes: np.ndarray,
        index_vectors: np.ndarray,
        index_codes: np.ndarray,
    ) -> Set[Tuple[int, int]]:
        """``(query, index)`` pairs: each query keeps its top-k bucket-mates.

        Fully vectorised, byte-identical to the old per-query loop
        (:func:`_probe_direction_reference`, property-tested): per table the
        index codes are stably sorted once, every query's code and its
        ``n_bits`` single-bit flips become one ``(n_queries, n_bits + 1)``
        XOR, and bucket membership is a pair of ``searchsorted`` calls whose
        spans are expanded and deduplicated with ``np.unique`` — the same
        candidate sets the dict buckets produced, in sorted candidate order.
        """
        query_ids, candidate_ids = self._probe_candidates(query_codes, index_codes)
        return self._select_top_k(
            query_ids, candidate_ids, query_vectors, index_vectors
        )

    def _probe_candidates(
        self, query_codes: np.ndarray, index_codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Deduplicated ``(query, candidate)`` bucket-mate ids, both sorted.

        The probe phase proper — everything the old dict-bucket loop did
        before touching a similarity, as matrix ops.  Pairs come back sorted
        by ``(query, candidate)``: exactly each query's ``sorted()``
        candidate set under the old loop, so the benchmark asserts
        byte-identity against :func:`_probe_candidates_reference` with a
        plain array comparison.
        """
        n_index = index_codes.shape[1]
        masks = np.concatenate(
            (np.zeros(1, dtype=np.int64), 1 << np.arange(self.n_bits, dtype=np.int64))
        )
        # Up to ~1M distinct codes a dense offset table (bincount + cumsum)
        # answers every probe with one gather instead of a binary search —
        # the searchsorted pair is kept for wider codes, where the dense
        # table would dwarf the code arrays themselves.
        dense_offsets = self.n_bits <= 20
        key_parts: List[np.ndarray] = []
        for table in range(self.n_tables):
            table_codes = np.asarray(index_codes[table])
            order = np.argsort(table_codes, kind="stable")
            probes = np.asarray(query_codes[table])[:, None] ^ masks[None, :]
            if dense_offsets:
                offsets = np.zeros((1 << self.n_bits) + 1, dtype=np.int64)
                np.cumsum(
                    np.bincount(table_codes, minlength=1 << self.n_bits),
                    out=offsets[1:],
                )
                lo = offsets[probes]
                hi = offsets[probes + 1]
            else:
                sorted_codes = table_codes[order]
                lo = np.searchsorted(sorted_codes, probes, side="left")
                hi = np.searchsorted(sorted_codes, probes, side="right")
            query_ids, candidate_ids = _expand_spans(lo, hi, order)
            if len(query_ids):
                key_parts.append(query_ids * n_index + candidate_ids)
        if not key_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Sort-based dedupe: same sorted-ascending keys np.unique would give,
        # several times faster than its hash path at probe volumes (millions
        # of combined keys), and the in-place sort reuses the concat buffer.
        keys = np.concatenate(key_parts) if len(key_parts) > 1 else key_parts[0]
        keys.sort()
        keys = keys[np.r_[True, keys[1:] != keys[:-1]]]
        return keys // n_index, keys % n_index

    # -- IVF index --------------------------------------------------------------------
    def _build_ivf(self, vectors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Seeded k-means over one side's vectors: ``(centroids, assignments)``.

        Deterministic end to end: seeded sampled initialisation, a fixed
        :data:`IVF_ITERATIONS` Lloyd iterations, first-occurrence ``argmax``
        tie-breaks, and empty clusters keep their previous centroid.  The
        centroids are renormalised to unit length so centroid similarity is
        the same cosine the retrieval re-ranking uses.
        """
        n_values = vectors.shape[0]
        n_clusters = _ivf_cluster_count(n_values)
        rng = np.random.default_rng(self.seed)
        seeds = np.sort(rng.choice(n_values, size=n_clusters, replace=False))
        centroids = np.array(vectors[seeds], dtype=np.float64)
        assignments = np.zeros(n_values, dtype=np.int64)
        for _ in range(IVF_ITERATIONS):
            assignments = np.argmax(vectors @ centroids.T, axis=1)
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignments, vectors)
            norms = np.linalg.norm(sums, axis=1)
            populated = norms > 0.0
            centroids[populated] = sums[populated] / norms[populated, None]
        assignments = np.argmax(vectors @ centroids.T, axis=1).astype(np.int64)
        return centroids, assignments

    def _durable_ivf(
        self, vectors: np.ndarray, texts: Optional[List[str]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Load one side's IVF state from the store, or build and publish it."""
        if self.store is None or texts is None:
            self.index_builds += 1
            return self._build_ivf(vectors)
        corpus_fp = corpus_fingerprint(texts, ordered=True)
        loaded = self.store.load_ivf_index(
            self._embedder_fp, self._ivf_params_fp, corpus_fp
        )
        if loaded is not None:
            centroids, assignments = loaded
            if centroids.shape[1] == vectors.shape[1] and assignments.shape == (
                vectors.shape[0],
            ):
                self.index_loads += 1
                return centroids, assignments
        centroids, assignments = self._build_ivf(vectors)
        self.index_builds += 1
        if self.store.can_write and self.store.save_ivf_index(
            self._embedder_fp, self._ivf_params_fp, corpus_fp, centroids, assignments
        ):
            self.index_saves += 1
        return centroids, assignments

    def _ivf_probe(
        self,
        query_vectors: np.ndarray,
        index_vectors: np.ndarray,
        index_texts: Optional[List[str]],
    ) -> Set[Tuple[int, int]]:
        """``(query, index)`` pairs via the IVF index over ``index_vectors``.

        Each query probes its :data:`IVF_PROBES` most similar centroids
        (stable selection) and ranks the members of those clusters by true
        cosine similarity — the same top-k/floor semantics as the LSH path,
        through the same vectorised span-expansion and selection machinery.
        """
        centroids, assignments = self._durable_ivf(index_vectors, index_texts)
        assignments = np.asarray(assignments, dtype=np.int64)
        order = np.argsort(assignments, kind="stable")
        sorted_assignments = assignments[order]
        centroid_similarities = query_vectors @ np.asarray(centroids).T
        n_probe = min(centroids.shape[0], IVF_PROBES)
        probed = np.argsort(-centroid_similarities, axis=1, kind="stable")[:, :n_probe]
        lo = np.searchsorted(sorted_assignments, probed, side="left")
        hi = np.searchsorted(sorted_assignments, probed, side="right")
        query_ids, candidate_ids = _expand_spans(lo, hi, order)
        if not len(query_ids):
            return set()
        # Probed clusters are distinct per query, so spans cannot overlap —
        # but unique() also sorts pairs by (query, candidate), which the
        # selection's tie-breaking relies on.
        n_index = index_vectors.shape[0]
        keys = np.unique(query_ids * n_index + candidate_ids)
        return self._select_top_k(
            keys // n_index, keys % n_index, query_vectors, index_vectors
        )

    # -- shared selection -------------------------------------------------------------
    def _select_top_k(
        self,
        query_ids: np.ndarray,
        candidate_ids: np.ndarray,
        query_vectors: np.ndarray,
        index_vectors: np.ndarray,
    ) -> Set[Tuple[int, int]]:
        """Per-query top-k over ``(query, candidate)`` pairs, above the floor.

        Pairs must arrive sorted by ``(query, candidate)`` (the sorted key
        dedupe guarantees it).  Similarities and the top-k cut are computed
        one query group at a time as ``index_vectors[candidates] @ query``
        plus a stable argsort — the *same* gathered operands, the same BLAS
        matvec and the same sort the reference loop uses, deliberately: BLAS
        kernels are position-dependent at the ULP level (two bit-identical
        duplicate rows can produce similarities one ULP apart depending on
        where they sit in the gathered matrix), so computing the
        similarities any other way can flip duplicate-row ties and break
        byte-identity with the old loop.  The group loop is a few numpy
        calls per query over C-sized work; the per-element Python of the old
        path (dict probes, set unions, ``sorted``/``fromiter``) is what the
        vectorisation removed.  Selecting inside the group also keeps the
        pass O(pairs) in memory — a global rank (e.g. one lexsort over every
        pair) costs minutes at the tens of millions of pairs a skewed index
        can emit.
        """
        n_pairs = len(query_ids)
        self.last_probe_candidates += n_pairs
        if n_pairs == 0:
            return set()
        top_k = self.top_k
        min_similarity = self.min_similarity
        bounds = np.flatnonzero(np.r_[True, query_ids[1:] != query_ids[:-1], True])
        pairs: Set[Tuple[int, int]] = set()
        for group in range(len(bounds) - 1):
            start, end = bounds[group], bounds[group + 1]
            candidates = candidate_ids[start:end]
            similarities = index_vectors[candidates] @ query_vectors[query_ids[start]]
            order = np.argsort(-similarities, kind="stable")[:top_k]
            query = int(query_ids[start])
            for position in order:
                if similarities[position] > min_similarity:
                    pairs.add((query, int(candidates[position])))
        return pairs

    def __repr__(self) -> str:
        return (
            f"SemanticBlocker(top_k={self.top_k}, n_tables={self.n_tables}, "
            f"n_bits={self.n_bits}, seed={self.seed}, ann_index={self.ann_index!r})"
        )
