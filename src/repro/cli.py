"""Command-line interface.

Four subcommands expose the library to shell users:

``repro integrate``
    Integrate a set of CSV tables (files or a directory) into one table with
    the Fuzzy Full Disjunction (or, with ``--regular``, with plain ALITE).
    The configuration comes from ``--preset {paper,fast,scale}`` or
    ``--config-json PATH``, with explicitly passed flags overriding either;
    all name-valued flags are validated against the plugin registries and
    fail fast listing the valid names.

``repro match``
    Run the Match Values component over one column of each input CSV and
    print the fuzzy value-match sets with their representatives.

``repro benchmark``
    Run one of the paper's experiments (``table1``, ``em``, ``fig3``) at a
    chosen scale and print the resulting table/series.

``repro serve``
    Start the HTTP serving layer (:mod:`repro.service`): one long-lived
    warm engine behind ``/integrate``, ``/stats`` and ``/healthz``, with
    admission control and per-request deadlines.  ``--store-dir`` attaches
    the persistent artifact store so restarts are warm.

Installed as the ``repro`` console script; also runnable with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core import PRESETS, FuzzyFDConfig, IntegrationEngine, available_presets
from repro.core.value_matching import ColumnValues, ValueMatcher
from repro.embeddings.registry import EMBEDDERS, get_embedder
from repro.fd import FD_ALGORITHMS
from repro.registry import Registry, UnknownNameError
from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES
from repro.table import Table, read_csv, write_csv
from repro.table.io import load_directory


class _TrackedStore(argparse.Action):
    """``store`` that also records the flag was explicitly passed.

    Lets ``--preset``/``--config-json`` act as the base configuration while
    *any* explicitly passed flag overrides it — even one set to its default
    value — without disturbing the defaults visible in the parsed namespace.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        explicit = getattr(namespace, "_explicit", None)
        if explicit is None:
            explicit = set()
            setattr(namespace, "_explicit", explicit)
        explicit.add(self.dest)


def _registry_name(registry: Registry):
    """An argparse ``type=`` validator that fails fast with the registry's names.

    Unlike ``choices=``, the valid set is read from the registry at parse
    time, so plugins registered after import are accepted.
    """

    def validate(value: str) -> str:
        try:
            return registry.validate(value)
        except UnknownNameError as error:
            raise argparse.ArgumentTypeError(str(error)) from None

    validate.__name__ = registry.kind.replace(" ", "_")
    return validate


def _collect_tables(paths: Sequence[str]) -> List[Table]:
    """Load every CSV file (or every CSV inside a directory) named in ``paths``."""
    tables: List[Table] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            tables.extend(load_directory(path))
        elif path.suffix.lower() == ".csv":
            tables.append(read_csv(path))
        else:
            raise SystemExit(f"error: {path} is neither a CSV file nor a directory")
    if len(tables) < 1:
        raise SystemExit("error: no input tables found")
    return tables


# ---------------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------------


#: ``integrate`` flags that map onto config knobs.  A flag overrides the
#: preset / JSON configuration only when the user passed it explicitly
#: (tracked by :class:`_TrackedStore`).
_INTEGRATE_CONFIG_FLAGS = (
    "embedder",
    "threshold",
    "fd_algorithm",
    "alignment",
    "blocking",
    "semantic_blocking",
    "ann_top_k",
    "ann_index",
    "max_workers",
    "parallel_backend",
    "store_dir",
    "store_mode",
    "degraded_mode",
    "retry_max_attempts",
    "retry_backoff_ms",
    "breaker_failure_threshold",
    "breaker_reset_ms",
)

#: ``serve`` adds the service knobs on top of the shared engine flags.
_SERVE_CONFIG_FLAGS = _INTEGRATE_CONFIG_FLAGS + (
    "service_max_pending",
    "service_max_concurrency",
    "service_deadline_ms",
)


def _build_config(
    args: argparse.Namespace, flags: Sequence[str] = _INTEGRATE_CONFIG_FLAGS
) -> FuzzyFDConfig:
    """Resolve the effective config: preset / JSON base, then explicit flags."""
    explicit = getattr(args, "_explicit", set())
    try:
        if getattr(args, "preset", None):
            config = FuzzyFDConfig.preset(args.preset)
        elif getattr(args, "config_json", None):
            config = FuzzyFDConfig.from_json(args.config_json)
        else:
            config = FuzzyFDConfig()
        overrides = {
            knob: getattr(args, knob) for knob in flags if knob in explicit
        }
        if (
            overrides.get("store_dir")
            and "store_mode" not in explicit
            and config.store_mode == "off"
        ):
            # --store-dir alone should engage persistence: lift the config's
            # "off" to the flag's readwrite default.  A preset or JSON that
            # chose "read"/"readwrite" (or an explicit --store-mode) wins.
            overrides["store_mode"] = "readwrite"
        return config.replace(**overrides) if overrides else config
    except (ValueError, TypeError, OSError) as error:
        raise SystemExit(f"error: {error}") from None


def cmd_integrate(args: argparse.Namespace) -> int:
    """``repro integrate``: fuzzy (or regular) integration of CSV tables."""
    tables = _collect_tables(args.inputs)
    config = _build_config(args)
    engine = IntegrationEngine(config)
    result = engine.integrate(tables, fuzzy=not args.regular)
    mode = "regular FD" if args.regular else "fuzzy FD"
    print(
        f"integrated {len(tables)} tables "
        f"({sum(t.num_rows for t in tables)} input tuples) with {mode}: "
        f"{result.table.num_rows} output tuples"
    )
    if args.output:
        path = write_csv(result.table, args.output)
        print(f"wrote {path}")
    else:
        print()
        print(result.table.to_pretty_string(max_rows=args.max_rows))
    if args.show_rewrites and result.value_matching:
        print("\nvalue rewrites:")
        for group, matching in result.value_matching.items():
            for column_id in matching.column_order:
                for original, representative in matching.rewrite_map(column_id).items():
                    print(f"  [{group}] {column_id[0]}: {original!r} -> {representative!r}")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """``repro match``: fuzzy value matching over one column per input table."""
    tables = _collect_tables(args.inputs)
    columns: List[ColumnValues] = []
    for table in tables:
        column = args.column if args.column in table.schema else table.columns[0]
        values = table.distinct_values(column)
        if values:
            columns.append(ColumnValues((table.name, column), values))
    if len(columns) < 2:
        raise SystemExit("error: need at least two non-empty columns to match")
    try:
        matcher = ValueMatcher(
            get_embedder(args.embedder),
            threshold=args.threshold,
            blocking=args.blocking,
            semantic_blocking=args.semantic_blocking,
            ann_top_k=args.ann_top_k,
            ann_index=args.ann_index,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    result = matcher.match_columns(columns)
    multi = [match_set for match_set in result.sets if len(match_set) > 1]
    print(f"{len(result.sets)} value sets ({len(multi)} with fuzzy matches):")
    for match_set in result.sets:
        if len(match_set) == 1 and not args.all:
            continue
        members = ", ".join(f"{column[0]}:{value!r}" for column, value in match_set.members)
        print(f"  ({members}) -> {match_set.representative!r}")
    return 0


def cmd_benchmark(args: argparse.Namespace) -> int:
    """``repro benchmark``: run one of the paper's experiments."""
    from repro.evaluation.experiments import (
        run_downstream_em_experiment,
        run_figure3_experiment,
        run_table1_experiment,
    )
    from repro.evaluation.reporting import (
        format_markdown_table,
        format_runtime_series,
        format_scores_table,
    )

    if args.experiment == "table1":
        scores = run_table1_experiment(
            n_sets=args.sets, values_per_column=args.values_per_column
        )
        print(format_scores_table(scores))
    elif args.experiment == "em":
        scores = run_downstream_em_experiment(n_sets=max(1, args.sets // 8))
        rows = [
            [method, f"{s.precision:.2f}", f"{s.recall:.2f}", f"{s.f1:.2f}"]
            for method, s in scores.items()
        ]
        print(format_markdown_table(["Method", "Precision", "Recall", "F1"], rows))
    elif args.experiment == "fig3":
        points = run_figure3_experiment(sizes=args.sizes)
        print(format_runtime_series(points))
    else:  # pragma: no cover - argparse restricts the choices
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the HTTP serving layer until interrupted."""
    import asyncio

    from repro.service import IntegrationService
    from repro.service.http import serve_forever

    config = _build_config(args, flags=_SERVE_CONFIG_FLAGS)
    service = IntegrationService(config)
    store = service.engine.store
    if store is not None:
        print(f"artifact store attached at {store.root} (mode={config.store_mode})")
    try:
        asyncio.run(serve_forever(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


# ---------------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------------


def _add_engine_config_flags(parser: argparse.ArgumentParser) -> None:
    """The engine-config flags ``integrate`` and ``serve`` share.

    Every flag uses :class:`_TrackedStore` so ``--preset``/``--config-json``
    stay the base configuration and only explicitly passed flags override it.
    """
    config_source = parser.add_mutually_exclusive_group()
    config_source.add_argument(
        "--preset",
        type=_registry_name(PRESETS),
        help=f"start from a named configuration preset ({', '.join(available_presets())}); "
        "explicitly passed flags still override it",
    )
    config_source.add_argument(
        "--config-json",
        metavar="PATH",
        help="load the configuration from a JSON file (FuzzyFDConfig.from_json); "
        "explicitly passed flags still override it",
    )
    parser.add_argument(
        "--embedder", default="mistral", type=_registry_name(EMBEDDERS),
        action=_TrackedStore, help="embedding model registry name",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.7, action=_TrackedStore,
        help="matching threshold θ",
    )
    parser.add_argument(
        "--fd-algorithm", default="alite", type=_registry_name(FD_ALGORITHMS),
        action=_TrackedStore, help="full disjunction algorithm registry name",
    )
    parser.add_argument(
        "--alignment", default="by_name", type=_registry_name(ALIGNMENT_STRATEGIES),
        action=_TrackedStore, help="alignment strategy registry name",
    )
    parser.add_argument(
        "--blocking",
        default="off",
        choices=["off", "on", "auto"],
        action=_TrackedStore,
        help="route wide column pairs through the component-wise blocked matcher",
    )
    parser.add_argument(
        "--semantic-blocking",
        dest="semantic_blocking",
        default="off",
        choices=["off", "on", "auto"],
        action=_TrackedStore,
        help="ANN candidate channel of the blocked matcher: union embedding-nearest "
        "pairs with the surface-key candidates (on = always, auto = only when "
        "surface keys leave values uncovered; requires --blocking on/auto for 'on')",
    )
    parser.add_argument(
        "--ann-top-k",
        dest="ann_top_k",
        type=int,
        default=5,
        action=_TrackedStore,
        help="candidate pairs the semantic channel emits per probing value",
    )
    parser.add_argument(
        "--ann-index",
        dest="ann_index",
        default="lsh",
        choices=["lsh", "ivf"],
        action=_TrackedStore,
        help="semantic-channel retrieval index: lsh (hyperplane tables, with "
        "automatic IVF fallback on skewed buckets) or ivf (force the seeded "
        "k-means inverted-file index)",
    )
    parser.add_argument(
        "--workers",
        dest="max_workers",
        type=int,
        default=1,
        action=_TrackedStore,
        help="worker bound of the parallel execution layer (1 = single-threaded)",
    )
    parser.add_argument(
        "--parallel-backend",
        dest="parallel_backend",
        default="thread",
        choices=["serial", "thread", "process"],
        action=_TrackedStore,
        help="executor backend used when --workers > 1",
    )
    parser.add_argument(
        "--store-dir",
        dest="store_dir",
        default=None,
        action=_TrackedStore,
        help="directory of the persistent artifact store (memmapped embeddings "
        "and durable ANN indexes); repeated invocations over the same values "
        "start warm",
    )
    parser.add_argument(
        "--store-mode",
        dest="store_mode",
        default="readwrite",
        choices=["off", "read", "readwrite"],
        action=_TrackedStore,
        help="how --store-dir is used: readwrite (attach and publish, the "
        "default), read (attach only), off (ignore the directory)",
    )
    parser.add_argument(
        "--degraded-mode",
        dest="degraded_mode",
        default="off",
        choices=["off", "surface", "fail"],
        action=_TrackedStore,
        help="what matching does while the embedder circuit breaker is open: "
        "off = propagate the error, surface = answer with exact + surface-"
        "blocking matches only (marked degraded), fail = typed unavailable "
        "error (HTTP 503 with Retry-After under serve)",
    )
    parser.add_argument(
        "--retry-max-attempts",
        dest="retry_max_attempts",
        type=int,
        default=3,
        action=_TrackedStore,
        help="embedding attempts per batch before the failure counts against "
        "the circuit breaker (1 = no retries)",
    )
    parser.add_argument(
        "--retry-backoff-ms",
        dest="retry_backoff_ms",
        type=float,
        default=50.0,
        action=_TrackedStore,
        help="base backoff between embedding retries (doubles per attempt, "
        "capped at 8x, with deterministic jitter)",
    )
    parser.add_argument(
        "--breaker-failure-threshold",
        dest="breaker_failure_threshold",
        type=int,
        default=5,
        action=_TrackedStore,
        help="consecutive embedding failures (after retries) that open the "
        "circuit breaker",
    )
    parser.add_argument(
        "--breaker-reset-ms",
        dest="breaker_reset_ms",
        type=float,
        default=30_000.0,
        action=_TrackedStore,
        help="open window of the circuit breaker before a half-open probe "
        "is admitted",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fuzzy Integration of Data Lake Tables — command line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    integrate_parser = subparsers.add_parser(
        "integrate", help="integrate CSV tables with (fuzzy) Full Disjunction"
    )
    integrate_parser.add_argument("inputs", nargs="+", help="CSV files or directories")
    integrate_parser.add_argument("--output", "-o", help="write the integrated table to this CSV")
    integrate_parser.add_argument("--regular", action="store_true", help="use equi-join FD (no fuzziness)")
    _add_engine_config_flags(integrate_parser)
    integrate_parser.add_argument("--max-rows", type=int, default=20, help="rows to print without --output")
    integrate_parser.add_argument("--show-rewrites", action="store_true", help="print the value rewrites applied")
    integrate_parser.set_defaults(func=cmd_integrate)

    match_parser = subparsers.add_parser("match", help="fuzzy value matching over aligned columns")
    match_parser.add_argument("inputs", nargs="+", help="CSV files or directories (one column each)")
    match_parser.add_argument("--column", default="value", help="column name to match (default: first column)")
    match_parser.add_argument(
        "--embedder", default="mistral", type=_registry_name(EMBEDDERS),
        help="embedding model registry name",
    )
    match_parser.add_argument("--threshold", type=float, default=0.7)
    match_parser.add_argument(
        "--blocking",
        default="off",
        choices=["off", "on", "auto"],
        help="route wide column pairs through the component-wise blocked matcher",
    )
    match_parser.add_argument(
        "--semantic-blocking",
        dest="semantic_blocking",
        default="off",
        choices=["off", "on", "auto"],
        help="union ANN embedding-neighbour candidates with the surface keys",
    )
    match_parser.add_argument(
        "--ann-top-k",
        dest="ann_top_k",
        type=int,
        default=5,
        help="candidate pairs the semantic channel emits per probing value",
    )
    match_parser.add_argument(
        "--ann-index",
        dest="ann_index",
        default="lsh",
        choices=["lsh", "ivf"],
        help="semantic-channel retrieval index (lsh or ivf)",
    )
    match_parser.add_argument("--all", action="store_true", help="also print singleton sets")
    match_parser.set_defaults(func=cmd_match)

    benchmark_parser = subparsers.add_parser("benchmark", help="run one of the paper's experiments")
    benchmark_parser.add_argument("experiment", choices=["table1", "em", "fig3"])
    benchmark_parser.add_argument("--sets", type=int, default=31, help="number of integration sets")
    benchmark_parser.add_argument("--values-per-column", type=int, default=100)
    benchmark_parser.add_argument("--sizes", type=int, nargs="+", default=[500, 1000, 1500, 2000])
    benchmark_parser.set_defaults(func=cmd_benchmark)

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP serving layer over one long-lived engine"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 = let the OS pick; the bound port is printed)",
    )
    _add_engine_config_flags(serve_parser)
    serve_parser.add_argument(
        "--max-pending",
        dest="service_max_pending",
        type=int,
        default=32,
        action=_TrackedStore,
        help="admitted-but-not-executing requests the service buffers before "
        "rejecting with ServiceOverloaded (0 = reject whenever all slots busy)",
    )
    serve_parser.add_argument(
        "--max-concurrency",
        dest="service_max_concurrency",
        type=int,
        default=4,
        action=_TrackedStore,
        help="requests executed concurrently on the engine-owned worker pool",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        dest="service_deadline_ms",
        type=float,
        default=None,
        action=_TrackedStore,
        help="default per-request deadline budget in milliseconds, checked at "
        "stage boundaries (unset = no deadline)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
