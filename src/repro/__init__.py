"""repro — a full reproduction of "Fuzzy Integration of Data Lake Tables".

The package implements the paper's Fuzzy Full Disjunction operator together
with every substrate it depends on: an in-memory relational table layer, Full
Disjunction algorithms (including the ALITE substrate), simulated cell-value
embedding models, bipartite fuzzy value matching, holistic schema matching,
a downstream entity-matching pipeline, and seeded benchmark generators
standing in for the Auto-Join, ALITE and IMDB benchmarks.

Quickstart
----------
>>> from repro import Table, integrate
>>> t1 = Table("t1", ["City", "Country"], [("Berlinn", "Germany")])
>>> t2 = Table("t2", ["City", "Vax"], [("Berlin", "63%")])
>>> result = integrate([t1, t2])          # fuzzy full disjunction
>>> result.table.num_rows
1

For repeated requests (threshold sweeps, ablations, services), hold an
:class:`IntegrationEngine` instead — it resolves the embedder, solver and FD
algorithm once and keeps the embedding cache warm across calls:

>>> engine = IntegrationEngine("paper")   # or a FuzzyFDConfig / dict
>>> engine.integrate([t1, t2], threshold=0.8).table.num_rows
1
"""

from repro.core import (
    FuzzyFDConfig,
    FuzzyFullDisjunction,
    FuzzyIntegrationResult,
    IntegrationEngine,
    RegularFullDisjunction,
    ValueMatcher,
    available_presets,
    integrate,
)
from repro.registry import Registry, UnknownNameError
from repro.service import IntegrationService
from repro.table import Table, read_csv, write_csv

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "Table",
    "read_csv",
    "write_csv",
    "integrate",
    "FuzzyFDConfig",
    "available_presets",
    "FuzzyFullDisjunction",
    "RegularFullDisjunction",
    "FuzzyIntegrationResult",
    "IntegrationEngine",
    "IntegrationService",
    "ValueMatcher",
    "Registry",
    "UnknownNameError",
]
