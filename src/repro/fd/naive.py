"""Definition-level Full Disjunction algorithms.

Two reference implementations live here:

* :class:`NaiveFullDisjunction` — the definitional complementation fixpoint
  with unindexed pairwise scanning.  Exponentially safe but slow; it is the
  oracle the other algorithms are validated against in the test suite.
* :class:`OuterJoinSequence` — Galindo-Legaria's original characterisation:
  apply the natural full outer join in *every* order of the input tables,
  outer-union the results and remove subsumed tuples.  Because a single outer
  join order is not associative, different orders produce different partial
  results; their union (for the acyclic integration sets used in the paper's
  benchmarks) recovers the Full Disjunction.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import (
    _join_consistent_same_schema,
    _merge_same_schema,
    _normalise,
)
from repro.table.operations import full_outer_join, outer_union
from repro.table.table import Provenance, RowValues, Table


class NaiveFullDisjunction(FullDisjunctionAlgorithm):
    """Unindexed complementation fixpoint (reference oracle).

    Every pair of known tuples is re-examined in every round until a round
    produces nothing new.  Use only on small inputs (tests, examples).
    """

    name = "naive"

    def __init__(self, result_name: str = "full_disjunction", max_rounds: int = 64) -> None:
        super().__init__(result_name)
        self.max_rounds = max_rounds

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = self._outer_union(tables)
        provenance = union.provenance or [
            frozenset({f"{union.name}:{index}"}) for index in range(union.num_rows)
        ]

        known: Dict[RowValues, Set[str]] = {}
        for values, sources in zip(union.rows, provenance):
            normalised = _normalise(values)
            known.setdefault(normalised, set()).update(sources)

        rounds = 0
        changed = True
        while changed:
            if rounds >= self.max_rounds:
                raise RuntimeError(
                    f"naive complementation did not converge within {self.max_rounds} rounds"
                )
            rounds += 1
            changed = False
            current_items = list(known.items())
            for (left_values, left_sources), (right_values, right_sources) in itertools.combinations(
                current_items, 2
            ):
                if not _join_consistent_same_schema(left_values, right_values):
                    continue
                merged = _merge_same_schema(left_values, right_values)
                merged_sources = set(left_sources) | set(right_sources)
                existing = known.get(merged)
                if existing is None:
                    known[merged] = merged_sources
                    changed = True
                elif not merged_sources <= existing:
                    existing.update(merged_sources)
                    changed = True

        statistics["complementation_rounds"] = float(rounds)
        statistics["complementation_tuples"] = float(len(known))
        rows: List[RowValues] = list(known.keys())
        prov: List[Provenance] = [frozenset(known[values]) for values in rows]
        return Table(self.result_name, union.schema, rows, provenance=prov)


class OuterJoinSequence(FullDisjunctionAlgorithm):
    """Galindo-Legaria's all-orders outer-join characterisation of FD.

    For ``n`` input tables this evaluates ``n!`` left-deep full outer join
    sequences, so it is only usable for small ``n`` (the paper's integration
    sets contain a handful of tables).  Included both as a historical baseline
    and as a second, independently-derived oracle for the test suite.
    """

    name = "outer_join_sequence"

    def __init__(self, result_name: str = "full_disjunction", max_tables: int = 7) -> None:
        super().__init__(result_name)
        self.max_tables = max_tables

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        if len(tables) > self.max_tables:
            raise ValueError(
                f"OuterJoinSequence evaluates n! join orders; refusing n={len(tables)} "
                f"(max {self.max_tables})"
            )
        partial_results: List[Table] = []
        orders = 0
        for order in itertools.permutations(range(len(tables))):
            orders += 1
            joined = tables[order[0]]
            for table_index in order[1:]:
                joined = full_outer_join(joined, tables[table_index])
            partial_results.append(joined)
        statistics["join_orders"] = float(orders)
        combined = outer_union(partial_results, name=self.result_name)
        return combined
