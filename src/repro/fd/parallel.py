"""Partition-parallel Full Disjunction (after Paganelli et al. 2019).

The component decomposition of :mod:`repro.fd.incremental` makes the closure
embarrassingly parallel: every connected component is an independent work
unit.  This implementation distributes components over a thread pool.  Because
the closure is pure Python the speed-up on CPython is modest (the GIL), but
the structure mirrors the paper's parallelisation baseline and allows the
ablation benchmark to compare the partitioning strategies; for single-threaded
use it degrades gracefully to the incremental algorithm.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Tuple

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import ComplementationEngine, connected_components
from repro.table.table import Provenance, RowValues, Table


class PartitionedFullDisjunction(FullDisjunctionAlgorithm):
    """Per-component complementation executed by a worker pool."""

    name = "partitioned"

    def __init__(
        self,
        result_name: str = "full_disjunction",
        max_tuples: int = 5_000_000,
        max_workers: int = 4,
        min_parallel_components: int = 8,
    ) -> None:
        super().__init__(result_name)
        self._engine = ComplementationEngine(max_tuples=max_tuples)
        self.max_workers = max_workers
        self.min_parallel_components = min_parallel_components

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = self._outer_union(tables)
        provenance = union.provenance or [
            frozenset({f"{union.name}:{index}"}) for index in range(union.num_rows)
        ]
        components = connected_components(union.rows)
        statistics["outer_union_tuples"] = float(union.num_rows)
        statistics["components"] = float(len(components))

        work: List[Tuple[List[RowValues], List[Provenance]]] = [
            (
                [union.rows[index] for index in component],
                [provenance[index] for index in component],
            )
            for component in components
        ]

        rows: List[RowValues] = []
        prov: List[Provenance] = []
        if len(work) < self.min_parallel_components or self.max_workers <= 1:
            for component_rows, component_prov in work:
                closed_rows, closed_prov = self._engine.close(
                    component_rows, component_prov, statistics
                )
                rows.extend(closed_rows)
                prov.extend(closed_prov)
        else:
            def close_one(item: Tuple[List[RowValues], List[Provenance]]):
                return self._engine.close(item[0], item[1])

            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                for closed_rows, closed_prov in pool.map(close_one, work):
                    rows.extend(closed_rows)
                    prov.extend(closed_prov)
            statistics["parallel_workers"] = float(self.max_workers)

        return Table(self.result_name, union.schema, rows, provenance=prov)
