"""Partition-parallel Full Disjunction (after Paganelli et al. 2019).

The component decomposition of :mod:`repro.fd.incremental` makes the closure
embarrassingly parallel: every connected component is an independent work
unit.  This implementation distributes components through the shared parallel
execution layer (:mod:`repro.utils.executor`), so the backend (serial /
thread / process), worker bound and component batching are the same knobs the
blocked value matcher and the integration engine use — one
:class:`~repro.utils.executor.ExecutorConfig` end to end.  Because the
closure is mostly pure Python, the thread backend's speed-up on CPython is
modest (the GIL); the process backend ships each batch of components to a
worker process instead.  For single-threaded use it degrades gracefully to
the incremental algorithm.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import ComplementationEngine, connected_components
from repro.table.table import Provenance, RowValues, Table
from repro.utils.executor import ExecutorConfig, run_partitioned

#: One work unit: the rows and provenance sets of one connected component.
ComponentWork = Tuple[List[RowValues], List[Provenance]]


def _close_component(
    engine: ComplementationEngine, work: ComponentWork
) -> Tuple[List[RowValues], List[Provenance], Dict[str, float]]:
    """Close one component (module-level so process pools can pickle it).

    Each worker records its closure counters into a private dict (sharing
    one dict across a pool would race); the caller sums them.
    """
    statistics: Dict[str, float] = {}
    rows, provenance = engine.close(work[0], work[1], statistics)
    return rows, provenance, statistics


class PartitionedFullDisjunction(FullDisjunctionAlgorithm):
    """Per-component complementation executed by a worker pool."""

    name = "partitioned"

    def __init__(
        self,
        result_name: str = "full_disjunction",
        max_tuples: int = 5_000_000,
        max_workers: int = 4,
        min_parallel_components: int = 8,
        backend: str = "thread",
    ) -> None:
        super().__init__(result_name)
        self._engine = ComplementationEngine(max_tuples=max_tuples)
        self.executor = ExecutorConfig(
            backend=backend,
            max_workers=max_workers,
            min_parallel_items=min_parallel_components,
        )

    @property
    def max_workers(self) -> int:
        """Worker bound of the executor (kept for back-compat introspection)."""
        return self.executor.max_workers

    def configure_executor(self, config: ExecutorConfig) -> None:
        """Adopt pipeline-wide executor settings (called by ``FuzzyFDConfig``).

        The component threshold below which the work stays serial is an
        algorithm property, not a pipeline one, so the incoming config's
        ``min_parallel_items`` is overridden with this algorithm's own.
        """
        self.executor = ExecutorConfig(
            backend=config.backend,
            max_workers=config.max_workers,
            batch_size=config.batch_size,
            min_parallel_items=max(config.min_parallel_items, 8),
        )

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = self._outer_union(tables)
        provenance = union.provenance or [
            frozenset({f"{union.name}:{index}"}) for index in range(union.num_rows)
        ]
        components = connected_components(union.rows)
        statistics["outer_union_tuples"] = float(union.num_rows)
        statistics["components"] = float(len(components))

        work: List[ComponentWork] = [
            (
                [union.rows[index] for index in component],
                [provenance[index] for index in component],
            )
            for component in components
        ]

        closed = run_partitioned(
            work,
            partial(_close_component, self._engine),
            self.executor,
            weight=lambda item: len(item[0]),
        )
        rows: List[RowValues] = []
        prov: List[Provenance] = []
        for closed_rows, closed_prov, closed_statistics in closed:
            rows.extend(closed_rows)
            prov.extend(closed_prov)
            for key, value in closed_statistics.items():
                statistics[key] = statistics.get(key, 0.0) + value
        if self.executor.should_parallelise(len(work)):
            statistics["parallel_workers"] = float(self.executor.max_workers)
            statistics["parallel_backend_" + self.executor.backend] = 1.0

        return Table(self.result_name, union.schema, rows, provenance=prov)
