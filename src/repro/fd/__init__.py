"""Full Disjunction algorithms.

Full Disjunction (FD) is the associative extension of the outer join
introduced by Galindo-Legaria: it combines the tuples of a set of tables in a
*maximal* way so that every input tuple is represented and no output tuple is
subsumed by (i.e. strictly less informative than) another.

This package provides four interchangeable implementations of the same
semantics (outer union → complementation closure → subsumption removal):

* :class:`~repro.fd.naive.NaiveFullDisjunction` — the definitional fixpoint;
  quadratic pair scanning, used as the reference oracle in tests.
* :class:`~repro.fd.alite.AliteFullDisjunction` — the paper's substrate [18]:
  hash-indexed complementation with duplicate elimination, practical at the
  IMDB-benchmark scale.
* :class:`~repro.fd.incremental.IncrementalFullDisjunction` — decomposes the
  input into connected components of the join-value graph and closes each
  component independently.
* :class:`~repro.fd.parallel.PartitionedFullDisjunction` — the component
  decomposition executed by a pool of workers (Paganelli-style
  parallelisation; falls back to sequential execution for small inputs).
"""

from repro.fd.base import FullDisjunctionAlgorithm, FullDisjunctionResult
from repro.fd.naive import NaiveFullDisjunction, OuterJoinSequence
from repro.fd.alite import AliteFullDisjunction
from repro.fd.incremental import IncrementalFullDisjunction
from repro.fd.parallel import PartitionedFullDisjunction
from repro.fd.iterator import StreamingFullDisjunction
from repro.registry import Registry

__all__ = [
    "FullDisjunctionAlgorithm",
    "FullDisjunctionResult",
    "NaiveFullDisjunction",
    "OuterJoinSequence",
    "AliteFullDisjunction",
    "IncrementalFullDisjunction",
    "PartitionedFullDisjunction",
    "StreamingFullDisjunction",
    "FD_ALGORITHMS",
    "get_algorithm",
    "available_algorithms",
]


#: All Full Disjunction algorithms, keyed by registry name.
FD_ALGORITHMS = Registry(
    "full disjunction algorithm",
    {
        "naive": NaiveFullDisjunction,
        "outer_join_sequence": OuterJoinSequence,
        "alite": AliteFullDisjunction,
        "incremental": IncrementalFullDisjunction,
        "partitioned": PartitionedFullDisjunction,
        "streaming": StreamingFullDisjunction,
    },
)


def available_algorithms() -> list:
    """Names of the registered Full Disjunction algorithms."""
    return FD_ALGORITHMS.names()


def get_algorithm(name: str, **kwargs) -> FullDisjunctionAlgorithm:
    """Instantiate a Full Disjunction algorithm by name.

    >>> get_algorithm("alite").name
    'alite'
    """
    return FD_ALGORITHMS.create(name, **kwargs)
