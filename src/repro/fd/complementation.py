"""Complementation closure — the engine behind the scalable FD algorithms.

ALITE computes Full Disjunction by (1) outer-unioning the input tables,
(2) repeatedly *complementing* pairs of tuples — merging any two tuples that
are join-consistent (they agree on every attribute where both are non-null and
share at least one non-null value) — until no new tuple can be produced, and
(3) removing subsumed tuples.  This module implements step (2) with a hash
index on (column position, value) pairs so that only tuples sharing a value
are ever compared, plus duplicate elimination so the closure terminates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.table.nulls import NULL, is_null
from repro.table.table import CellValue, Provenance, RowValues, Table

# A work item is the pair (tuple values, provenance set).
WorkItem = Tuple[RowValues, Provenance]


def _normalise(values: RowValues) -> RowValues:
    """Map every flavour of null to the plain NULL so tuples hash consistently."""
    return tuple(NULL if is_null(value) else value for value in values)


def _join_consistent_same_schema(left: RowValues, right: RowValues) -> bool:
    """Join-consistency for tuples over the same schema (all positions shared)."""
    agreed = False
    for left_value, right_value in zip(left, right):
        left_null = is_null(left_value)
        right_null = is_null(right_value)
        if left_null or right_null:
            continue
        if left_value != right_value:
            return False
        agreed = True
    return agreed


def _merge_same_schema(left: RowValues, right: RowValues) -> RowValues:
    """Merge two join-consistent tuples over the same schema (non-null wins)."""
    merged: List[CellValue] = []
    for left_value, right_value in zip(left, right):
        if is_null(left_value):
            merged.append(NULL if is_null(right_value) else right_value)
        else:
            merged.append(left_value)
    return tuple(merged)


class ComplementationEngine:
    """Closes a set of same-schema tuples under pairwise complementation.

    The closure is computed over an integer encoding of the tuples: every
    distinct value of every column gets a small integer code (``-1`` encodes
    null), tuples become ``int32`` rows of a growing matrix, and the
    join-consistency test against all candidate partners of a tuple is a
    vectorised numpy expression instead of a Python loop.  Candidates are
    still drawn from a hash index on (column, value) pairs, so only tuples
    sharing at least one concrete value are ever compared — the same strategy
    ALITE uses to keep the IMDB-scale experiment feasible.

    Parameters
    ----------
    max_tuples:
        Safety limit on the number of distinct tuples the closure may create;
        exceeded limits raise ``RuntimeError`` (Full Disjunction results can
        be exponential in pathological inputs, and a hard failure is more
        useful than an apparent hang).
    """

    def __init__(self, max_tuples: int = 5_000_000) -> None:
        self.max_tuples = max_tuples

    def close(
        self,
        rows: Sequence[RowValues],
        provenance: Sequence[Provenance],
        statistics: Dict[str, float] | None = None,
    ) -> Tuple[List[RowValues], List[Provenance]]:
        """Return the complementation closure of ``rows``.

        Duplicate tuples are collapsed, merging their provenance.  The inputs
        themselves are always part of the returned set (subsumption removal is
        the caller's job).
        """
        import numpy as np

        statistics = statistics if statistics is not None else {}
        if not rows:
            return [], []
        width = len(rows[0])

        # Integer encoding of cell values, one code space per column.
        code_of: List[Dict[CellValue, int]] = [dict() for _ in range(width)]
        value_of: List[List[CellValue]] = [[] for _ in range(width)]

        def encode(values: RowValues) -> "np.ndarray":
            codes = np.empty(width, dtype=np.int32)
            for position, value in enumerate(values):
                if is_null(value):
                    codes[position] = -1
                    continue
                column_codes = code_of[position]
                code = column_codes.get(value)
                if code is None:
                    code = len(column_codes)
                    column_codes[value] = code
                    value_of[position].append(value)
                codes[position] = code
            return codes

        capacity = max(16, 2 * len(rows))
        data = np.empty((capacity, width), dtype=np.int32)
        prov: List[Set[str]] = []
        known: Dict[bytes, int] = {}
        # Postings per (column, code): a growable int32 array plus its fill level.
        index: Dict[Tuple[int, int], "np.ndarray"] = {}
        index_len: Dict[Tuple[int, int], int] = {}
        queue: Deque[int] = deque()
        count = 0

        def post(key: Tuple[int, int], tuple_id: int) -> None:
            bucket = index.get(key)
            length = index_len.get(key, 0)
            if bucket is None:
                bucket = np.empty(4, dtype=np.int64)
                index[key] = bucket
            elif length == bucket.shape[0]:
                grown_bucket = np.empty(2 * length, dtype=np.int64)
                grown_bucket[:length] = bucket
                bucket = grown_bucket
                index[key] = bucket
            bucket[length] = tuple_id
            index_len[key] = length + 1

        def add(codes: "np.ndarray", sources: FrozenSet[str]) -> None:
            nonlocal data, capacity, count
            key = codes.tobytes()
            existing = known.get(key)
            if existing is not None:
                prov[existing] |= sources
                return
            if count >= self.max_tuples:
                raise RuntimeError(
                    f"complementation closure exceeded {self.max_tuples} tuples; "
                    "the input is pathological for Full Disjunction"
                )
            if count == capacity:
                capacity *= 2
                grown = np.empty((capacity, width), dtype=np.int32)
                grown[:count] = data[:count]
                data = grown
            tuple_id = count
            data[tuple_id] = codes
            count += 1
            known[key] = tuple_id
            prov.append(set(sources))
            for position in range(width):
                code = int(codes[position])
                if code >= 0:
                    post((position, code), tuple_id)
            queue.append(tuple_id)

        for values, sources in zip(rows, provenance):
            add(encode(values), frozenset(sources))

        merges = 0
        comparisons = 0
        # Tuples are dequeued in id order, so when tuple ``b`` is processed
        # every tuple with a smaller id already exists; restricting the scan
        # to candidates with id < b examines each unordered pair exactly once.
        while queue:
            current_id = queue.popleft()
            current = data[current_id]
            current_sources = frozenset(prov[current_id])
            candidate_arrays = []
            for position in range(width):
                code = int(current[position])
                if code < 0:
                    continue
                key = (position, code)
                bucket = index.get(key)
                if bucket is not None:
                    candidate_arrays.append(bucket[: index_len[key]])
            if not candidate_arrays:
                continue
            candidates = np.concatenate(candidate_arrays)
            candidates = candidates[candidates < current_id]
            if candidates.size == 0:
                continue
            block = data[candidates]
            comparisons += int(candidates.size)
            both_present = (block >= 0) & (current >= 0)
            conflict = (both_present & (block != current)).any(axis=1)
            consistent = ~conflict  # agreement on >=1 value is guaranteed by the index
            consistent_ids = candidates[consistent]
            if consistent_ids.size == 0:
                continue
            # The same partner may appear through several shared values; dedup
            # only the (few) consistent ones before merging.
            consistent_ids = np.unique(consistent_ids)
            block_consistent = data[consistent_ids]
            merged_block = np.where(block_consistent >= 0, block_consistent, current)
            for offset, candidate_id in enumerate(consistent_ids):
                merges += 1
                add(
                    merged_block[offset].astype(np.int32),
                    current_sources | frozenset(prov[int(candidate_id)]),
                )

        statistics["complementation_comparisons"] = statistics.get(
            "complementation_comparisons", 0.0
        ) + float(comparisons)
        statistics["complementation_merges"] = statistics.get(
            "complementation_merges", 0.0
        ) + float(merges)
        statistics["complementation_tuples"] = statistics.get(
            "complementation_tuples", 0.0
        ) + float(count)

        # Decode the closed tuple set back to cell values.
        decoded: List[RowValues] = []
        for tuple_id in range(count):
            codes = data[tuple_id]
            decoded.append(
                tuple(
                    NULL if codes[position] < 0 else value_of[position][int(codes[position])]
                    for position in range(width)
                )
            )
        return decoded, [frozenset(sources) for sources in prov]

    def close_table(self, table: Table, statistics: Dict[str, float] | None = None) -> Table:
        """Close a whole (outer-unioned) table under complementation."""
        provenance = table.provenance
        if provenance is None:
            provenance = [frozenset({f"{table.name}:{index}"}) for index in range(table.num_rows)]
        rows, prov = self.close(table.rows, provenance, statistics)
        return Table(table.name, table.schema, rows, provenance=prov)


def connected_components(
    rows: Sequence[RowValues],
) -> List[List[int]]:
    """Partition tuple ids into connected components of the value-sharing graph.

    Two tuples are connected when they share a non-null value in the same
    column.  Complementation can never merge tuples across components (a merge
    requires a shared value, and merged tuples only carry values from their
    sources), so each component can be closed independently — this is the key
    optimisation of the incremental and partitioned algorithms.
    """
    from repro.utils.unionfind import UnionFind

    uf = UnionFind(range(len(rows)))
    first_seen: Dict[Tuple[int, CellValue], int] = {}
    for row_id, values in enumerate(rows):
        for position, value in enumerate(values):
            if is_null(value):
                continue
            key = (position, value)
            if key in first_seen:
                uf.union(first_seen[key], row_id)
            else:
                first_seen[key] = row_id
    groups = uf.groups()
    return [sorted(group) for group in groups]
