"""Component-decomposed Full Disjunction.

Tuples that never share a value in any aligned column can never be merged by
complementation, directly or transitively.  The incremental algorithm exploits
this: it partitions the outer-unioned tuples into connected components of the
value-sharing graph and closes each component independently.  On key-joined
workloads such as the IMDB benchmark the components are tiny (one per entity),
so the closure touches far fewer candidate pairs than a global pass.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import ComplementationEngine, connected_components
from repro.table.table import Provenance, RowValues, Table


class IncrementalFullDisjunction(FullDisjunctionAlgorithm):
    """Connected-component decomposition followed by per-component closure."""

    name = "incremental"

    def __init__(
        self,
        result_name: str = "full_disjunction",
        max_tuples: int = 5_000_000,
    ) -> None:
        super().__init__(result_name)
        self._engine = ComplementationEngine(max_tuples=max_tuples)

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = self._outer_union(tables)
        provenance = union.provenance or [
            frozenset({f"{union.name}:{index}"}) for index in range(union.num_rows)
        ]
        components = connected_components(union.rows)
        statistics["outer_union_tuples"] = float(union.num_rows)
        statistics["components"] = float(len(components))

        rows: List[RowValues] = []
        prov: List[Provenance] = []
        for component in components:
            component_rows = [union.rows[index] for index in component]
            component_prov = [provenance[index] for index in component]
            closed_rows, closed_prov = self._engine.close(
                component_rows, component_prov, statistics
            )
            rows.extend(closed_rows)
            prov.extend(closed_prov)
        return Table(self.result_name, union.schema, rows, provenance=prov)
