"""ALITE-style Full Disjunction (the paper's integration substrate [18]).

The algorithm is the one Khatiwada et al. use for integrating data-lake
tables: outer union all input tables over their aligned (union) schema, close
the resulting tuple set under *complementation* (merging join-consistent
tuples), and finally drop subsumed tuples.  The complementation step here is
hash-indexed — only tuples that share a concrete value in some column are ever
compared — which is what makes the IMDB-scale runtime experiment (Figure 3)
feasible.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import ComplementationEngine
from repro.table.table import Table


class AliteFullDisjunction(FullDisjunctionAlgorithm):
    """Outer union → indexed complementation closure → subsumption removal."""

    name = "alite"

    def __init__(
        self,
        result_name: str = "full_disjunction",
        max_tuples: int = 5_000_000,
    ) -> None:
        super().__init__(result_name)
        self._engine = ComplementationEngine(max_tuples=max_tuples)

    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = self._outer_union(tables)
        statistics["outer_union_tuples"] = float(union.num_rows)
        closed = self._engine.close_table(union, statistics)
        return closed
