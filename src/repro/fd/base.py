"""Shared interface and helpers for the Full Disjunction algorithms."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.table.operations import outer_union
from repro.table.subsumption import remove_subsumed
from repro.table.table import Table


@dataclass
class FullDisjunctionResult:
    """The outcome of a Full Disjunction integration.

    Attributes
    ----------
    table:
        The integrated table over the union schema.  Rows carry provenance
        (the ``TIDs`` sets of the paper's Figure 1).
    algorithm:
        Name of the algorithm that produced the result.
    input_tuple_count:
        Total number of tuples across the input tables.
    elapsed_seconds:
        Wall-clock time of the integration.
    statistics:
        Algorithm-specific counters (complementation rounds, merges, ...).
    """

    table: Table
    algorithm: str
    input_tuple_count: int
    elapsed_seconds: float
    statistics: Dict[str, float] = field(default_factory=dict)

    @property
    def output_tuple_count(self) -> int:
        """Number of tuples in the integrated table."""
        return self.table.num_rows


class FullDisjunctionAlgorithm(abc.ABC):
    """Base class for Full Disjunction implementations.

    Subclasses implement :meth:`_integrate` over an outer-unioned table and
    inherit input validation, provenance bookkeeping, timing and final
    subsumption removal from :meth:`integrate`.
    """

    #: Short registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, result_name: str = "full_disjunction") -> None:
        self.result_name = result_name

    # -- public API ----------------------------------------------------------------
    def integrate(self, tables: Sequence[Table]) -> FullDisjunctionResult:
        """Integrate ``tables`` and return a :class:`FullDisjunctionResult`.

        Input tables that lack provenance get default singleton provenance so
        that each output tuple reports the set of source tuple ids it merged.
        """
        if not tables:
            raise ValueError("integrate() requires at least one table")
        prepared = [
            table if table.provenance is not None else table.with_default_provenance()
            for table in tables
        ]
        input_tuple_count = sum(table.num_rows for table in prepared)
        start = time.perf_counter()
        statistics: Dict[str, float] = {}
        integrated = self._integrate(prepared, statistics)
        integrated = remove_subsumed(integrated)
        elapsed = time.perf_counter() - start
        integrated = integrated.with_name(self.result_name)
        return FullDisjunctionResult(
            table=integrated,
            algorithm=self.name,
            input_tuple_count=input_tuple_count,
            elapsed_seconds=elapsed,
            statistics=statistics,
        )

    def __call__(self, tables: Sequence[Table]) -> Table:
        """Convenience: integrate and return just the table."""
        return self.integrate(tables).table

    # -- extension point -------------------------------------------------------------
    @abc.abstractmethod
    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        """Produce the (possibly not yet subsumption-free) integrated table."""

    # -- shared helpers ---------------------------------------------------------------
    @staticmethod
    def _outer_union(tables: Sequence[Table]) -> Table:
        """Outer union of the inputs with plain nulls and preserved provenance."""
        return outer_union(tables, name="outer_union")

    @staticmethod
    def shared_value_positions(table: Table) -> List[int]:
        """All column positions of ``table`` (used to index join candidates)."""
        return list(range(table.num_columns))
