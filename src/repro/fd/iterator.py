"""Lazy (polynomial-delay-style) enumeration of Full Disjunction tuples.

Cohen et al. (VLDB 2006) showed that Full Disjunction tuples can be enumerated
with polynomial delay, which matters when a consumer only needs the first few
integrated tuples (e.g. to preview an integration in a UI) or wants to stream
them into a downstream operator without materialising the whole result.

:class:`StreamingFullDisjunction` provides that interface on top of the
component decomposition used by the incremental algorithm: connected
components of the value-sharing graph are discovered first (cheap), and each
component is then closed and emitted independently, so the delay between two
emitted tuples is bounded by the cost of closing a single component rather
than the whole input.  The union of the emitted tuples equals the result of
the eager algorithms (a property checked by the test suite).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.fd.base import FullDisjunctionAlgorithm
from repro.fd.complementation import ComplementationEngine, connected_components
from repro.table.operations import outer_union
from repro.table.subsumption import remove_subsumed
from repro.table.table import Provenance, RowValues, Table


class StreamingFullDisjunction(FullDisjunctionAlgorithm):
    """Component-at-a-time Full Disjunction with a streaming iterator API.

    Besides the usual :meth:`integrate`, the class exposes
    :meth:`iter_tuples`, a generator yielding ``(values, provenance)`` pairs;
    tuples of one connected component are emitted as soon as that component is
    closed and de-duplicated, before later components are even touched.
    """

    name = "streaming"

    def __init__(
        self,
        result_name: str = "full_disjunction",
        max_tuples: int = 5_000_000,
        largest_components_last: bool = False,
    ) -> None:
        super().__init__(result_name)
        self._engine = ComplementationEngine(max_tuples=max_tuples)
        self.largest_components_last = largest_components_last

    # -- streaming API ----------------------------------------------------------------
    def iter_tuples(
        self, tables: Sequence[Table]
    ) -> Iterator[Tuple[RowValues, Provenance]]:
        """Yield Full Disjunction tuples (with provenance) component by component."""
        if not tables:
            return
        prepared = [
            table if table.provenance is not None else table.with_default_provenance()
            for table in tables
        ]
        union = outer_union(prepared, name=self.result_name)
        provenance = union.provenance or [
            frozenset({f"{union.name}:{index}"}) for index in range(union.num_rows)
        ]
        components = connected_components(union.rows)
        if self.largest_components_last:
            components = sorted(components, key=len)
        for component in components:
            component_rows = [union.rows[index] for index in component]
            component_prov = [provenance[index] for index in component]
            closed_rows, closed_prov = self._engine.close(component_rows, component_prov)
            # Subsumption removal is local to the component: tuples of different
            # components can never subsume each other because they never share a
            # non-null value.
            closed_table = remove_subsumed(
                Table(self.result_name, union.schema, closed_rows, provenance=closed_prov)
            )
            closed_provenance = closed_table.provenance or []
            for index, values in enumerate(closed_table.rows):
                yield values, closed_provenance[index]

    def preview(self, tables: Sequence[Table], limit: int = 10) -> Table:
        """Return the first ``limit`` Full Disjunction tuples as a table."""
        if not tables:
            raise ValueError("preview() requires at least one table")
        union_schema = outer_union(
            [table if table.provenance is not None else table.with_default_provenance() for table in tables]
        ).schema
        rows: List[RowValues] = []
        provenance: List[Provenance] = []
        for values, sources in self.iter_tuples(tables):
            rows.append(values)
            provenance.append(sources)
            if len(rows) >= limit:
                break
        return Table(self.result_name, union_schema, rows, provenance=provenance)

    # -- eager API (FullDisjunctionAlgorithm) --------------------------------------------
    def _integrate(self, tables: Sequence[Table], statistics: Dict[str, float]) -> Table:
        union = outer_union(tables, name=self.result_name)
        rows: List[RowValues] = []
        provenance: List[Provenance] = []
        emitted = 0
        for values, sources in self.iter_tuples(tables):
            rows.append(values)
            provenance.append(sources)
            emitted += 1
        statistics["emitted_tuples"] = float(emitted)
        return Table(self.result_name, union.schema, rows, provenance=provenance)
