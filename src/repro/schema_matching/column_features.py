"""Column signatures: content-based features used for holistic schema matching.

ALITE represents each column by pre-trained embeddings of its contents and
aligns columns whose representations are close.  A
:class:`ColumnSignature` captures the same idea: a mean-pooled embedding of a
sample of the column's values plus a few cheap profile statistics (value
length, numeric fraction, distinctness) that help separate columns whose
content embeddings are similar but whose roles differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.table.nulls import is_null
from repro.table.table import Table
from repro.utils.text import normalize_value


@dataclass
class ColumnSignature:
    """Embedding plus profile statistics of one column."""

    table: str
    column: str
    embedding: np.ndarray
    mean_length: float
    numeric_fraction: float
    distinct_fraction: float
    null_fraction: float
    sample_values: List[object]

    def profile_vector(self) -> np.ndarray:
        """The non-embedding statistics as a small vector."""
        return np.array(
            [self.mean_length, self.numeric_fraction, self.distinct_fraction, self.null_fraction],
            dtype=np.float64,
        )

    def similarity(self, other: "ColumnSignature", profile_weight: float = 0.15) -> float:
        """Similarity in [0, 1]: cosine of embeddings blended with profile closeness."""
        cosine = float(np.dot(self.embedding, other.embedding))
        cosine = (cosine + 1.0) / 2.0  # map [-1, 1] -> [0, 1]
        profile_distance = float(
            np.abs(self.profile_vector() - other.profile_vector()).mean()
        )
        profile_similarity = max(0.0, 1.0 - profile_distance)
        return (1.0 - profile_weight) * cosine + profile_weight * profile_similarity


def _looks_numeric(value: object) -> bool:
    text = normalize_value(value).replace(",", "").replace("%", "").replace("$", "")
    if not text:
        return False
    try:
        float(text)
        return True
    except ValueError:
        return False


def column_signature(
    table: Table,
    column: str,
    embedder: ValueEmbedder,
    sample_size: int = 30,
) -> ColumnSignature:
    """Compute the signature of one column.

    The value sample is deterministic (first ``sample_size`` distinct values)
    so repeated runs and tests see identical signatures.
    """
    values = table.column_values(column, dropna=True)
    distinct = table.distinct_values(column)
    sample = distinct[:sample_size]

    if sample:
        embeddings = embedder.embed_many(sample)
        pooled = embeddings.mean(axis=0)
        norm = np.linalg.norm(pooled)
        if norm > 0:
            pooled = pooled / norm
    else:
        pooled = np.zeros(embedder.dimension, dtype=np.float64)

    lengths = [len(normalize_value(value)) for value in sample] or [0]
    mean_length = min(1.0, float(np.mean(lengths)) / 40.0)
    numeric_fraction = (
        float(np.mean([1.0 if _looks_numeric(value) else 0.0 for value in sample])) if sample else 0.0
    )
    distinct_fraction = len(distinct) / len(values) if values else 0.0
    null_fraction = table.null_fraction(column)

    return ColumnSignature(
        table=table.name,
        column=column,
        embedding=pooled,
        mean_length=mean_length,
        numeric_fraction=numeric_fraction,
        distinct_fraction=distinct_fraction,
        null_fraction=null_fraction,
        sample_values=list(sample),
    )


def all_signatures(
    tables: Sequence[Table], embedder: ValueEmbedder, sample_size: int = 30
) -> List[ColumnSignature]:
    """Signatures of every column of every table (tables in given order)."""
    signatures: List[ColumnSignature] = []
    for table in tables:
        for column in table.columns:
            signatures.append(column_signature(table, column, embedder, sample_size=sample_size))
    return signatures
