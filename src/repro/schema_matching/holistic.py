"""Holistic (content-embedding-based) schema matching.

Following ALITE, which applies holistic schema matching over column-based
pre-trained embeddings, columns of all input tables are clustered by the
similarity of their :class:`~repro.schema_matching.column_features.ColumnSignature`
subject to the structural constraint that a cluster contains at most one
column per table (columns of the same table never align with each other).

The clustering is constrained agglomerative: all cross-table column pairs are
sorted by similarity and merged greedily while they stay above the similarity
threshold and respect the one-column-per-table constraint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.fasttext import FastTextEmbedder
from repro.schema_matching.alignment import AlignedColumn, ColumnAlignment, ColumnRef
from repro.schema_matching.column_features import ColumnSignature, all_signatures
from repro.table.table import Table
from repro.utils.text import normalize_value


class HolisticSchemaMatcher:
    """Constraint-aware agglomerative clustering of column signatures.

    Parameters
    ----------
    embedder:
        Embedder used for column-content signatures (defaults to the cheap
        FastText simulator — column alignment needs topical similarity, not
        the fine-grained semantics the value matcher needs).
    similarity_threshold:
        Minimum signature similarity for two columns (or clusters) to merge.
    header_bonus:
        Added to the similarity of column pairs whose normalised headers are
        equal; models the fact that consistent headers, when present, are
        strong evidence.
    sample_size:
        Number of distinct values sampled per column for the signature.
    """

    name = "holistic"

    def __init__(
        self,
        embedder: Optional[ValueEmbedder] = None,
        similarity_threshold: float = 0.62,
        header_bonus: float = 0.15,
        sample_size: int = 30,
    ) -> None:
        self.embedder = embedder if embedder is not None else FastTextEmbedder()
        self.similarity_threshold = similarity_threshold
        self.header_bonus = header_bonus
        self.sample_size = sample_size

    # -- public API -------------------------------------------------------------------
    def align(self, tables: Sequence[Table]) -> ColumnAlignment:
        """Cluster the columns of ``tables`` into aligned groups."""
        signatures = all_signatures(tables, self.embedder, sample_size=self.sample_size)
        pair_scores = self._pair_scores(signatures)

        clusters: Dict[int, Set[int]] = {index: {index} for index in range(len(signatures))}
        cluster_of: Dict[int, int] = {index: index for index in range(len(signatures))}

        for score, left, right in pair_scores:
            if score < self.similarity_threshold:
                break
            left_cluster = cluster_of[left]
            right_cluster = cluster_of[right]
            if left_cluster == right_cluster:
                continue
            if self._tables_conflict(clusters[left_cluster], clusters[right_cluster], signatures):
                continue
            # Merge the smaller cluster into the larger one.
            if len(clusters[left_cluster]) < len(clusters[right_cluster]):
                left_cluster, right_cluster = right_cluster, left_cluster
            for index in clusters[right_cluster]:
                cluster_of[index] = left_cluster
            clusters[left_cluster] |= clusters.pop(right_cluster)

        return self._to_alignment(clusters, signatures)

    # -- internals ----------------------------------------------------------------------
    def _pair_scores(
        self, signatures: List[ColumnSignature]
    ) -> List[Tuple[float, int, int]]:
        scored: List[Tuple[float, int, int]] = []
        for left in range(len(signatures)):
            for right in range(left + 1, len(signatures)):
                sig_left = signatures[left]
                sig_right = signatures[right]
                if sig_left.table == sig_right.table:
                    continue
                score = sig_left.similarity(sig_right)
                if normalize_value(sig_left.column) == normalize_value(sig_right.column):
                    score = min(1.0, score + self.header_bonus)
                scored.append((score, left, right))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        return scored

    @staticmethod
    def _tables_conflict(
        left_members: Set[int], right_members: Set[int], signatures: List[ColumnSignature]
    ) -> bool:
        left_tables = {signatures[index].table for index in left_members}
        right_tables = {signatures[index].table for index in right_members}
        return bool(left_tables & right_tables)

    @staticmethod
    def _to_alignment(
        clusters: Dict[int, Set[int]], signatures: List[ColumnSignature]
    ) -> ColumnAlignment:
        groups: List[AlignedColumn] = []
        used_names: Set[str] = set()
        ordered_clusters = sorted(clusters.values(), key=lambda members: min(members))
        for members in ordered_clusters:
            ordered = sorted(members)
            refs = [
                ColumnRef(table=signatures[index].table, column=signatures[index].column)
                for index in ordered
            ]
            # Canonical name: the most common header in the group, first-seen on ties.
            header_counts: Dict[str, int] = {}
            first_position: Dict[str, int] = {}
            for position, ref in enumerate(refs):
                header_counts[ref.column] = header_counts.get(ref.column, 0) + 1
                first_position.setdefault(ref.column, position)
            canonical = min(
                header_counts,
                key=lambda header: (-header_counts[header], first_position[header]),
            )
            name = canonical
            suffix = 1
            while name in used_names:
                suffix += 1
                name = f"{canonical}_{suffix}"
            used_names.add(name)
            groups.append(AlignedColumn(name=name, members=refs))
        return ColumnAlignment(groups)
