"""Alignment strategies as a plugin registry.

Historically the pipeline validated the ``alignment`` knob against the bare
string literals ``"by_name"`` / ``"holistic"`` and branched on them by hand
inside the operators.  ``ALIGNMENT_STRATEGIES`` turns the knob into the same
registry mechanism as every other extension point: a strategy is a callable
``(tables, embedder=None) -> ColumnAlignment``, and custom strategies plug in
with ``@ALIGNMENT_STRATEGIES.register("name")``.

Built-in strategies:

* ``"by_name"`` — group columns with identical headers (the Figure 1 setting).
* ``"header"`` — group columns whose *normalised* headers are equal
  (:class:`~repro.schema_matching.header.HeaderSchemaMatcher`).
* ``"holistic"`` — embedding-based holistic schema matching
  (:class:`~repro.schema_matching.holistic.HolisticSchemaMatcher`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.embeddings.base import ValueEmbedder
from repro.registry import Registry
from repro.schema_matching.alignment import ColumnAlignment
from repro.schema_matching.header import HeaderSchemaMatcher
from repro.schema_matching.holistic import HolisticSchemaMatcher
from repro.table.table import Table

#: A strategy aligns the columns of ``tables``; ``embedder`` is the pipeline's
#: warm embedder, which content-based strategies may use (or ignore).
AlignmentStrategy = Callable[..., ColumnAlignment]

#: All alignment strategies, keyed by registry name.  Strategies are callables
#: fetched with ``ALIGNMENT_STRATEGIES.get`` (not ``create``).
ALIGNMENT_STRATEGIES: Registry[AlignmentStrategy] = Registry("alignment strategy")


@ALIGNMENT_STRATEGIES.register("by_name")
def align_by_name(
    tables: Sequence[Table], embedder: Optional[ValueEmbedder] = None
) -> ColumnAlignment:
    """Group columns with identical headers (the paper's Figure 1 setting)."""
    return ColumnAlignment.from_named_columns(tables)


@ALIGNMENT_STRATEGIES.register("header")
def align_by_normalized_header(
    tables: Sequence[Table], embedder: Optional[ValueEmbedder] = None
) -> ColumnAlignment:
    """Group columns whose normalised headers are equal."""
    return HeaderSchemaMatcher().align(tables)


@ALIGNMENT_STRATEGIES.register("holistic")
def align_holistic(
    tables: Sequence[Table], embedder: Optional[ValueEmbedder] = None
) -> ColumnAlignment:
    """Embedding-based holistic schema matching (the ALITE setting)."""
    return HolisticSchemaMatcher(embedder=embedder).align(tables)


def available_strategies() -> List[str]:
    """Names of the registered alignment strategies."""
    return ALIGNMENT_STRATEGIES.names()
