"""Column alignment data structures.

A :class:`ColumnAlignment` is the output of schema matching: a partition of
the input tables' columns into groups of aligning columns, each group given a
canonical output name.  Applying an alignment renames every table's columns to
the canonical names so that the downstream (natural-join-based) Full
Disjunction integrates exactly the aligned columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.table.table import Table


@dataclass(frozen=True)
class ColumnRef:
    """A reference to one column of one input table."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass
class AlignedColumn:
    """A group of columns (at most one per table) that align."""

    name: str
    members: List[ColumnRef] = field(default_factory=list)

    def tables(self) -> List[str]:
        """The tables contributing a column to this group."""
        return [member.table for member in self.members]

    def column_in(self, table: str) -> Optional[str]:
        """The column of ``table`` in this group, or ``None``."""
        for member in self.members:
            if member.table == table:
                return member.column
        return None

    def __len__(self) -> int:
        return len(self.members)


class ColumnAlignment:
    """A full alignment: every input column belongs to exactly one group."""

    def __init__(self, groups: Iterable[AlignedColumn]) -> None:
        self.groups: List[AlignedColumn] = list(groups)
        self._validate()

    def _validate(self) -> None:
        seen: Dict[ColumnRef, str] = {}
        names = set()
        for group in self.groups:
            if group.name in names:
                raise ValueError(f"duplicate aligned-column name {group.name!r}")
            names.add(group.name)
            tables_in_group = set()
            for member in group.members:
                if member in seen:
                    raise ValueError(f"column {member} appears in two aligned groups")
                seen[member] = group.name
                if member.table in tables_in_group:
                    raise ValueError(
                        f"aligned group {group.name!r} contains two columns of table {member.table!r}"
                    )
                tables_in_group.add(member.table)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    def group_for(self, table: str, column: str) -> Optional[AlignedColumn]:
        """The group containing ``table.column``, or ``None``."""
        for group in self.groups:
            if group.column_in(table) == column:
                return group
        return None

    def multi_table_groups(self) -> List[AlignedColumn]:
        """Groups spanning at least two tables — the only ones needing value matching."""
        return [group for group in self.groups if len(group) >= 2]

    def rename_map(self, table: str) -> Dict[str, str]:
        """``original column -> canonical name`` mapping for one table."""
        mapping: Dict[str, str] = {}
        for group in self.groups:
            column = group.column_in(table)
            if column is not None:
                mapping[column] = group.name
        return mapping

    def apply(self, tables: Sequence[Table]) -> List[Table]:
        """Rename every table's columns to the canonical aligned names."""
        return [table.rename(self.rename_map(table.name)) for table in tables]

    def as_dict(self) -> Dict[str, List[str]]:
        """``canonical name -> ["table.column", ...]`` (for reports and tests)."""
        return {group.name: [str(member) for member in group.members] for group in self.groups}

    @classmethod
    def from_named_columns(cls, tables: Sequence[Table]) -> "ColumnAlignment":
        """Alignment that groups columns with identical names (Figure 1 setting)."""
        groups: Dict[str, AlignedColumn] = {}
        for table in tables:
            for column in table.columns:
                group = groups.setdefault(column, AlignedColumn(name=column))
                if group.column_in(table.name) is None:
                    group.members.append(ColumnRef(table=table.name, column=column))
        return cls(groups.values())
