"""Column alignment (holistic schema matching).

Before tuples can be integrated, the pipeline must know which columns of the
input tables align (represent the same attribute).  Data-lake tables have
missing or unreliable headers, so ALITE — and therefore this reproduction —
aligns columns holistically using column-content embeddings; a header-equality
matcher is provided as the trivial baseline and for the paper's Figure 1
setting where aligned columns share names.
"""

from repro.schema_matching.alignment import AlignedColumn, ColumnAlignment, ColumnRef
from repro.schema_matching.column_features import ColumnSignature, column_signature
from repro.schema_matching.header import HeaderSchemaMatcher
from repro.schema_matching.holistic import HolisticSchemaMatcher
from repro.schema_matching.strategies import ALIGNMENT_STRATEGIES, available_strategies

__all__ = [
    "ColumnRef",
    "AlignedColumn",
    "ColumnAlignment",
    "ColumnSignature",
    "column_signature",
    "HeaderSchemaMatcher",
    "HolisticSchemaMatcher",
    "ALIGNMENT_STRATEGIES",
    "available_strategies",
]
