"""Header-based schema matching (trivial baseline).

Groups columns whose (normalised) headers are identical.  This is the
alignment the paper's Figure 1 assumes for presentation ("columns that align
are given the same name"), and it is the baseline the holistic matcher is an
improvement over when headers are unreliable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.schema_matching.alignment import AlignedColumn, ColumnAlignment, ColumnRef
from repro.table.table import Table
from repro.utils.text import normalize_value


class HeaderSchemaMatcher:
    """Aligns columns by exact (normalised) header equality."""

    name = "header"

    def align(self, tables: Sequence[Table]) -> ColumnAlignment:
        """Return the alignment grouping equal headers across tables."""
        groups: Dict[str, AlignedColumn] = {}
        used_names: Dict[str, str] = {}
        for table in tables:
            for column in table.columns:
                key = normalize_value(column)
                if key not in groups:
                    # Keep the first-seen original spelling as the canonical name,
                    # disambiguating if two different headers normalise identically.
                    canonical = column
                    if canonical in used_names and used_names[canonical] != key:
                        canonical = f"{column}__{len(groups)}"
                    used_names[canonical] = key
                    groups[key] = AlignedColumn(name=canonical)
                group = groups[key]
                if group.column_in(table.name) is None:
                    group.members.append(ColumnRef(table=table.name, column=column))
                else:
                    # Same table has two columns normalising to the same header:
                    # keep the extra column as its own singleton group.
                    singleton_name = f"{table.name}.{column}"
                    groups[f"{key}::{singleton_name}"] = AlignedColumn(
                        name=singleton_name,
                        members=[ColumnRef(table=table.name, column=column)],
                    )
        return ColumnAlignment(groups.values())
