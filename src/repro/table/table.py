"""The :class:`Table` data structure used throughout the library.

A table is a named relation: an ordered schema plus a list of rows, where each
row is a tuple of cell values aligned with the schema.  Missing values are
represented by :data:`repro.table.nulls.NULL` (or labelled nulls during Full
Disjunction processing).

Tables optionally carry *provenance*: one frozenset of source tuple ids per
row.  The Full Disjunction operators use provenance to report, like the
paper's Figure 1, which input tuples were merged into each output tuple.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.table.nulls import NULL, is_null
from repro.table.schema import Schema

CellValue = object
RowValues = Tuple[CellValue, ...]
Provenance = frozenset


class Row:
    """A read-only view of one table row with access by column name."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[CellValue]) -> None:
        if len(values) != len(schema):
            raise ValueError(
                f"row width {len(values)} does not match schema width {len(schema)}"
            )
        self._schema = schema
        self._values = tuple(values)

    def __getitem__(self, key: str | int) -> CellValue:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.position(key)]

    def __iter__(self) -> Iterator[CellValue]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values and self._schema == other._schema
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        return f"Row({self.as_dict()!r})"

    @property
    def values(self) -> RowValues:
        """The raw cell values, aligned with the schema."""
        return self._values

    @property
    def schema(self) -> Schema:
        """The schema this row is aligned with."""
        return self._schema

    def get(self, column: str, default: CellValue = NULL) -> CellValue:
        """Return the value in ``column`` or ``default`` if the column is absent."""
        if column not in self._schema:
            return default
        return self._values[self._schema.position(column)]

    def as_dict(self) -> Dict[str, CellValue]:
        """Return the row as a ``column -> value`` dictionary."""
        return dict(zip(self._schema.columns, self._values))

    def is_null(self, column: str) -> bool:
        """Return whether the value in ``column`` is (any kind of) null."""
        return is_null(self[column])


class Table:
    """A named in-memory relation.

    Parameters
    ----------
    name:
        Table name (data-lake file name in the paper's setting).
    columns:
        Schema, or any iterable of column names.
    rows:
        Iterable of rows; each row may be a sequence aligned with the schema
        or a mapping from column name to value (missing keys become NULL).
    provenance:
        Optional iterable of tuple-id sets, one per row, recording which
        source tuples produced the row.  When omitted, tables created from raw
        data get singleton provenance ``{f"{name}:{row_index}"}`` lazily via
        :meth:`with_default_provenance`.
    """

    def __init__(
        self,
        name: str,
        columns: Schema | Iterable[str],
        rows: Iterable[Sequence[CellValue] | Mapping[str, CellValue]] = (),
        provenance: Optional[Iterable[Iterable[str]]] = None,
    ) -> None:
        self.name = str(name)
        self.schema = columns if isinstance(columns, Schema) else Schema(columns)
        self._rows: List[RowValues] = [self._coerce_row(row) for row in rows]
        if provenance is None:
            self._provenance: Optional[List[Provenance]] = None
        else:
            self._provenance = [frozenset(entry) for entry in provenance]
            if len(self._provenance) != len(self._rows):
                raise ValueError(
                    f"provenance length {len(self._provenance)} does not match "
                    f"row count {len(self._rows)}"
                )

    # -- construction ------------------------------------------------------------
    def _coerce_row(self, row: Sequence[CellValue] | Mapping[str, CellValue]) -> RowValues:
        if isinstance(row, Mapping):
            return tuple(row.get(column, NULL) for column in self.schema)
        values = tuple(row)
        if len(values) != len(self.schema):
            raise ValueError(
                f"row width {len(values)} does not match schema width {len(self.schema)} "
                f"for table {self.name!r}"
            )
        return values

    @classmethod
    def from_dicts(
        cls,
        name: str,
        records: Sequence[Mapping[str, CellValue]],
        columns: Optional[Sequence[str]] = None,
    ) -> "Table":
        """Build a table from a list of dictionaries.

        When ``columns`` is omitted the schema is the union of keys in first-seen
        order.
        """
        if columns is None:
            ordered: List[str] = []
            seen = set()
            for record in records:
                for key in record:
                    if key not in seen:
                        ordered.append(key)
                        seen.add(key)
            columns = ordered
        return cls(name, columns, records)

    @classmethod
    def from_columns(
        cls, name: str, column_data: Mapping[str, Sequence[CellValue]]
    ) -> "Table":
        """Build a table from a ``column -> values`` mapping (columns same length)."""
        lengths = {len(values) for values in column_data.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have unequal lengths: { {k: len(v) for k, v in column_data.items()} }")
        length = lengths.pop() if lengths else 0
        names = list(column_data)
        rows = [tuple(column_data[column][i] for column in names) for i in range(length)]
        return cls(name, names, rows)

    @classmethod
    def empty(cls, name: str, columns: Sequence[str]) -> "Table":
        """An empty table with the given schema."""
        return cls(name, columns, [])

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        for values in self._rows:
            yield Row(self.schema, values)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={list(self.schema.columns)!r}, rows={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    # -- accessors -----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names, in order."""
        return self.schema.columns

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return len(self._rows)

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.schema)

    @property
    def rows(self) -> List[RowValues]:
        """The raw row tuples (do not mutate)."""
        return self._rows

    @property
    def provenance(self) -> Optional[List[Provenance]]:
        """Per-row tuple-id sets, or ``None`` if the table carries no provenance."""
        return self._provenance

    def row(self, index: int) -> Row:
        """Return the row at ``index`` as a :class:`Row` view."""
        return Row(self.schema, self._rows[index])

    def cell(self, index: int, column: str) -> CellValue:
        """Return a single cell."""
        return self._rows[index][self.schema.position(column)]

    def column(self, column: str) -> List[CellValue]:
        """Return all values of ``column`` in row order (including nulls)."""
        position = self.schema.position(column)
        return [values[position] for values in self._rows]

    def column_values(self, column: str, *, dropna: bool = True) -> List[CellValue]:
        """Return the values of ``column``, optionally dropping nulls."""
        values = self.column(column)
        if dropna:
            return [value for value in values if not is_null(value)]
        return values

    def distinct_values(self, column: str, *, dropna: bool = True) -> List[CellValue]:
        """Return the distinct values of ``column`` preserving first-seen order."""
        seen = set()
        distinct: List[CellValue] = []
        for value in self.column_values(column, dropna=dropna):
            if value not in seen:
                seen.add(value)
                distinct.append(value)
        return distinct

    def null_fraction(self, column: str) -> float:
        """Fraction of rows whose value in ``column`` is null (0.0 for empty tables)."""
        if not self._rows:
            return 0.0
        nulls = sum(1 for value in self.column(column) if is_null(value))
        return nulls / len(self._rows)

    # -- transformation (all return new tables) -------------------------------------
    def with_name(self, name: str) -> "Table":
        """Return a copy of the table under a different name."""
        return Table(name, self.schema, self._rows, provenance=self._provenance)

    def with_rows(
        self,
        rows: Iterable[Sequence[CellValue] | Mapping[str, CellValue]],
        provenance: Optional[Iterable[Iterable[str]]] = None,
    ) -> "Table":
        """Return a table with the same name/schema but different rows."""
        return Table(self.name, self.schema, rows, provenance=provenance)

    def with_default_provenance(self, prefix: Optional[str] = None) -> "Table":
        """Attach singleton provenance ``{prefix:index}`` to every row.

        The Full Disjunction operators call this on raw input tables so that
        output tuples can report which source tuples they combined.
        """
        prefix = self.name if prefix is None else prefix
        provenance = [frozenset({f"{prefix}:{index}"}) for index in range(len(self._rows))]
        return Table(self.name, self.schema, self._rows, provenance=provenance)

    def add_column(self, column: str, values: Sequence[CellValue]) -> "Table":
        """Return a table with one extra column appended."""
        if len(values) != len(self._rows):
            raise ValueError(
                f"column length {len(values)} does not match row count {len(self._rows)}"
            )
        schema = Schema(list(self.schema.columns) + [column])
        rows = [tuple(row) + (values[index],) for index, row in enumerate(self._rows)]
        return Table(self.name, schema, rows, provenance=self._provenance)

    def drop_columns(self, columns: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        keep = [column for column in self.schema if column not in set(columns)]
        return self.project(keep)

    def project(self, columns: Sequence[str]) -> "Table":
        """Return a table restricted to ``columns`` (keeps duplicates and order)."""
        positions = self.schema.positions(columns)
        rows = [tuple(row[position] for position in positions) for row in self._rows]
        return Table(self.name, columns, rows, provenance=self._provenance)

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """Return a table with columns renamed according to ``mapping``."""
        return Table(self.name, self.schema.renamed(mapping), self._rows, provenance=self._provenance)

    def filter_rows(self, predicate: Callable[[Row], bool]) -> "Table":
        """Return a table keeping only rows for which ``predicate`` is true."""
        kept_rows: List[RowValues] = []
        kept_prov: List[Provenance] = []
        for index, values in enumerate(self._rows):
            if predicate(Row(self.schema, values)):
                kept_rows.append(values)
                if self._provenance is not None:
                    kept_prov.append(self._provenance[index])
        provenance = kept_prov if self._provenance is not None else None
        return Table(self.name, self.schema, kept_rows, provenance=provenance)

    def map_column(self, column: str, func: Callable[[CellValue], CellValue]) -> "Table":
        """Return a table with ``func`` applied to every non-null value of ``column``."""
        position = self.schema.position(column)
        rows = []
        for values in self._rows:
            value = values[position]
            if is_null(value):
                rows.append(values)
            else:
                rows.append(values[:position] + (func(value),) + values[position + 1 :])
        return Table(self.name, self.schema, rows, provenance=self._provenance)

    def replace_values(self, column: str, mapping: Mapping[CellValue, CellValue]) -> "Table":
        """Return a table where values of ``column`` found in ``mapping`` are replaced.

        This is the rewrite step of the Fuzzy Full Disjunction pipeline: every
        cell is replaced by the representative value of its match set.
        """
        return self.map_column(column, lambda value: mapping.get(value, value))

    def head(self, count: int = 5) -> "Table":
        """Return the first ``count`` rows as a new table."""
        provenance = self._provenance[:count] if self._provenance is not None else None
        return Table(self.name, self.schema, self._rows[:count], provenance=provenance)

    def sample_rows(self, count: int, seed: int = 0) -> "Table":
        """Return a deterministic sample of ``count`` rows (without replacement)."""
        import random

        if count >= len(self._rows):
            return self
        rng = random.Random(seed)
        indexes = sorted(rng.sample(range(len(self._rows)), count))
        rows = [self._rows[index] for index in indexes]
        provenance = (
            [self._provenance[index] for index in indexes] if self._provenance is not None else None
        )
        return Table(self.name, self.schema, rows, provenance=provenance)

    def sorted_rows(self) -> "Table":
        """Return a table with rows sorted deterministically (nulls first)."""
        def key(values: RowValues) -> Tuple[str, ...]:
            return tuple("" if is_null(value) else f"~{value!s}" for value in values)

        order = sorted(range(len(self._rows)), key=lambda index: key(self._rows[index]))
        rows = [self._rows[index] for index in order]
        provenance = (
            [self._provenance[index] for index in order] if self._provenance is not None else None
        )
        return Table(self.name, self.schema, rows, provenance=provenance)

    def distinct_rows(self) -> "Table":
        """Return a table with duplicate rows removed (first occurrence kept)."""
        seen = set()
        rows: List[RowValues] = []
        provenance: List[Provenance] = []
        for index, values in enumerate(self._rows):
            if values in seen:
                continue
            seen.add(values)
            rows.append(values)
            if self._provenance is not None:
                provenance.append(self._provenance[index])
        return Table(
            self.name,
            self.schema,
            rows,
            provenance=provenance if self._provenance is not None else None,
        )

    # -- export ----------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, CellValue]]:
        """Return the rows as dictionaries."""
        return [dict(zip(self.schema.columns, values)) for values in self._rows]

    def rows_as_set(self) -> frozenset:
        """Return the rows as a frozenset (for order-insensitive comparison).

        Labelled nulls are normalised to plain NULL so that logically equal
        results produced by different algorithms compare equal.
        """
        normalised = []
        for values in self._rows:
            normalised.append(tuple(NULL if is_null(value) else value for value in values))
        return frozenset(normalised)

    def same_rows(self, other: "Table") -> bool:
        """Order-insensitive row comparison over the intersection-free schema."""
        if set(self.schema.columns) != set(other.schema.columns):
            return False
        aligned_other = other.project(list(self.schema.columns))
        return self.rows_as_set() == aligned_other.rows_as_set()

    def to_pretty_string(self, max_rows: int = 20) -> str:
        """Render a small ASCII preview of the table (used by the examples)."""
        columns = list(self.schema.columns)
        shown = self._rows[:max_rows]
        cells = [[str(column) for column in columns]]
        for values in shown:
            cells.append(["⊥" if is_null(value) else str(value) for value in values])
        widths = [max(len(row[i]) for row in cells) for i in range(len(columns))]
        lines = []
        header = " | ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)
