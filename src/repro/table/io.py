"""CSV and JSON I/O for tables.

Data-lake tables in the paper's benchmarks are CSV files.  Empty strings are
read back as nulls, and nulls are written as empty strings, which mirrors the
conventions of the public Auto-Join and ALITE benchmark files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.table.nulls import NULL, is_null
from repro.table.table import Table

PathLike = Union[str, Path]


def read_csv(path: PathLike, name: Optional[str] = None, *, delimiter: str = ",") -> Table:
    """Read a CSV file (header row required) into a :class:`Table`.

    Empty cells become NULL.  The table name defaults to the file stem.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty (no header row)") from None
        rows = []
        for record in reader:
            padded = list(record) + [""] * (len(header) - len(record))
            rows.append(tuple(NULL if cell == "" else cell for cell in padded[: len(header)]))
    return Table(name or path.stem, header, rows)


def write_csv(table: Table, path: PathLike, *, delimiter: str = ",") -> Path:
    """Write a table to CSV (nulls become empty cells).  Returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(list(table.columns))
        for values in table.rows:
            writer.writerow(["" if is_null(value) else value for value in values])
    return path


def read_json_records(path: PathLike, name: Optional[str] = None) -> Table:
    """Read a JSON file containing a list of records into a table."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"expected a JSON list of records in {path}")
    cleaned = []
    for record in records:
        cleaned.append({key: (NULL if value is None else value) for key, value in record.items()})
    return Table.from_dicts(name or path.stem, cleaned)


def write_json_records(table: Table, path: PathLike) -> Path:
    """Write a table as a JSON list of records (nulls become ``null``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = []
    for values in table.rows:
        record = {}
        for column, value in zip(table.columns, values):
            record[column] = None if is_null(value) else value
        records.append(record)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, ensure_ascii=False)
    return path


def load_directory(directory: PathLike, *, pattern: str = "*.csv") -> List[Table]:
    """Load every CSV table in a directory (sorted by file name)."""
    directory = Path(directory)
    tables = []
    for path in sorted(directory.glob(pattern)):
        tables.append(read_csv(path))
    return tables
