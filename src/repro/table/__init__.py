"""In-memory relational substrate.

The paper's pipeline operates over data-lake tables (CSV files).  This
subpackage provides the relational machinery every other part of the library
builds on: a :class:`~repro.table.table.Table` with named columns and nulls, a
:class:`~repro.table.schema.Schema`, labelled nulls used by the Full
Disjunction algorithms, relational operations (projection, selection, rename,
natural/outer joins, outer union), tuple subsumption, and CSV/JSON I/O.

It deliberately replaces pandas, which is not available in this environment,
with a small purpose-built implementation (see DESIGN.md, substitution list).
"""

from repro.table.nulls import NULL, LabeledNull, is_null, non_null
from repro.table.schema import Schema
from repro.table.table import Row, Table
from repro.table.operations import (
    concat_rows,
    cross_product,
    full_outer_join,
    inner_join,
    left_outer_join,
    outer_union,
    project,
    rename_columns,
    select_rows,
)
from repro.table.subsumption import remove_subsumed, subsumes
from repro.table.io import read_csv, read_json_records, write_csv, write_json_records

__all__ = [
    "Table",
    "Row",
    "Schema",
    "NULL",
    "LabeledNull",
    "is_null",
    "non_null",
    "project",
    "select_rows",
    "rename_columns",
    "inner_join",
    "left_outer_join",
    "full_outer_join",
    "outer_union",
    "cross_product",
    "concat_rows",
    "subsumes",
    "remove_subsumed",
    "read_csv",
    "write_csv",
    "read_json_records",
    "write_json_records",
]
