"""Null handling for data-lake tables.

Full Disjunction literature distinguishes *plain* nulls (missing values in the
input) from *labelled* nulls introduced by the outer union: a labelled null
marks "this attribute does not exist in the source table of this tuple", and
two labelled nulls never compare equal.  ALITE [18] relies on labelled nulls
during complementation; this module provides both kinds behind two small
predicates (:func:`is_null`, :func:`non_null`) that the rest of the code uses
so it never has to care which flavour it is looking at.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, TypeVar

T = TypeVar("T")


class _NullType:
    """Singleton plain null (missing value).

    Compares equal only to itself, is falsy, and renders as ``⊥`` the way the
    paper's Figure 1 prints missing attributes.
    """

    _instance: "_NullType | None" = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __str__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("__repro_null__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullType)

    def __lt__(self, other: object) -> bool:
        # Nulls sort before everything else so deterministic row ordering works.
        return not isinstance(other, _NullType)


NULL = _NullType()

_label_counter = itertools.count(1)


class LabeledNull:
    """A labelled (marked) null, unique per label.

    Two labelled nulls are equal only if they carry the same label; a labelled
    null is never equal to a plain null or to a constant.  Labelled nulls are
    produced by :func:`repro.table.operations.outer_union` and consumed by the
    ALITE complementation step.
    """

    __slots__ = ("label",)

    def __init__(self, label: int | None = None) -> None:
        self.label = next(_label_counter) if label is None else label

    def __repr__(self) -> str:
        return f"LabeledNull({self.label})"

    def __str__(self) -> str:
        return f"⊥{self.label}"

    def __hash__(self) -> int:
        return hash(("__repro_labeled_null__", self.label))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabeledNull) and other.label == self.label

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _NullType):
            return False
        if isinstance(other, LabeledNull):
            return self.label < other.label
        return True


def is_null(value: object) -> bool:
    """Return ``True`` for plain nulls, labelled nulls, ``None`` and NaN."""
    if value is None or isinstance(value, (_NullType, LabeledNull)):
        return True
    if isinstance(value, float) and value != value:  # NaN
        return True
    return False


def non_null(values: Iterable[T]) -> List[T]:
    """Return the non-null entries of ``values`` preserving order."""
    return [value for value in values if not is_null(value)]


def fresh_labeled_null() -> LabeledNull:
    """Return a labelled null with a process-unique label."""
    return LabeledNull()
