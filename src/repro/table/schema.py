"""Relational schemas (ordered, named columns)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class Schema:
    """An ordered collection of distinct column names.

    The schema is immutable; operations that "modify" it return new instances.
    Column order matters for presentation (CSV output, examples) but relational
    operations treat schemas as sets where appropriate.
    """

    __slots__ = ("_columns", "_positions")

    def __init__(self, columns: Iterable[str]) -> None:
        column_list = [str(column) for column in columns]
        seen: Dict[str, int] = {}
        for position, column in enumerate(column_list):
            if column in seen:
                raise ValueError(f"duplicate column name {column!r} in schema {column_list!r}")
            seen[column] = position
        self._columns: Tuple[str, ...] = tuple(column_list)
        self._positions: Dict[str, int] = seen

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._positions

    def __getitem__(self, index: int) -> str:
        return self._columns[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._columns == other._columns
        if isinstance(other, (list, tuple)):
            return self._columns == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"Schema({list(self._columns)!r})"

    # -- accessors ----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """The column names, in order."""
        return self._columns

    def position(self, column: str) -> int:
        """Return the index of ``column``; raises ``KeyError`` if absent."""
        try:
            return self._positions[column]
        except KeyError:
            raise KeyError(f"column {column!r} not in schema {list(self._columns)!r}") from None

    def positions(self, columns: Sequence[str]) -> List[int]:
        """Return the indexes of several columns, in the given order."""
        return [self.position(column) for column in columns]

    # -- set-style operations -----------------------------------------------------
    def intersection(self, other: "Schema | Sequence[str]") -> List[str]:
        """Columns present in both schemas, in this schema's order."""
        other_set = set(other)
        return [column for column in self._columns if column in other_set]

    def union(self, other: "Schema | Sequence[str]") -> "Schema":
        """Columns of this schema followed by the columns only in ``other``."""
        merged = list(self._columns)
        present = set(merged)
        for column in other:
            if column not in present:
                merged.append(column)
                present.add(column)
        return Schema(merged)

    def difference(self, other: "Schema | Sequence[str]") -> List[str]:
        """Columns of this schema that are not in ``other``, in order."""
        other_set = set(other)
        return [column for column in self._columns if column not in other_set]

    def renamed(self, mapping: Dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping`` (others kept)."""
        return Schema([mapping.get(column, column) for column in self._columns])

    def project(self, columns: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``columns`` (validates membership)."""
        for column in columns:
            self.position(column)
        return Schema(columns)
