"""Tuple subsumption.

A tuple *t* subsumes a tuple *s* (over the same schema) when *t* carries at
least the information of *s*: wherever *s* is non-null, *t* has the same
value.  Full Disjunction removes subsumed tuples so that no tuple in the
result is "partial" with respect to another (Galindo-Legaria 1994).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.table.nulls import is_null
from repro.table.table import Provenance, RowValues, Table


def subsumes(superior: RowValues, inferior: RowValues) -> bool:
    """Return whether ``superior`` subsumes ``inferior`` (same schema assumed).

    Every tuple subsumes itself.  Labelled nulls are treated as plain nulls
    for subsumption purposes: they carry no information.
    """
    if len(superior) != len(inferior):
        raise ValueError("subsumption is only defined for tuples over the same schema")
    for sup_value, inf_value in zip(superior, inferior):
        if is_null(inf_value):
            continue
        if is_null(sup_value) or sup_value != inf_value:
            return False
    return True


def strictly_subsumes(superior: RowValues, inferior: RowValues) -> bool:
    """Return whether ``superior`` subsumes ``inferior`` and they differ in information."""
    if not subsumes(superior, inferior):
        return False
    return _information_signature(superior) != _information_signature(inferior)


def _information_signature(values: RowValues) -> Tuple[Tuple[int, object], ...]:
    return tuple((index, value) for index, value in enumerate(values) if not is_null(value))


def remove_subsumed(table: Table, *, merge_provenance: bool = True) -> Table:
    """Return ``table`` without tuples subsumed by another tuple.

    Exact duplicates collapse to a single representative.  When
    ``merge_provenance`` is true the provenance of a removed tuple is folded
    into the provenance of (one of) the tuples that subsume it, so no source
    tuple id is lost — this is what lets the Fuzzy FD output report complete
    TID sets as in Figure 1 of the paper.

    The implementation groups tuples by their non-null signature and uses a
    candidate index on (position, value) pairs so the common case is far
    cheaper than the quadratic worst case.
    """
    rows = table.rows
    count = len(rows)
    if count <= 1:
        return table

    signatures = [_information_signature(values) for values in rows]
    info_sizes = [len(signature) for signature in signatures]

    # Exact-duplicate collapse first (cheap, very common after outer union).
    first_of_signature: Dict[Tuple[Tuple[int, object], ...], int] = {}
    duplicate_of: Dict[int, int] = {}
    for index, signature in enumerate(signatures):
        if signature in first_of_signature:
            duplicate_of[index] = first_of_signature[signature]
        else:
            first_of_signature[signature] = index

    survivors = [index for index in range(count) if index not in duplicate_of]

    # Candidate index: for every (position, value) in a surviving tuple's
    # signature, remember which survivors contain it.  A tuple can only be
    # subsumed by tuples that contain *all* of its (position, value) pairs, so
    # we probe the smallest posting list.
    postings: Dict[Tuple[int, object], List[int]] = {}
    for index in survivors:
        for item in signatures[index]:
            postings.setdefault(item, []).append(index)

    removed: set = set(duplicate_of)
    absorbed_by: Dict[int, int] = dict(duplicate_of)

    for index in survivors:
        signature = signatures[index]
        if not signature:
            # A fully-null tuple is subsumed by any tuple with information.
            if len(survivors) > 1:
                other = next(i for i in survivors if i != index)
                removed.add(index)
                absorbed_by[index] = other
            continue
        smallest = min((postings[item] for item in signature), key=len)
        for candidate in smallest:
            if candidate == index or candidate in removed:
                continue
            if info_sizes[candidate] < info_sizes[index]:
                continue
            if info_sizes[candidate] == info_sizes[index]:
                # Equal information content: identical signatures were already
                # collapsed, so candidate cannot strictly subsume index.
                continue
            if subsumes(rows[candidate], rows[index]):
                removed.add(index)
                absorbed_by[index] = candidate
                break

    kept = [index for index in range(count) if index not in removed]
    kept_rows = [rows[index] for index in kept]

    provenance: Optional[List[Provenance]] = None
    if table.provenance is not None:
        merged: Dict[int, set] = {index: set(table.provenance[index]) for index in kept}
        if merge_provenance:
            for index in removed:
                target = absorbed_by[index]
                # Follow the absorption chain to a surviving tuple.
                seen = set()
                while target in removed and target not in seen:
                    seen.add(target)
                    target = absorbed_by[target]
                if target in merged:
                    merged[target] |= set(table.provenance[index])
        provenance = [frozenset(merged[index]) for index in kept]

    return Table(table.name, table.schema, kept_rows, provenance=provenance)
