"""Relational operations over :class:`~repro.table.table.Table`.

These implement the algebra the Full Disjunction algorithms are built from:
projection, selection, renaming, natural inner/outer joins (hash based), the
outer union (schema union with labelled or plain nulls for missing
attributes), and the cross product.  Joins are *natural*: tuples combine when
they agree on every shared attribute on which both are non-null, and share at
least one non-null attribute (the standard join-consistency condition used in
the FD literature).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.table.nulls import NULL, fresh_labeled_null, is_null
from repro.table.schema import Schema
from repro.table.table import CellValue, Provenance, Row, RowValues, Table

# ---------------------------------------------------------------------------------
# simple unary operations (thin wrappers so callers can use a functional style)
# ---------------------------------------------------------------------------------


def project(table: Table, columns: Sequence[str]) -> Table:
    """Project ``table`` onto ``columns``."""
    return table.project(columns)


def select_rows(table: Table, predicate: Callable[[Row], bool]) -> Table:
    """Keep only rows satisfying ``predicate``."""
    return table.filter_rows(predicate)


def rename_columns(table: Table, mapping: Dict[str, str]) -> Table:
    """Rename columns of ``table`` according to ``mapping``."""
    return table.rename(mapping)


def concat_rows(name: str, tables: Sequence[Table]) -> Table:
    """Concatenate tables that share an identical schema."""
    if not tables:
        raise ValueError("concat_rows requires at least one table")
    schema = tables[0].schema
    for table in tables[1:]:
        if table.schema != schema:
            raise ValueError(
                f"cannot concat tables with different schemas: "
                f"{list(schema.columns)} vs {list(table.schema.columns)}"
            )
    rows: List[RowValues] = []
    provenance: List[Provenance] = []
    has_provenance = all(table.provenance is not None for table in tables)
    for table in tables:
        rows.extend(table.rows)
        if has_provenance and table.provenance is not None:
            provenance.extend(table.provenance)
    return Table(name, schema, rows, provenance=provenance if has_provenance else None)


# ---------------------------------------------------------------------------------
# join machinery
# ---------------------------------------------------------------------------------


def join_consistent(
    left: RowValues,
    right: RowValues,
    shared_positions: Sequence[Tuple[int, int]],
) -> bool:
    """Return whether two tuples are join-consistent on their shared attributes.

    Join-consistency (as in Galindo-Legaria / Cohen et al.) requires the two
    tuples to agree on every shared attribute where *both* are non-null, and to
    have at least one shared attribute where both are non-null.  Labelled
    nulls never match anything.
    """
    agreed_on_some = False
    for left_position, right_position in shared_positions:
        left_value = left[left_position]
        right_value = right[right_position]
        if is_null(left_value) or is_null(right_value):
            continue
        if left_value != right_value:
            return False
        agreed_on_some = True
    return agreed_on_some


def merge_rows(
    left: RowValues,
    right: RowValues,
    left_schema: Schema,
    right_schema: Schema,
    output_schema: Schema,
) -> RowValues:
    """Merge two join-consistent tuples into a tuple over ``output_schema``.

    Non-null values win over nulls; when both sides are non-null they agree by
    the join-consistency precondition, so either can be taken.
    """
    merged: List[CellValue] = []
    for column in output_schema:
        left_value = left[left_schema.position(column)] if column in left_schema else NULL
        right_value = right[right_schema.position(column)] if column in right_schema else NULL
        if is_null(left_value):
            merged.append(NULL if is_null(right_value) else right_value)
        else:
            merged.append(left_value)
    return tuple(merged)


def _merge_provenance(left: Optional[Provenance], right: Optional[Provenance]) -> Provenance:
    return frozenset(left or frozenset()) | frozenset(right or frozenset())


def _build_join_index(
    table: Table, shared_columns: Sequence[str]
) -> Dict[Tuple[str, CellValue], List[int]]:
    """Index row ids of ``table`` by each non-null value in the shared columns."""
    index: Dict[Tuple[str, CellValue], List[int]] = {}
    positions = table.schema.positions(shared_columns)
    for row_id, values in enumerate(table.rows):
        for column, position in zip(shared_columns, positions):
            value = values[position]
            if is_null(value):
                continue
            index.setdefault((column, value), []).append(row_id)
    return index


def _candidate_partners(
    left_values: RowValues,
    left_schema: Schema,
    shared_columns: Sequence[str],
    right_index: Dict[Tuple[str, CellValue], List[int]],
) -> List[int]:
    """Right-row candidates that share at least one non-null value with the left row."""
    candidates: List[int] = []
    seen = set()
    for column in shared_columns:
        value = left_values[left_schema.position(column)]
        if is_null(value):
            continue
        for row_id in right_index.get((column, value), ()):
            if row_id not in seen:
                seen.add(row_id)
                candidates.append(row_id)
    return candidates


def inner_join(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Natural inner join of two tables on their shared attributes.

    If the tables share no attributes the result is empty (this library never
    silently falls back to a cross product).
    """
    return _join(left, right, keep_left=False, keep_right=False, name=name)


def left_outer_join(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Natural left outer join (all left tuples preserved)."""
    return _join(left, right, keep_left=True, keep_right=False, name=name)


def full_outer_join(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Natural full outer join (all tuples of both sides preserved)."""
    return _join(left, right, keep_left=True, keep_right=True, name=name)


def _join(
    left: Table,
    right: Table,
    *,
    keep_left: bool,
    keep_right: bool,
    name: Optional[str],
) -> Table:
    output_schema = left.schema.union(right.schema)
    shared_columns = left.schema.intersection(right.schema)
    result_name = name or f"({left.name}⋈{right.name})"

    left_prov = left.provenance
    right_prov = right.provenance
    has_prov = left_prov is not None or right_prov is not None

    rows: List[RowValues] = []
    provenance: List[Provenance] = []
    matched_right: set = set()

    if shared_columns:
        shared_positions = [
            (left.schema.position(column), right.schema.position(column))
            for column in shared_columns
        ]
        right_index = _build_join_index(right, shared_columns)
        for left_id, left_values in enumerate(left.rows):
            matched = False
            for right_id in _candidate_partners(
                left_values, left.schema, shared_columns, right_index
            ):
                right_values = right.rows[right_id]
                if not join_consistent(left_values, right_values, shared_positions):
                    continue
                matched = True
                matched_right.add(right_id)
                rows.append(
                    merge_rows(left_values, right_values, left.schema, right.schema, output_schema)
                )
                if has_prov:
                    provenance.append(
                        _merge_provenance(
                            left_prov[left_id] if left_prov else None,
                            right_prov[right_id] if right_prov else None,
                        )
                    )
            if not matched and keep_left:
                rows.append(_pad_row(left_values, left.schema, output_schema))
                if has_prov:
                    provenance.append(_merge_provenance(left_prov[left_id] if left_prov else None, None))
    elif keep_left:
        for left_id, left_values in enumerate(left.rows):
            rows.append(_pad_row(left_values, left.schema, output_schema))
            if has_prov:
                provenance.append(_merge_provenance(left_prov[left_id] if left_prov else None, None))

    if keep_right:
        for right_id, right_values in enumerate(right.rows):
            if right_id in matched_right:
                continue
            rows.append(_pad_row(right_values, right.schema, output_schema))
            if has_prov:
                provenance.append(
                    _merge_provenance(None, right_prov[right_id] if right_prov else None)
                )

    return Table(result_name, output_schema, rows, provenance=provenance if has_prov else None)


def _pad_row(values: RowValues, schema: Schema, output_schema: Schema) -> RowValues:
    """Extend ``values`` to ``output_schema`` filling absent attributes with NULL."""
    padded: List[CellValue] = []
    for column in output_schema:
        padded.append(values[schema.position(column)] if column in schema else NULL)
    return tuple(padded)


def cross_product(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Cartesian product of two tables with disjoint schemas."""
    shared = left.schema.intersection(right.schema)
    if shared:
        raise ValueError(f"cross_product requires disjoint schemas; shared columns: {shared}")
    output_schema = left.schema.union(right.schema)
    rows: List[RowValues] = []
    for left_values in left.rows:
        for right_values in right.rows:
            rows.append(tuple(left_values) + tuple(right_values))
    return Table(name or f"({left.name}×{right.name})", output_schema, rows)


# ---------------------------------------------------------------------------------
# outer union
# ---------------------------------------------------------------------------------


def outer_union(
    tables: Sequence[Table],
    name: str = "outer_union",
    *,
    labeled_nulls: bool = False,
) -> Table:
    """Outer union: schema union, each tuple padded with nulls where absent.

    With ``labeled_nulls=True`` the padding uses fresh labelled nulls (one per
    padded cell), which is the form ALITE's complementation step expects; with
    the default plain nulls the result matches the textbook outer union.
    Provenance is preserved; tables lacking provenance contribute singleton
    provenance based on their name and row index.
    """
    if not tables:
        raise ValueError("outer_union requires at least one table")
    output_schema = tables[0].schema
    for table in tables[1:]:
        output_schema = output_schema.union(table.schema)

    rows: List[RowValues] = []
    provenance: List[Provenance] = []
    for table in tables:
        table_prov = table.provenance
        for row_id, values in enumerate(table.rows):
            padded: List[CellValue] = []
            for column in output_schema:
                if column in table.schema:
                    padded.append(values[table.schema.position(column)])
                elif labeled_nulls:
                    padded.append(fresh_labeled_null())
                else:
                    padded.append(NULL)
            rows.append(tuple(padded))
            if table_prov is not None:
                provenance.append(table_prov[row_id])
            else:
                provenance.append(frozenset({f"{table.name}:{row_id}"}))
    return Table(name, output_schema, rows, provenance=provenance)
