"""Simulated contextual / LLM embedders.

The real system extracts the last hidden layer of a pre-trained language model
for every cell value.  What the fuzzy-matching pipeline needs from those
embeddings is a *semantic metric*: surface forms of the same real-world value
are close, unrelated values are far.  :class:`SimulatedTransformerEmbedder`
reproduces that metric deterministically from three ingredients:

* a **surface component** — character n-grams and tokens of the (possibly
  canonicalised) value, so typos, case changes and token reordering stay close;
* a **semantic anchor** — when the model "knows" a surface form (a lexicon hit
  that passes the model's coverage gate), the embedding is pulled toward a
  direction shared by every form of the concept, so abbreviations and synonyms
  with disjoint surfaces still match;
* **model noise** — a per-value perturbation whose magnitude differentiates
  model quality.

Coverage and noise are the two fidelity knobs.  BERT and RoBERTa get partial
lexicon coverage and higher noise; the LLM simulators in
:mod:`repro.embeddings.llm` get broad coverage and low noise.  This reproduces
the ordering of the paper's Table 1 (see DESIGN.md, substitution #1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.utils.hashing import stable_hash, stable_vector
from repro.utils.text import character_ngrams, normalize_value, tokenize


class SimulatedTransformerEmbedder(ValueEmbedder):
    """Deterministic simulation of a pre-trained language-model embedder.

    Parameters
    ----------
    model_name:
        Registry name; also salts the coverage gate and noise so different
        models make *different* mistakes, as real models do.
    lexicon_coverage:
        Probability (per surface form, decided deterministically by hash) that
        the model knows the form's concept.
    noise_level:
        Magnitude of the per-value noise direction.
    semantic_weight / canonical_weight / token_weight / char_weight:
        Mixing weights of the semantic anchor, canonicalised-surface,
        token and raw-character components.
    lexicon:
        Knowledge base; defaults to :func:`default_lexicon`.
    """

    name = "simulated_transformer"

    def __init__(
        self,
        model_name: Optional[str] = None,
        dimension: int = 256,
        lexicon_coverage: float = 0.5,
        noise_level: float = 0.25,
        semantic_weight: float = 1.5,
        token_weight: float = 0.5,
        char_weight: float = 1.0,
        lexicon: Optional[SemanticLexicon] = None,
        cache=None,
    ) -> None:
        super().__init__(dimension=dimension, cache=cache)
        if model_name is not None:
            self.name = model_name
        if not 0.0 <= lexicon_coverage <= 1.0:
            raise ValueError("lexicon_coverage must be in [0, 1]")
        self.lexicon_coverage = lexicon_coverage
        self.noise_level = noise_level
        self.semantic_weight = semantic_weight
        self.token_weight = token_weight
        self.char_weight = char_weight
        self.lexicon = lexicon if lexicon is not None else default_lexicon()

    # -- knowledge gates -----------------------------------------------------------
    def knows_concept(self, concept: str) -> bool:
        """Whether this model's coverage gate admits knowledge of ``concept``.

        Knowledge is decided at the *concept* level (a model either knows the
        country Spain — including its codes ES/ESP — or it does not), which is
        how real language models generalise.  The decision is deterministic per
        (model, concept), so the same model always makes the same mistakes.
        """
        bucket = stable_hash(f"knows:{self.name}:{concept}", seed=29) % 10_000
        return bucket < int(self.lexicon_coverage * 10_000)

    def knows_value(self, value: object) -> bool:
        """Whether the model recognises ``value`` as a form of a known concept."""
        concept = self.lexicon.lookup(value)
        return concept is not None and self.knows_concept(concept)

    def _semantic_concept(self, text: str) -> Optional[str]:
        concept = self.lexicon.lookup(text)
        if concept is not None and self.knows_concept(concept):
            return concept
        return None

    def _canonical_text(self, text: str) -> str:
        """Token-level canonicalisation ("Main St" -> "main street").

        Full-value lexicon hits keep their own surface (the semantic anchor is
        what pulls e.g. "ES" and "Spain" together); only known single-token
        abbreviations are expanded so that multi-token values sharing the rest
        of their surface stay close.
        """
        tokens = tokenize(text)
        expanded = []
        for token in tokens:
            concept = self.lexicon.token_concept(token)
            if concept is not None and self.knows_concept(concept):
                expanded.append(concept)
            else:
                expanded.append(token)
        return " ".join(expanded) if expanded else normalize_value(text)

    # -- embedding ------------------------------------------------------------------
    def _embed_text(self, text: str) -> np.ndarray:
        normalised = normalize_value(text)
        if not normalised:
            return stable_vector("__empty__", self.dimension, seed=11)

        canonical = self._canonical_text(text)
        vector = np.zeros(self.dimension, dtype=np.float64)

        # Surface component over the canonicalised text (handles typos, case,
        # token-level abbreviations such as "Main St" vs "Main Street").
        grams: List[str] = []
        for size in (3, 4):
            grams.extend(character_ngrams(canonical, n=size))
        if grams:
            char_vector = np.zeros(self.dimension, dtype=np.float64)
            for gram in grams:
                char_vector += stable_vector(f"gram:{gram}", self.dimension, seed=17)
            vector += self.char_weight * char_vector / np.sqrt(len(grams))

        tokens = tokenize(canonical)
        if tokens:
            token_vector = np.zeros(self.dimension, dtype=np.float64)
            for token in tokens:
                token_vector += stable_vector(f"word:{token}", self.dimension, seed=19)
            vector += self.token_weight * token_vector / np.sqrt(len(tokens))

        # Semantic anchor: every known form of a concept shares this direction.
        concept = self._semantic_concept(text)
        if concept is not None:
            vector += self.semantic_weight * stable_vector(
                f"concept:{concept}", self.dimension, seed=31
            )

        if self.noise_level > 0:
            vector += self.noise_level * stable_vector(
                f"noise:{self.name}:{normalised}", self.dimension, seed=23
            )
        return vector


class BertEmbedder(SimulatedTransformerEmbedder):
    """Simulated BERT-base cell-value embedder (partial semantic coverage)."""

    name = "bert"

    def __init__(self, dimension: int = 256, lexicon: Optional[SemanticLexicon] = None, cache=None) -> None:
        super().__init__(
            model_name="bert",
            dimension=dimension,
            lexicon_coverage=0.55,
            noise_level=0.45,
            lexicon=lexicon,
            cache=cache,
        )


class RobertaEmbedder(SimulatedTransformerEmbedder):
    """Simulated RoBERTa cell-value embedder (slightly better than BERT)."""

    name = "roberta"

    def __init__(self, dimension: int = 256, lexicon: Optional[SemanticLexicon] = None, cache=None) -> None:
        super().__init__(
            model_name="roberta",
            dimension=dimension,
            lexicon_coverage=0.60,
            noise_level=0.40,
            lexicon=lexicon,
            cache=cache,
        )
