"""Semantic lexicon: groups of surface forms that denote the same concept.

A pre-trained language model "knows" that *CA* can denote *Canada*, that
*St* abbreviates *Street* and that *automobile* is a synonym of *car*.  The
simulated embedders in this package obtain that knowledge from an explicit,
inspectable lexicon instead of model weights: every concept group lists the
surface forms the models may anchor to a common point in embedding space.

The same concept groups drive the synthetic benchmark's corruption generators
(:mod:`repro.datasets.corruptions`), which is precisely the situation the real
system is in — the knowledge needed to resolve an abbreviation is general
world knowledge, available to an LLM and encoded here explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.utils.text import normalize_value, tokenize

ConceptGroups = Mapping[str, Sequence[str]]


class SemanticLexicon:
    """Maps surface forms to concepts and canonicalises values.

    Parameters
    ----------
    groups:
        ``concept -> surface forms`` mapping.  Forms are normalised
        (lower-case, accent-stripped); the concept id itself is implicitly one
        of its forms.
    """

    def __init__(self, groups: ConceptGroups | None = None) -> None:
        self._forms_by_concept: Dict[str, Set[str]] = {}
        self._concept_by_form: Dict[str, str] = {}
        self._token_concepts: Dict[str, str] = {}
        if groups:
            for concept, forms in groups.items():
                self.add_group(concept, forms)

    # -- construction ---------------------------------------------------------------
    def add_group(self, concept: str, forms: Iterable[str]) -> None:
        """Register a concept with its surface forms (idempotent per form)."""
        concept_key = normalize_value(concept)
        bucket = self._forms_by_concept.setdefault(concept_key, set())
        all_forms = [concept_key] + [normalize_value(form) for form in forms]
        for form in all_forms:
            if not form:
                continue
            bucket.add(form)
            # First registration wins so ambiguous forms stay deterministic.
            self._concept_by_form.setdefault(form, concept_key)
        if all(len(tokenize(form)) == 1 for form in bucket):
            for form in bucket:
                self._token_concepts.setdefault(form, concept_key)

    def merge(self, other: "SemanticLexicon") -> "SemanticLexicon":
        """Return a new lexicon containing the groups of both."""
        merged = SemanticLexicon()
        for concept, forms in self._forms_by_concept.items():
            merged.add_group(concept, forms)
        for concept, forms in other._forms_by_concept.items():
            merged.add_group(concept, forms)
        return merged

    # -- queries --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._forms_by_concept)

    def concepts(self) -> List[str]:
        """All concept ids, sorted."""
        return sorted(self._forms_by_concept)

    def forms(self, concept: str) -> List[str]:
        """The surface forms registered for ``concept`` (sorted)."""
        return sorted(self._forms_by_concept.get(normalize_value(concept), set()))

    def lookup(self, value: object) -> Optional[str]:
        """Return the concept whose surface form equals ``value``, if any."""
        return self._concept_by_form.get(normalize_value(value))

    def token_concept(self, token: str) -> Optional[str]:
        """Return the concept of a single-token surface form (or ``None``).

        Only concepts all of whose forms are single tokens participate, so
        "st" resolves to *street* but "new" never resolves to *new york*.
        """
        return self._token_concepts.get(normalize_value(token))

    def same_concept(self, left: object, right: object) -> bool:
        """Return whether two values are registered forms of the same concept."""
        left_concept = self.lookup(left)
        return left_concept is not None and left_concept == self.lookup(right)

    def canonicalize(self, value: object) -> str:
        """Return a canonical string for ``value``.

        A full-value lexicon hit maps to the concept id; otherwise each token
        that is a (single-token) surface form is replaced by its concept id.
        Values with no lexicon hits are returned normalised but otherwise
        unchanged.

        >>> lex = SemanticLexicon({"street": ["st"], "canada": ["ca"]})
        >>> lex.canonicalize("Main St")
        'main street'
        >>> lex.canonicalize("CA")
        'canada'
        """
        concept = self.lookup(value)
        if concept is not None:
            return concept
        tokens = tokenize(value)
        replaced = [self._token_concepts.get(token, token) for token in tokens]
        return " ".join(replaced)

    def variant_pairs(self) -> List[Tuple[str, str]]:
        """All (form, other form) pairs within a concept — used by benchmark audits."""
        pairs: List[Tuple[str, str]] = []
        for forms in self._forms_by_concept.values():
            ordered = sorted(forms)
            for index, left in enumerate(ordered):
                for right in ordered[index + 1 :]:
                    pairs.append((left, right))
        return pairs


# -------------------------------------------------------------------------------------
# Default knowledge base
# -------------------------------------------------------------------------------------

_COUNTRIES: Dict[str, List[str]] = {
    "united states": ["us", "usa", "u.s.", "u.s.a.", "united states of america", "america"],
    "canada": ["ca", "can"],
    "germany": ["de", "deu", "ger", "deutschland"],
    "spain": ["es", "esp", "espana"],
    "france": ["fr", "fra"],
    "italy": ["it", "ita", "italia"],
    "united kingdom": ["uk", "gb", "gbr", "great britain", "britain"],
    "india": ["in", "ind"],
    "china": ["cn", "chn", "prc"],
    "japan": ["jp", "jpn"],
    "brazil": ["br", "bra", "brasil"],
    "mexico": ["mx", "mex"],
    "australia": ["au", "aus"],
    "netherlands": ["nl", "nld", "holland"],
    "switzerland": ["ch", "che"],
    "sweden": ["se", "swe"],
    "norway": ["no", "nor"],
    "denmark": ["dk", "dnk"],
    "finland": ["fi", "fin"],
    "poland": ["pl", "pol"],
    "portugal": ["pt", "prt"],
    "austria": ["at", "aut"],
    "belgium": ["be", "bel"],
    "greece": ["gr", "grc"],
    "ireland": ["ie", "irl"],
    "russia": ["ru", "rus", "russian federation"],
    "south korea": ["kr", "kor", "republic of korea", "korea"],
    "turkey": ["tr", "tur", "turkiye"],
    "argentina": ["ar", "arg"],
    "chile": ["cl", "chl"],
    "colombia": ["co", "col"],
    "egypt": ["eg", "egy"],
    "south africa": ["za", "zaf"],
    "nigeria": ["ng", "nga"],
    "kenya": ["ke", "ken"],
    "israel": ["il", "isr"],
    "saudi arabia": ["sa", "sau", "ksa"],
    "united arab emirates": ["ae", "are", "uae"],
    "singapore": ["sg", "sgp"],
    "thailand": ["th", "tha"],
    "vietnam": ["vn", "vnm", "viet nam"],
    "indonesia": ["id", "idn"],
    "philippines": ["ph", "phl"],
    "malaysia": ["my", "mys"],
    "new zealand": ["nz", "nzl"],
    "czech republic": ["cz", "cze", "czechia"],
    "hungary": ["hu", "hun"],
    "romania": ["ro", "rou"],
    "ukraine": ["ua", "ukr"],
    "pakistan": ["pk", "pak"],
}

_US_STATES: Dict[str, List[str]] = {
    "alabama": ["al"], "alaska": ["ak"], "arizona": ["az"], "arkansas": ["ar"],
    "california": ["ca."], "colorado": ["colo"], "connecticut": ["conn"],
    "delaware": ["del"], "florida": ["fl", "fla"], "georgia": ["ga"],
    "hawaii": ["hi"], "idaho": ["id."], "illinois": ["il", "ill"],
    "indiana": ["ind."], "iowa": ["ia"], "kansas": ["ks", "kan"],
    "kentucky": ["ky"], "louisiana": ["la"], "maine": ["me"],
    "maryland": ["md"], "massachusetts": ["ma", "mass"], "michigan": ["mi", "mich"],
    "minnesota": ["mn", "minn"], "mississippi": ["ms", "miss"], "missouri": ["mo"],
    "montana": ["mt", "mont"], "nebraska": ["ne", "neb"], "nevada": ["nv", "nev"],
    "new hampshire": ["nh"], "new jersey": ["nj"], "new mexico": ["nm"],
    "new york": ["ny"], "north carolina": ["nc"], "north dakota": ["nd"],
    "ohio": ["oh"], "oklahoma": ["ok", "okla"], "oregon": ["or", "ore"],
    "pennsylvania": ["pa", "penn"], "rhode island": ["ri"], "south carolina": ["sc"],
    "south dakota": ["sd"], "tennessee": ["tn", "tenn"], "texas": ["tx", "tex"],
    "utah": ["ut"], "vermont": ["vt"], "virginia": ["va"],
    "washington": ["wa", "wash"], "west virginia": ["wv"], "wisconsin": ["wi", "wis"],
    "wyoming": ["wy", "wyo"],
}

_MONTHS: Dict[str, List[str]] = {
    "january": ["jan"], "february": ["feb"], "march": ["mar"], "april": ["apr"],
    "may": [], "june": ["jun"], "july": ["jul"], "august": ["aug"],
    "september": ["sep", "sept"], "october": ["oct"], "november": ["nov"],
    "december": ["dec"],
}

_WEEKDAYS: Dict[str, List[str]] = {
    "monday": ["mon"], "tuesday": ["tue", "tues"], "wednesday": ["wed"],
    "thursday": ["thu", "thurs"], "friday": ["fri"], "saturday": ["sat"],
    "sunday": ["sun"],
}

_STREET_SUFFIXES: Dict[str, List[str]] = {
    "street": ["st"], "avenue": ["ave", "av"], "boulevard": ["blvd"],
    "road": ["rd"], "drive": ["dr."], "lane": ["ln"], "court": ["ct"],
    "place": ["pl"], "square": ["sq"], "highway": ["hwy"], "parkway": ["pkwy"],
    "terrace": ["ter"], "circle": ["cir"],
}

_COMPANY_SUFFIXES: Dict[str, List[str]] = {
    "incorporated": ["inc"], "corporation": ["corp"], "limited": ["ltd"],
    "company": ["co"], "limited liability company": ["llc"],
    "public limited company": ["plc"], "group": ["grp"],
    "international": ["intl"], "technologies": ["tech"],
    "manufacturing": ["mfg"], "associates": ["assoc"], "brothers": ["bros"],
}

_TITLES: Dict[str, List[str]] = {
    "doctor": ["dr"], "professor": ["prof"], "president": ["pres"],
    "senator": ["sen"], "representative": ["rep"], "governor": ["gov"],
    "general": ["gen"], "captain": ["capt"], "lieutenant": ["lt"],
    "sergeant": ["sgt"], "director": ["dir"], "manager": ["mgr"],
    "vice president": ["vp"], "chief executive officer": ["ceo"],
    "chief financial officer": ["cfo"], "chief technology officer": ["cto"],
    "chief operating officer": ["coo"],
}

_DEGREES: Dict[str, List[str]] = {
    "bachelor of science": ["bs", "b.s.", "bsc"],
    "bachelor of arts": ["ba", "b.a."],
    "master of science": ["ms", "m.s.", "msc"],
    "master of arts": ["ma."],
    "master of business administration": ["mba"],
    "doctor of philosophy": ["phd", "ph.d."],
    "doctor of medicine": ["md."],
    "juris doctor": ["jd"],
}

_ORGANIZATIONS: Dict[str, List[str]] = {
    "united nations": ["un"],
    "european union": ["eu"],
    "world health organization": ["who"],
    "national aeronautics and space administration": ["nasa"],
    "federal bureau of investigation": ["fbi"],
    "central intelligence agency": ["cia"],
    "north atlantic treaty organization": ["nato"],
    "international monetary fund": ["imf"],
    "world trade organization": ["wto"],
    "environmental protection agency": ["epa"],
    "food and drug administration": ["fda"],
    "centers for disease control and prevention": ["cdc"],
    "national basketball association": ["nba"],
    "national football league": ["nfl"],
    "major league baseball": ["mlb"],
    "national hockey league": ["nhl"],
    "federation internationale de football association": ["fifa"],
    "international olympic committee": ["ioc"],
}

_UNIVERSITIES: Dict[str, List[str]] = {
    "massachusetts institute of technology": ["mit"],
    "university of california los angeles": ["ucla"],
    "university of california berkeley": ["uc berkeley", "berkeley"],
    "new york university": ["nyu"],
    "university of southern california": ["usc"],
    "georgia institute of technology": ["georgia tech"],
    "california institute of technology": ["caltech"],
    "carnegie mellon university": ["cmu"],
    "university of texas at austin": ["ut austin"],
    "university of michigan": ["umich", "u of m"],
    "northeastern university": ["neu"],
    "worcester polytechnic institute": ["wpi"],
    "university of waterloo": ["uwaterloo"],
}

_DEPARTMENTS: Dict[str, List[str]] = {
    "human resources": ["hr"],
    "information technology": ["it dept"],
    "research and development": ["r&d", "rnd"],
    "public relations": ["pr"],
    "quality assurance": ["qa"],
    "customer service": ["cs"],
    "accounts payable": ["ap"],
    "operations": ["ops"],
}

_CURRENCIES: Dict[str, List[str]] = {
    "us dollar": ["usd", "dollar", "$"],
    "euro": ["eur", "€"],
    "british pound": ["gbp", "pound sterling"],
    "japanese yen": ["jpy", "yen"],
    "swiss franc": ["chf"],
    "canadian dollar": ["cad"],
    "australian dollar": ["aud"],
    "indian rupee": ["inr", "rupee"],
    "chinese yuan": ["cny", "rmb", "renminbi"],
}

_UNITS: Dict[str, List[str]] = {
    "kilometer": ["km"], "kilogram": ["kg"], "kilometers per hour": ["km/h", "kph"],
    "miles per hour": ["mph"], "pound": ["lb", "lbs"], "ounce": ["oz"],
    "gallon": ["gal"], "liter": ["l", "litre"], "meter": ["m", "metre"],
    "centimeter": ["cm"], "millimeter": ["mm"], "square feet": ["sq ft", "sqft"],
    "gigabyte": ["gb"], "megabyte": ["mb"], "terabyte": ["tb"],
}

_GENRES: Dict[str, List[str]] = {
    "science fiction": ["sci-fi", "scifi", "sf"],
    "documentary": ["doc", "docu"],
    "romantic comedy": ["rom-com", "romcom"],
    "rhythm and blues": ["r&b", "rnb"],
    "hip hop": ["hip-hop", "hiphop"],
    "electronic dance music": ["edm"],
    "country and western": ["country"],
    "heavy metal": ["metal"],
}

_GENERAL_SYNONYMS: Dict[str, List[str]] = {
    "car": ["automobile", "auto"],
    "movie": ["film", "motion picture"],
    "physician": ["medical doctor"],
    "attorney": ["lawyer"],
    "salary": ["wage", "pay"],
    "vaccination": ["immunization", "inoculation"],
    "television": ["tv"],
    "telephone": ["phone"],
    "photograph": ["photo", "picture"],
    "laboratory": ["lab"],
    "apartment": ["apt", "flat"],
    "building": ["bldg"],
    "department": ["dept"],
    "government": ["govt"],
    "number": ["no.", "num", "nr"],
    "mount": ["mt."],
    "saint": ["st."],
    "fort": ["ft."],
    "north": ["n."],
    "south": ["s."],
    "east": ["e."],
    "west": ["w."],
}


def default_lexicon() -> SemanticLexicon:
    """Build the default knowledge base combining every built-in domain.

    The lexicon is rebuilt on each call (it is cheap); callers that embed many
    values should hold on to one embedder instance, which keeps one lexicon.
    """
    lexicon = SemanticLexicon()
    for domain in (
        _COUNTRIES,
        _US_STATES,
        _MONTHS,
        _WEEKDAYS,
        _STREET_SUFFIXES,
        _COMPANY_SUFFIXES,
        _TITLES,
        _DEGREES,
        _ORGANIZATIONS,
        _UNIVERSITIES,
        _DEPARTMENTS,
        _CURRENCIES,
        _UNITS,
        _GENRES,
        _GENERAL_SYNONYMS,
    ):
        for concept, forms in domain.items():
            lexicon.add_group(concept, forms)
    return lexicon


def domain_groups() -> Dict[str, Dict[str, List[str]]]:
    """Expose the raw domain dictionaries (used by the benchmark generators)."""
    return {
        "countries": dict(_COUNTRIES),
        "us_states": dict(_US_STATES),
        "months": dict(_MONTHS),
        "weekdays": dict(_WEEKDAYS),
        "street_suffixes": dict(_STREET_SUFFIXES),
        "company_suffixes": dict(_COMPANY_SUFFIXES),
        "titles": dict(_TITLES),
        "degrees": dict(_DEGREES),
        "organizations": dict(_ORGANIZATIONS),
        "universities": dict(_UNIVERSITIES),
        "departments": dict(_DEPARTMENTS),
        "currencies": dict(_CURRENCIES),
        "units": dict(_UNITS),
        "genres": dict(_GENRES),
        "general_synonyms": dict(_GENERAL_SYNONYMS),
    }
