"""Fault tolerance around an embedder: retries, backoff, circuit breaker.

Every real embedder backend (:mod:`repro.embeddings.fasttext`,
:mod:`~repro.embeddings.transformer`, :mod:`~repro.embeddings.llm`) wraps an
external model or IO in the production system, so transient failures are a
first-class scenario, not an anomaly.  :class:`ResilientEmbedder` wraps any
:class:`~repro.embeddings.base.ValueEmbedder` with the two standard
defences:

* **Retries with capped exponential backoff.**  A failing ``embed`` /
  ``embed_many`` call is retried up to ``retry_max_attempts`` times.  The
  delay before attempt *n* is ``retry_backoff_ms × 2^(n-1)``, capped at
  ``retry_backoff_ms × 8``, scaled by a *deterministic* jitter factor in
  [0.5, 1.0) derived by hashing ``(model name, attempt)`` — the same run
  always sleeps the same schedule, so fault-injection tests are exactly
  reproducible while a fleet of embedders still desynchronises its retries.
* **A closed / open / half-open circuit breaker.**  After
  ``breaker_failure_threshold`` consecutive exhausted calls the breaker
  opens: every call short-circuits with a typed :class:`EmbedderUnavailable`
  (carrying ``retry_after_ms``, the remaining open window) instead of
  hammering a down backend.  After ``breaker_reset_ms`` the breaker goes
  half-open and admits exactly one probe call; a successful probe closes
  the breaker, a failed one re-opens it for another full window.

Failure semantics are deliberately conservative: while the breaker is
*closed*, an exhausted call re-raises the **original** exception unchanged —
wrapping never hides an error type callers already handle.  Only breaker
transitions produce :class:`EmbedderUnavailable`: the exhausted call that
trips the breaker open (chained from the original error), every
short-circuited call while it is open, and a failed half-open probe.

The wrapper is transparent to everything else: ``name``, ``dimension`` and
the cache plumbing mirror the inner embedder (store fingerprints and the
:class:`~repro.storage.cache.StoreBackedEmbeddingCache` attach exactly as
they would to the bare embedder), and unknown attributes delegate to the
inner instance, so engine code — and tests poking custom attributes — never
notice the wrapping.  Breaker state and counters are shared by every thread
using the wrapper (one backend, one health state); the *retry policy* knobs
can additionally be overridden per thread via :meth:`overrides`, which is
how per-request knob overrides reach a shared engine embedder.

``sleep`` and ``clock`` are injectable so tests drive breaker transitions
with a fake clock and assert backoff schedules without real sleeping.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from repro.embeddings.base import EmbeddingCache, ValueEmbedder

#: Cap on the exponential backoff, as a multiple of ``retry_backoff_ms``.
MAX_BACKOFF_MULTIPLIER = 8

#: Breaker states (``state()`` returns one of these).
BREAKER_STATES = ("closed", "open", "half_open")

#: What happens to a request once the breaker is open (see
#: :class:`~repro.core.config.FuzzyFDConfig.degraded_mode`): ``"off"``
#: propagates :class:`EmbedderUnavailable`, ``"surface"`` degrades matching
#: to exact + surface blocking without embeddings, ``"fail"`` maps to a
#: typed 503 at the service boundary.
DEGRADED_MODES = ("off", "surface", "fail")

#: Knobs :meth:`ResilientEmbedder.overrides` accepts (the retry policy);
#: breaker *state* is never per-thread — one backend has one health.
OVERRIDABLE_KNOBS = (
    "retry_max_attempts",
    "retry_backoff_ms",
    "breaker_failure_threshold",
    "breaker_reset_ms",
)


class EmbedderUnavailable(RuntimeError):
    """The embedding backend is considered down (circuit breaker engaged).

    ``retry_after_ms`` is the remaining open window of the breaker — the
    serving layer derives an HTTP ``Retry-After`` header from it.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = max(0.0, float(retry_after_ms))


class DelegatingEmbedder(ValueEmbedder):
    """A :class:`ValueEmbedder` that mirrors another embedder's identity.

    Base class of every wrapper that must be indistinguishable from the
    embedder it wraps (:class:`ResilientEmbedder`, the fault injector's
    ``FaultyEmbedder``): ``name`` / ``dimension`` copy the inner values so
    store fingerprints are unchanged, the cache property and ``use_cache``
    forward so a store-backed cache attached through the wrapper lands on
    the inner embedder, and unknown attribute access falls through to the
    inner instance (tests reading custom counters keep working).
    """

    def __init__(self, inner: ValueEmbedder) -> None:
        # Deliberately not ValueEmbedder.__init__: the wrapper must share the
        # inner embedder's cache, never own a second one.
        self.inner = inner
        self.name = inner.name
        self.dimension = inner.dimension

    @property
    def cache(self) -> EmbeddingCache:
        return self.inner.cache

    def use_cache(self, cache: EmbeddingCache) -> None:
        self.inner.use_cache(cache)

    def embed(self, value: object) -> np.ndarray:
        return self.inner.embed(value)

    def embed_many(self, values: Sequence[object]) -> np.ndarray:
        return self.inner.embed_many(values)

    def _embed_text(self, text: str) -> np.ndarray:
        return self.inner._embed_text(text)

    def __getattr__(self, attribute: str):
        # Only reached when normal lookup fails.  ``inner`` must not recurse
        # into itself: on a half-constructed wrapper (an __init__ that raised
        # before assigning it) the delegation target simply does not exist.
        if attribute == "inner":
            raise AttributeError(attribute)
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


def _jitter_factor(model_name: str, attempt: int) -> float:
    """Deterministic jitter in [0.5, 1.0) for one (embedder, attempt) pair."""
    digest = hashlib.blake2b(
        f"{model_name}:{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2**64
    return 0.5 + 0.5 * fraction


class ResilientEmbedder(DelegatingEmbedder):
    """Retry + circuit-breaker wrapper around any embedder (see module docs).

    Parameters mirror the ``retry_*`` / ``breaker_*`` knobs of
    :class:`~repro.core.config.FuzzyFDConfig`; the
    :class:`~repro.core.engine.IntegrationEngine` applies this wrapper to
    its resolved embedder automatically (never twice — an already-resilient
    embedder passes through).
    """

    def __init__(
        self,
        inner: ValueEmbedder,
        *,
        retry_max_attempts: int = 3,
        retry_backoff_ms: float = 50.0,
        breaker_failure_threshold: int = 5,
        breaker_reset_ms: float = 30_000.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if isinstance(inner, ResilientEmbedder):
            raise ValueError("refusing to wrap a ResilientEmbedder in another one")
        validate_resilience_knobs(
            retry_max_attempts=retry_max_attempts,
            retry_backoff_ms=retry_backoff_ms,
            breaker_failure_threshold=breaker_failure_threshold,
            breaker_reset_ms=breaker_reset_ms,
        )
        super().__init__(inner)
        self.retry_max_attempts = retry_max_attempts
        self.retry_backoff_ms = retry_backoff_ms
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_ms = breaker_reset_ms
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self._counters: Dict[str, int] = {
            "retries": 0,
            "failures": 0,
            "breaker_opens": 0,
            "breaker_closes": 0,
            "breaker_short_circuits": 0,
            "half_open_probes": 0,
        }

    # -- per-thread retry-policy overrides -------------------------------------------
    @contextmanager
    def overrides(self, **knobs: object) -> Iterator[None]:
        """Apply retry-policy knobs for the current thread only.

        The engine wraps each request's matching stage in this context so
        per-request ``retry_max_attempts`` (etc.) overrides reach the shared
        wrapper without racing other requests.  ``None`` values mean "keep
        the engine default".  Breaker state is intentionally not per-thread.
        """
        provided = {
            key: value for key, value in knobs.items() if value is not None
        }
        unknown = sorted(set(provided) - set(OVERRIDABLE_KNOBS))
        if unknown:
            raise TypeError(
                f"unknown resilience override(s) {unknown}; "
                f"supported: {list(OVERRIDABLE_KNOBS)}"
            )
        if provided:
            validate_resilience_knobs(**provided)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        merged = dict(stack[-1]) if stack else {}
        merged.update(provided)
        stack.append(merged)
        try:
            yield
        finally:
            stack.pop()

    def _knob(self, name: str):
        stack = getattr(self._local, "stack", None)
        if stack:
            value = stack[-1].get(name)
            if value is not None:
                return value
        return getattr(self, name)

    # -- guarded embed paths ---------------------------------------------------------
    def embed(self, value: object) -> np.ndarray:
        return self._guarded(self.inner.embed, value)

    def embed_many(self, values: Sequence[object]) -> np.ndarray:
        return self._guarded(self.inner.embed_many, values)

    def _guarded(self, fn: Callable, argument: object) -> np.ndarray:
        is_probe = self._admit()
        attempts = int(self._knob("retry_max_attempts"))
        for attempt in range(1, attempts + 1):
            try:
                result = fn(argument)
            except EmbedderUnavailable:
                # An inner resilient layer already classified this; pass it
                # through rather than retrying an open breaker.
                raise
            except Exception as error:  # noqa: BLE001 — classified below
                if attempt < attempts:
                    with self._lock:
                        self._counters["retries"] += 1
                    self._sleep(self._backoff_seconds(attempt))
                    continue
                now_open = self._record_failure(is_probe)
                if now_open:
                    raise EmbedderUnavailable(
                        f"embedder {self.name!r} unavailable: "
                        f"{self._consecutive_failures} consecutive failures "
                        f"(last: {type(error).__name__}: {error})",
                        retry_after_ms=self.retry_after_ms(),
                    ) from error
                raise
            self._record_success(is_probe)
            return result
        raise AssertionError("unreachable: retry loop returns or raises")

    def _backoff_seconds(self, attempt: int) -> float:
        base_ms = float(self._knob("retry_backoff_ms"))
        delay_ms = min(base_ms * 2 ** (attempt - 1), base_ms * MAX_BACKOFF_MULTIPLIER)
        return delay_ms * _jitter_factor(self.name, attempt) / 1000.0

    # -- breaker state machine ---------------------------------------------------------
    def _admit(self) -> bool:
        """Gate one call through the breaker; returns whether it is the probe.

        Raises :class:`EmbedderUnavailable` (a short-circuit) while the
        breaker is open within its reset window, or while another thread's
        half-open probe is in flight.
        """
        with self._lock:
            if self._state == "open":
                elapsed_ms = (self._clock() - self._opened_at) * 1000.0
                reset_ms = float(self._knob("breaker_reset_ms"))
                if elapsed_ms < reset_ms:
                    self._counters["breaker_short_circuits"] += 1
                    raise EmbedderUnavailable(
                        f"embedder {self.name!r} unavailable: breaker open for "
                        f"another {reset_ms - elapsed_ms:.0f} ms",
                        retry_after_ms=reset_ms - elapsed_ms,
                    )
                self._state = "half_open"
                self._probe_in_flight = False
            if self._state == "half_open":
                if self._probe_in_flight:
                    self._counters["breaker_short_circuits"] += 1
                    raise EmbedderUnavailable(
                        f"embedder {self.name!r} unavailable: half-open probe "
                        "in flight",
                        retry_after_ms=float(self._knob("breaker_reset_ms")),
                    )
                self._probe_in_flight = True
                self._counters["half_open_probes"] += 1
                return True
            return False

    def _record_failure(self, was_probe: bool) -> bool:
        """Account one exhausted call; returns whether the breaker is now open."""
        with self._lock:
            self._consecutive_failures += 1
            self._counters["failures"] += 1
            if was_probe:
                # The probe found the backend still down: a full new window.
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self._counters["breaker_opens"] += 1
                return True
            threshold = int(self._knob("breaker_failure_threshold"))
            if self._state == "closed" and self._consecutive_failures >= threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self._counters["breaker_opens"] += 1
                return True
            return self._state != "closed"

    def _record_success(self, was_probe: bool) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if was_probe or self._state == "half_open":
                self._state = "closed"
                self._probe_in_flight = False
                self._counters["breaker_closes"] += 1

    # -- introspection -----------------------------------------------------------------
    def state(self) -> str:
        """Current breaker state: ``"closed"``, ``"open"`` or ``"half_open"``.

        An open breaker whose reset window has elapsed reports
        ``"half_open"`` — that is what the next call will find.
        """
        with self._lock:
            if (
                self._state == "open"
                and (self._clock() - self._opened_at) * 1000.0
                >= float(self.breaker_reset_ms)
            ):
                return "half_open"
            return self._state

    def retry_after_ms(self) -> float:
        """Remaining open window in milliseconds (0 unless the breaker is open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            return max(0.0, float(self.breaker_reset_ms) - elapsed_ms)

    def resilience_stats(self) -> Dict[str, int]:
        """Cumulative retry/failure/breaker counters (one consistent snapshot)."""
        with self._lock:
            return dict(self._counters)

    def describe(self) -> Dict[str, object]:
        """Breaker state plus counters — the health endpoint's payload."""
        snapshot: Dict[str, object] = dict(self.resilience_stats())
        snapshot["state"] = self.state()
        snapshot["retry_after_ms"] = self.retry_after_ms()
        snapshot["consecutive_failures"] = self._consecutive_failures
        return snapshot

    def __repr__(self) -> str:
        return (
            f"ResilientEmbedder({self.inner!r}, state={self.state()!r}, "
            f"attempts={self.retry_max_attempts})"
        )


def validate_resilience_knobs(
    *,
    retry_max_attempts: Optional[int] = None,
    retry_backoff_ms: Optional[float] = None,
    breaker_failure_threshold: Optional[int] = None,
    breaker_reset_ms: Optional[float] = None,
) -> None:
    """Eager validation shared by the wrapper, the config and ``overrides()``."""
    if retry_max_attempts is not None and retry_max_attempts < 1:
        raise ValueError(
            f"retry_max_attempts must be >= 1, got {retry_max_attempts}"
        )
    if retry_backoff_ms is not None and retry_backoff_ms < 0:
        raise ValueError(f"retry_backoff_ms must be >= 0, got {retry_backoff_ms}")
    if breaker_failure_threshold is not None and breaker_failure_threshold < 1:
        raise ValueError(
            f"breaker_failure_threshold must be >= 1, got {breaker_failure_threshold}"
        )
    if breaker_reset_ms is not None and breaker_reset_ms <= 0:
        raise ValueError(f"breaker_reset_ms must be positive, got {breaker_reset_ms}")
