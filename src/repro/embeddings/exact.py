"""Exact-match embedder (equi-join behaviour).

Every distinct raw string maps to its own pseudo-random direction, so two
values are close (distance ≈ 0) only when they are exactly equal and far
(distance ≈ 1) otherwise.  Plugging this embedder into the fuzzy pipeline
degenerates it to the regular, equality-based Full Disjunction — useful both
as a baseline and for testing that the pipeline leaves already-consistent
values untouched.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.utils.hashing import stable_vector


class ExactEmbedder(ValueEmbedder):
    """One direction per distinct raw value; no fuzziness at all."""

    name = "exact"

    def __init__(self, dimension: int = 64, cache=None) -> None:
        super().__init__(dimension=dimension, cache=cache)

    def _embed_text(self, text: str) -> np.ndarray:
        # The raw text (not normalised) is hashed so that case differences —
        # which an equi-join would not bridge — stay far apart.
        return stable_vector(f"exact:{text}", self.dimension, seed=41)
