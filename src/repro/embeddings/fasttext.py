"""FastText-style character n-gram embedder.

This follows the construction of the real fastText model (bag of character
n-grams plus word tokens, averaged): each n-gram and token is hashed to a
deterministic pseudo-random direction, the directions are summed and the sum
is normalised.  Values that share most of their character n-grams — typos,
case variants, values with small prefixes/suffixes added — end up close in
cosine space; values with disjoint surfaces (abbreviations, synonyms) do not,
which is exactly the weakness Table 1 of the paper shows for FastText.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.utils.hashing import stable_vector
from repro.utils.text import character_ngrams, normalize_value, tokenize


class FastTextEmbedder(ValueEmbedder):
    """Bag-of-character-n-grams embedding (word-level model baseline)."""

    name = "fasttext"

    def __init__(
        self,
        dimension: int = 256,
        ngram_sizes: tuple = (3, 4, 5),
        token_weight: float = 0.5,
        noise_level: float = 0.05,
        cache=None,
    ) -> None:
        super().__init__(dimension=dimension, cache=cache)
        self.ngram_sizes = tuple(ngram_sizes)
        self.token_weight = token_weight
        self.noise_level = noise_level

    def _embed_text(self, text: str) -> np.ndarray:
        normalised = normalize_value(text)
        if not normalised:
            return stable_vector("__empty__", self.dimension, seed=11)

        grams: List[str] = []
        for size in self.ngram_sizes:
            grams.extend(character_ngrams(normalised, n=size))
        vector = np.zeros(self.dimension, dtype=np.float64)
        for gram in grams:
            vector += stable_vector(f"gram:{gram}", self.dimension, seed=17)
        if grams:
            vector /= np.sqrt(len(grams))

        tokens = tokenize(normalised)
        if tokens:
            token_vector = np.zeros(self.dimension, dtype=np.float64)
            for token in tokens:
                token_vector += stable_vector(f"word:{token}", self.dimension, seed=19)
            vector += self.token_weight * token_vector / np.sqrt(len(tokens))

        if self.noise_level > 0:
            vector += self.noise_level * stable_vector(f"noise:{self.name}:{text}", self.dimension, seed=23)
        return vector
