"""Fine-tuned cell-value embedder (the paper's stated future work).

The conclusion of the paper announces "finetuned models to better represent
the column values".  This module provides that extension point in the
simulated setting: :class:`FineTunedEmbedder` wraps any base embedder and is
*fitted* on labelled value pairs (positive pairs that should match, negative
pairs that should not).  Fitting derives per-pair anchor corrections:

* every positive pair (and everything transitively connected through positive
  pairs) is pulled toward a shared anchor direction, exactly like the semantic
  lexicon does for concepts the base model already knows;
* every value involved in a negative pair receives a small repulsion component
  away from its negative partner's anchor, so confusable-but-different values
  are pushed apart.

This mirrors what contrastive fine-tuning does to a real embedding model on
the same supervision, and it composes with every other part of the pipeline:
a fitted :class:`FineTunedEmbedder` can be passed anywhere a
:class:`~repro.embeddings.base.ValueEmbedder` is accepted (the value matcher,
the Fuzzy FD configuration, the schema matcher, ...).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import EmbeddingCache, ValueEmbedder
from repro.utils.hashing import stable_vector
from repro.utils.text import normalize_value
from repro.utils.unionfind import UnionFind

ValuePair = Tuple[object, object]


class FineTunedEmbedder(ValueEmbedder):
    """A base embedder adjusted with labelled match / non-match pairs.

    Parameters
    ----------
    base:
        The pre-trained embedder to start from (e.g. the Mistral simulator).
    anchor_weight:
        Strength of the learned anchor for values covered by positive pairs.
    repulsion_weight:
        Strength of the push-apart component for values covered by negative pairs.
    """

    name = "finetuned"

    def __init__(
        self,
        base: ValueEmbedder,
        anchor_weight: float = 2.0,
        repulsion_weight: float = 0.75,
        cache: Optional[EmbeddingCache] = None,
    ) -> None:
        super().__init__(dimension=base.dimension, cache=cache)
        self.base = base
        self.name = f"finetuned[{base.name}]"
        self.anchor_weight = anchor_weight
        self.repulsion_weight = repulsion_weight
        self._anchor_of: Dict[str, str] = {}
        self._repulsion_of: Dict[str, set] = {}
        self._fitted = False

    # -- fitting ---------------------------------------------------------------------
    def fit(
        self,
        positive_pairs: Iterable[ValuePair],
        negative_pairs: Iterable[ValuePair] = (),
    ) -> "FineTunedEmbedder":
        """Learn anchors from labelled pairs; returns ``self`` for chaining.

        Positive pairs are closed transitively (if a~b and b~c then a, b, c all
        share one anchor).  Fitting replaces any previously learned state and
        clears the embedding cache.
        """
        groups = UnionFind()
        for left, right in positive_pairs:
            groups.union(normalize_value(left), normalize_value(right))

        self._anchor_of = {}
        for group in groups.groups():
            anchor_id = sorted(group)[0]
            for member in group:
                self._anchor_of[member] = anchor_id

        self._repulsion_of = {}
        for left, right in negative_pairs:
            left_key = normalize_value(left)
            right_key = normalize_value(right)
            self._repulsion_of.setdefault(left_key, set()).add(right_key)
            self._repulsion_of.setdefault(right_key, set()).add(left_key)

        self._fitted = True
        self._cache.clear()
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one pair."""
        return self._fitted

    def known_values(self) -> int:
        """Number of distinct values covered by the learned anchors."""
        return len(self._anchor_of)

    # -- embedding ---------------------------------------------------------------------
    def _embed_text(self, text: str) -> np.ndarray:
        vector = np.array(self.base.embed(text), dtype=np.float64)
        key = normalize_value(text)

        anchor_id = self._anchor_of.get(key)
        if anchor_id is not None:
            vector = vector + self.anchor_weight * stable_vector(
                f"finetuned-anchor:{anchor_id}", self.dimension, seed=47
            )

        # Negative supervision: subtract a fraction of the partner's *base*
        # embedding, which directly lowers the cosine similarity of the pair
        # (the contrastive push-apart of a real fine-tuning run).
        for repelled in self._repulsion_of.get(key, ()):
            vector = vector - self.repulsion_weight * np.asarray(
                self.base.embed(repelled), dtype=np.float64
            )
            partner_anchor = self._anchor_of.get(repelled)
            if partner_anchor is not None and partner_anchor != anchor_id:
                vector = vector - self.repulsion_weight * stable_vector(
                    f"finetuned-anchor:{partner_anchor}", self.dimension, seed=47
                )
        return vector
