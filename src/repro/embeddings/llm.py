"""Simulated large-language-model embedders (Llama-3-8B, Mistral-7B).

The paper's Table 1 finds that LLM last-hidden-layer embeddings beat word and
PLM embeddings for fuzzy value matching, and that Mistral-7B-Instruct edges
out the larger Llama-3-8B.  These simulators inherit the construction of
:class:`~repro.embeddings.transformer.SimulatedTransformerEmbedder` with broad
semantic-lexicon coverage and low noise; Mistral is configured marginally
better than Llama3, mirroring the paper's finding.
"""

from __future__ import annotations

from typing import Optional

from repro.embeddings.lexicon import SemanticLexicon
from repro.embeddings.transformer import SimulatedTransformerEmbedder


class Llama3Embedder(SimulatedTransformerEmbedder):
    """Simulated Meta-Llama-3-8B-Instruct cell-value embedder."""

    name = "llama3"

    def __init__(self, dimension: int = 256, lexicon: Optional[SemanticLexicon] = None, cache=None) -> None:
        super().__init__(
            model_name="llama3",
            dimension=dimension,
            lexicon_coverage=0.85,
            noise_level=0.24,
            lexicon=lexicon,
            cache=cache,
        )


class MistralEmbedder(SimulatedTransformerEmbedder):
    """Simulated Mistral-7B-Instruct-v0.3 cell-value embedder (the paper's choice)."""

    name = "mistral"

    def __init__(self, dimension: int = 256, lexicon: Optional[SemanticLexicon] = None, cache=None) -> None:
        super().__init__(
            model_name="mistral",
            dimension=dimension,
            lexicon_coverage=0.92,
            noise_level=0.16,
            lexicon=lexicon,
            cache=cache,
        )
