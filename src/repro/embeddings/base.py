"""Embedder interface and embedding cache."""

from __future__ import annotations

import abc
import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def embedding_text(value: object) -> str:
    """The exact text an embedder embeds (and caches) for ``value``.

    ``None`` embeds as the empty string; everything else as ``str(value)``.
    Callers that need the embedded texts themselves (corpus fingerprints of
    the ANN index, say) must use this function rather than re-implementing
    the conversion — the fingerprint has to name exactly the rows
    :meth:`ValueEmbedder.embed_many` produced.
    """
    return "" if value is None else str(value)


class ValueEmbedder(abc.ABC):
    """Maps cell values to fixed-dimension unit vectors.

    Subclasses implement :meth:`_embed_text`; callers use :meth:`embed` and
    :meth:`embed_many`, which handle caching and normalisation.
    """

    #: Registry name of the model (e.g. ``"mistral"``); subclasses override.
    name: str = "abstract"

    def __init__(self, dimension: int = 256, cache: Optional["EmbeddingCache"] = None) -> None:
        if dimension <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dimension = dimension
        self._cache = cache if cache is not None else EmbeddingCache()

    # -- public API -----------------------------------------------------------------
    @property
    def cache(self) -> "EmbeddingCache":
        """The embedding cache (long-lived engines read its hit/miss stats)."""
        return self._cache

    def use_cache(self, cache: "EmbeddingCache") -> None:
        """Swap in a different cache (e.g. a store-backed tiered cache).

        The :class:`~repro.core.engine.IntegrationEngine` calls this right
        after resolving the embedder to attach a
        :class:`~repro.storage.cache.StoreBackedEmbeddingCache` when a store
        directory is configured — the embedder's embed paths are unchanged;
        only where vectors are looked up and kept differs.
        """
        self._cache = cache

    def embed(self, value: object) -> np.ndarray:
        """Return the unit-norm embedding of one cell value."""
        text = embedding_text(value)
        cached = self._cache.get(self.name, text)
        if cached is not None:
            return cached
        return self._embed_and_cache(text)

    def _embed_and_cache(self, text: str) -> np.ndarray:
        """Compute, validate, normalise and cache the embedding of ``text``."""
        vector = np.asarray(self._embed_text(text), dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"{self.name} produced shape {vector.shape}, expected ({self.dimension},)"
            )
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        self._cache.put(self.name, text, vector)
        return vector

    def embed_many(self, values: Sequence[object]) -> np.ndarray:
        """Return an ``(n, dimension)`` matrix of embeddings for ``values``.

        Cached rows are copied into a preallocated matrix under a single
        cache-lock acquisition (:meth:`EmbeddingCache.fill_many`) — on warm
        caches this is the hot path of the blocked matcher, and one lock
        round instead of ``n`` matters once a worker pool shares the cache.
        """
        if not values:
            return np.zeros((0, self.dimension), dtype=np.float64)
        texts = [embedding_text(value) for value in values]
        matrix = np.empty((len(texts), self.dimension), dtype=np.float64)
        computed: Dict[str, np.ndarray] = {}
        for index in self._cache.fill_many(self.name, texts, matrix):
            text = texts[index]
            # Duplicate texts within one cold batch embed exactly once.
            vector = computed.get(text)
            if vector is None:
                vector = computed[text] = self._embed_and_cache(text)
            matrix[index] = vector
        return matrix

    def cosine_similarity(self, left: object, right: object) -> float:
        """Cosine similarity between two values' embeddings."""
        return float(np.dot(self.embed(left), self.embed(right)))

    def cosine_distance(self, left: object, right: object) -> float:
        """Cosine distance (1 - similarity), clipped to [0, 2]."""
        return float(np.clip(1.0 - self.cosine_similarity(left, right), 0.0, 2.0))

    # -- extension point --------------------------------------------------------------
    @abc.abstractmethod
    def _embed_text(self, text: str) -> np.ndarray:
        """Embed a single (raw, un-normalised) string."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dimension={self.dimension})"


class EmbeddingCache:
    """In-memory cache of embeddings keyed by (model name, raw text).

    The LLM embedders in the real system are by far the most expensive part of
    the pipeline; the paper's efficiency argument (Figure 3) assumes values are
    embedded once.  The cache makes repeated integration runs over the same
    tables (and the benchmark's repeated measurements) reflect that behaviour.

    The cache is thread-safe: a long-lived :class:`~repro.core.engine.
    IntegrationEngine` shares one cache across a worker pool, so lookups,
    inserts, evictions and the hit/miss counters all happen under one lock
    (the critical sections are dict operations — far cheaper than the
    embedding computation they guard).  Two threads missing on the same value
    may both embed it; both arrive at the same vector, so the second ``put``
    is a harmless overwrite.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._store: Dict[tuple, np.ndarray] = {}
        self._lock = threading.RLock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, model: str, text: str) -> Optional[np.ndarray]:
        """Return a cached vector or ``None``."""
        with self._lock:
            vector = self._store.get((model, text))
            if vector is None:
                self.misses += 1
                return None
            self.hits += 1
            return vector

    def fill_many(self, model: str, texts: Sequence[str], out: np.ndarray) -> List[int]:
        """Copy cached vectors into ``out`` rows; return the missing indices.

        One lock acquisition covers the whole batch, so a pool of workers
        sharing the cache contends once per column instead of once per value.
        Counters move exactly once per text (hit or miss).
        """
        missing: List[int] = []
        missing_texts: set = set()
        distinct_misses = 0
        with self._lock:
            store = self._store
            for index, text in enumerate(texts):
                vector = store.get((model, text))
                if vector is None:
                    missing.append(index)
                    # Repeated occurrences of one uncached text count as one
                    # miss + hits, matching the old embed()-per-value path
                    # (the caller embeds the text once and reuses it).
                    if text not in missing_texts:
                        missing_texts.add(text)
                        distinct_misses += 1
                else:
                    out[index] = vector
            self.hits += len(texts) - distinct_misses
            self.misses += distinct_misses
        return missing

    def put(self, model: str, text: str, vector: np.ndarray) -> None:
        """Insert a vector, evicting arbitrary entries if over capacity.

        Overwriting an existing key never evicts: the store size does not
        grow, so no live entry needs to make room.
        """
        key = (model, text)
        with self._lock:
            if key not in self._store:
                self.fills += 1
                if (
                    self.max_entries is not None
                    and len(self._store) >= self.max_entries
                    and self._store
                ):
                    # Simple eviction: drop the oldest inserted entry.
                    oldest = next(iter(self._store))
                    del self._store[oldest]
            self._store[key] = vector

    def clear(self) -> None:
        """Drop every cached vector and reset the statistics."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.fills = 0

    def stats(self) -> Dict[str, int]:
        """Return hit/miss/fill/size counters (one consistent snapshot).

        ``fills`` counts vectors inserted (first-time keys), so
        ``misses - fills`` over a window is the duplicate-embed overlap of
        concurrent cold lookups.  Subclasses (the store-backed cache) extend
        the dict with their tier's counters.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "fills": self.fills,
                "size": len(self._store),
            }


def mean_pool(vectors: Iterable[np.ndarray], dimension: int) -> np.ndarray:
    """Mean-pool a collection of vectors (returns zeros if empty)."""
    stacked: List[np.ndarray] = [np.asarray(vector, dtype=np.float64) for vector in vectors]
    if not stacked:
        return np.zeros(dimension, dtype=np.float64)
    return np.mean(np.vstack(stacked), axis=0)
