"""Embedder registry: build embedders by name.

The benchmark harnesses iterate over the same model names the paper's Table 1
reports, so they resolve embedders through this registry.  ``EMBEDDERS`` is a
:class:`repro.registry.Registry`; downstream models plug in with
``@EMBEDDERS.register("name")`` (the legacy :func:`register_embedder` helper
forwards there).
"""

from __future__ import annotations

from typing import Callable, List

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.exact import ExactEmbedder
from repro.embeddings.fasttext import FastTextEmbedder
from repro.embeddings.llm import Llama3Embedder, MistralEmbedder
from repro.embeddings.transformer import BertEmbedder, RobertaEmbedder
from repro.registry import Registry

def _resilient_embedder(inner: str = "mistral", **kwargs) -> ValueEmbedder:
    """Factory for ``"resilient"``: an explicitly-wrapped inner embedder.

    The engine wraps its resolved embedder automatically, so this name is
    only needed to build a standalone wrapper (benchmarks, tests) or to
    wrap a non-default inner model by name.
    """
    from repro.embeddings.resilient import ResilientEmbedder

    return ResilientEmbedder(EMBEDDERS.create(inner), **kwargs)


def _chaos_embedder(**kwargs) -> ValueEmbedder:
    """Factory for ``"chaos"``: a fault-injecting embedder scripted via env.

    Used by the service smoke test and chaos CI job to boot ``repro serve``
    with an embedder that fails on an ``REPRO_CHAOS_*`` schedule; see
    :func:`repro.testing.faults.chaos_embedder_from_env`.
    """
    from repro.testing.faults import chaos_embedder_from_env

    return chaos_embedder_from_env(**kwargs)


#: All embedding models, keyed by registry name.
EMBEDDERS: Registry[Callable[..., ValueEmbedder]] = Registry(
    "embedding model",
    {
        "exact": ExactEmbedder,
        "fasttext": FastTextEmbedder,
        "bert": BertEmbedder,
        "roberta": RobertaEmbedder,
        "llama3": Llama3Embedder,
        "mistral": MistralEmbedder,
        "resilient": _resilient_embedder,
        "chaos": _chaos_embedder,
    },
)

#: The models evaluated in the paper's Table 1, in presentation order.
TABLE1_MODELS = ["fasttext", "bert", "roberta", "llama3", "mistral"]


def available_embedders() -> List[str]:
    """Names of all registered embedding models."""
    return EMBEDDERS.names()


def get_embedder(name: str, **kwargs) -> ValueEmbedder:
    """Instantiate an embedder by registry name.

    >>> get_embedder("mistral").name
    'mistral'
    """
    return EMBEDDERS.create(name, **kwargs)


def register_embedder(name: str, factory: Callable[..., ValueEmbedder]) -> None:
    """Register a custom embedder factory (used by tests and extensions)."""
    EMBEDDERS.register(name, factory)
