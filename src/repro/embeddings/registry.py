"""Embedder registry: build embedders by name.

The benchmark harnesses iterate over the same model names the paper's Table 1
reports, so they resolve embedders through this registry.  ``EMBEDDERS`` is a
:class:`repro.registry.Registry`; downstream models plug in with
``@EMBEDDERS.register("name")`` (the legacy :func:`register_embedder` helper
forwards there).
"""

from __future__ import annotations

from typing import Callable, List

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.exact import ExactEmbedder
from repro.embeddings.fasttext import FastTextEmbedder
from repro.embeddings.llm import Llama3Embedder, MistralEmbedder
from repro.embeddings.transformer import BertEmbedder, RobertaEmbedder
from repro.registry import Registry

#: All embedding models, keyed by registry name.
EMBEDDERS: Registry[Callable[..., ValueEmbedder]] = Registry(
    "embedding model",
    {
        "exact": ExactEmbedder,
        "fasttext": FastTextEmbedder,
        "bert": BertEmbedder,
        "roberta": RobertaEmbedder,
        "llama3": Llama3Embedder,
        "mistral": MistralEmbedder,
    },
)

#: The models evaluated in the paper's Table 1, in presentation order.
TABLE1_MODELS = ["fasttext", "bert", "roberta", "llama3", "mistral"]


def available_embedders() -> List[str]:
    """Names of all registered embedding models."""
    return EMBEDDERS.names()


def get_embedder(name: str, **kwargs) -> ValueEmbedder:
    """Instantiate an embedder by registry name.

    >>> get_embedder("mistral").name
    'mistral'
    """
    return EMBEDDERS.create(name, **kwargs)


def register_embedder(name: str, factory: Callable[..., ValueEmbedder]) -> None:
    """Register a custom embedder factory (used by tests and extensions)."""
    EMBEDDERS.register(name, factory)
