"""Cell-value embedding models.

The paper embeds every cell value with a pre-trained language model (Mistral-7B
in the final system; FastText, BERT, RoBERTa and Llama-3 as baselines in
Table 1) and matches values by cosine distance between embeddings.  No model
weights or network access are available in this environment, so this package
provides *simulated* embedders that preserve the property the fuzzy-matching
pipeline relies on — surface forms of the same real-world value land close in
cosine space, unrelated values land far apart — with per-model fidelity knobs
(semantic-lexicon coverage, noise) that reproduce the relative ordering of
Table 1.  See DESIGN.md ("Substitutions") for the full rationale.

All embedders are deterministic: the same value always maps to the same
vector, across processes and platforms.
"""

from repro.embeddings.base import EmbeddingCache, ValueEmbedder
from repro.embeddings.exact import ExactEmbedder
from repro.embeddings.fasttext import FastTextEmbedder
from repro.embeddings.finetuned import FineTunedEmbedder
from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.embeddings.llm import Llama3Embedder, MistralEmbedder
from repro.embeddings.transformer import (
    BertEmbedder,
    RobertaEmbedder,
    SimulatedTransformerEmbedder,
)
from repro.embeddings.registry import (
    EMBEDDERS,
    available_embedders,
    get_embedder,
    register_embedder,
)
from repro.embeddings.resilient import (
    DEGRADED_MODES,
    DelegatingEmbedder,
    EmbedderUnavailable,
    ResilientEmbedder,
)

__all__ = [
    "DEGRADED_MODES",
    "DelegatingEmbedder",
    "EmbedderUnavailable",
    "ResilientEmbedder",
    "ValueEmbedder",
    "EmbeddingCache",
    "ExactEmbedder",
    "FastTextEmbedder",
    "FineTunedEmbedder",
    "BertEmbedder",
    "RobertaEmbedder",
    "Llama3Embedder",
    "MistralEmbedder",
    "SimulatedTransformerEmbedder",
    "SemanticLexicon",
    "default_lexicon",
    "EMBEDDERS",
    "get_embedder",
    "available_embedders",
    "register_embedder",
]
